#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Extended (workspace-wide) checks; tier-1 above is the gate.
cargo test --workspace -q
cargo clippy --all-targets --workspace -- -D warnings

echo "ci.sh: all checks passed"
