#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repo root.
#
#   ./ci.sh          full gate (test matrix, ablations, docs, benches,
#                    TCP smoke tests)
#   ./ci.sh --fast   inner-loop subset: release build, clippy, and the
#                    skalla-lint invariant checker with its self-tests
set -euo pipefail
cd "$(dirname "$0")"

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
elif [[ -n "${1:-}" ]]; then
  echo "ci.sh: unknown flag '$1' (only --fast is supported)" >&2
  exit 2
fi

cargo build --release

if [[ "$FAST" == 1 ]]; then
  cargo clippy --all-targets --workspace -- -D warnings
  # Lint self-tests first (a broken rule must fail loudly), then the
  # workspace invariant check itself (see docs/STATIC_ANALYSIS.md).
  cargo test -q -p skalla-lint
  cargo run -q -p skalla-lint
  echo "ci.sh: fast checks passed"
  exit 0
fi
# Tier-1 suite at two kernel settings: serial and a 4-worker pool. The
# morsel merge order is deterministic, so both runs must pass identically.
# (Morsel size is left at its default: shrinking it globally would change
# the oracle-vs-distributed morsel decomposition and reassociate inexact
# f64 sums; multi-morsel coverage lives in the gmdj unit tests, the
# property test, and fig_kernel.)
SKALLA_THREADS=1 cargo test -q
SKALLA_THREADS=4 cargo test -q
# Kernel ablation: tier-1 (incl. the transport-equivalence and
# theorem-bound suites) and the kernel crate must also pass with the
# columnar kernel forced off — the row and columnar kernels are
# bit-identical, so the only permissible difference is speed. (The =1
# side is the default and already covered by the runs above.)
SKALLA_COLUMNAR=0 cargo test -q
SKALLA_COLUMNAR=0 cargo test -q -p skalla-gmdj
SKALLA_COLUMNAR=1 cargo test -q -p skalla-gmdj
# Skew ablation: the heavy-hitter balancer is a pure performance
# transform, so the kernel and engine crates must pass identically with
# it forced off and on (the equivalence property test additionally pins
# bit-identity between the two paths on every run above).
SKALLA_SKEW=0 cargo test -q -p skalla-gmdj -p skalla-core
SKALLA_SKEW=1 cargo test -q -p skalla-gmdj -p skalla-core
# Cache ablation: the semantic result cache must be invisible to
# correctness — tier-1 passes identically with it forced off and on.
# (Tests that depend on a specific hit/miss pattern pin the knob
# explicitly, so both runs exercise the same assertions.)
SKALLA_CACHE=0 cargo test -q
SKALLA_CACHE=1 cargo test -q
cargo clippy --all-targets -- -D warnings
# The skalla-lint invariant checker (docs/STATIC_ANALYSIS.md): its own
# unit + fixture self-tests first — a broken rule must fail loudly, not
# silently pass the workspace — then the real check, which must be clean
# modulo the frozen panic-hygiene baseline (lint-baseline.txt).
cargo test -q -p skalla-lint
cargo run -q -p skalla-lint

# Extended (workspace-wide) checks; tier-1 above is the gate.
cargo test --workspace -q
cargo clippy --all-targets --workspace -- -D warnings
# Rustdoc must stay warning-clean (skalla-net additionally denies missing
# docs at compile time). skalla-core is gated first and explicitly: it
# carries the public engine surface (scheduler, warehouse builder) whose
# docs are the migration path off the deprecated setters. The vendored
# shims are API stand-ins, not our documentation surface, so they are
# excluded from the workspace pass.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p skalla-core
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
  --exclude criterion --exclude crossbeam --exclude parking_lot \
  --exclude proptest --exclude rand
# Zero-allocation probe regression guard (plain-main bench, not run by
# `cargo test`) — covers the row-kernel bucket index and the columnar
# kernel's canonical-key probe / typed inner loops.
cargo bench -p skalla-bench --bench probe_alloc
# Kernel ablation smoke: quick fig_kernel run with the columnar config
# row; --check asserts the columnar-over-serial speedup floor (and the
# parallel floor on multi-core runners) plus bit-identity across thread
# counts and kernels.
cargo run --release -q -p skalla-bench --bin fig_kernel -- \
  --quick --repeats 3 --check --out "$(mktemp)"
# Skew balancing smoke: quick fig_skew run; --check asserts balanced
# max-site-busy strictly below unbalanced on the skewed configuration
# (Zipf 1.2, 8 sites) under both kernels, plus bit-identity of the
# balanced and unbalanced results everywhere.
cargo run --release -q -p skalla-bench --bin fig_skew -- \
  --quick --check --out "$(mktemp)"
# Semantic cache smoke: quick fig_cache run; --check asserts the
# dashboard workload's hit-rate floor (≥80%) and traffic-reduction floor
# (≥2x), cube roll-up bit-identity on the integral measure, and that
# cache-off executions pay byte-for-byte the serial baseline traffic.
cargo run --release -q -p skalla-bench --bin fig_cache -- \
  --quick --check --out "$(mktemp)"

# Multi-process TCP smoke test: two standalone site processes on ephemeral
# loopback ports, one coordinator run over them. Skipped gracefully in
# sandboxes without loopback sockets (net-probe fails there).
CLI=target/release/skalla-cli
if "$CLI" net-probe >/dev/null 2>&1; then
  SMOKE_DIR=$(mktemp -d)
  trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
  for i in 0 1; do
    "$CLI" site --listen 127.0.0.1:0 --site-index "$i" --sites 2 \
      --dataset flow --rows 4000 --once >"$SMOKE_DIR/site$i.log" &
  done
  for i in 0 1; do
    for _ in $(seq 1 50); do
      grep -q 'listening on' "$SMOKE_DIR/site$i.log" && break
      sleep 0.1
    done
    grep -q 'listening on' "$SMOKE_DIR/site$i.log" \
      || { echo "ci.sh: site $i never came up" >&2; cat "$SMOKE_DIR/site$i.log" >&2; exit 1; }
  done
  # Anchored: with --metrics-listen a process also prints
  # "metrics listening on …", which a bare 'listening on' sed would catch.
  ADDRS=$(for i in 0 1; do sed -n "s/^site $i listening on //p" "$SMOKE_DIR/site$i.log"; done | paste -sd, -)
  # Telemetry smoke: trace the distributed run (sites always record and
  # ship their deltas back), expose live metrics, and linger so we can
  # probe the endpoint after the query completes.
  "$CLI" run --sites "$ADDRS" --query-file queries/example1.skl --limit 5 \
    --trace "$SMOKE_DIR/trace.json" --metrics-listen 127.0.0.1:0 --metrics-linger 10 \
    >"$SMOKE_DIR/run.log" 2>&1 &
  RUN_PID=$!
  for _ in $(seq 1 100); do
    grep -q 'lingering' "$SMOKE_DIR/run.log" && break
    sleep 0.1
  done
  grep -q 'lingering' "$SMOKE_DIR/run.log" \
    || { echo "ci.sh: traced run never reached the linger window" >&2; cat "$SMOKE_DIR/run.log" >&2; exit 1; }
  cat "$SMOKE_DIR/run.log"
  METRICS=$(sed -n 's|^metrics listening on http://||p' "$SMOKE_DIR/run.log")
  "$CLI" http-get "http://$METRICS/metrics" >"$SMOKE_DIR/metrics.txt"
  # The scheduler gauges and the query-latency histogram must be exposed.
  grep -q '^skalla_scheduler_admitted_total 1' "$SMOKE_DIR/metrics.txt"
  grep -q '^skalla_scheduler_running' "$SMOKE_DIR/metrics.txt"
  grep -q '^skalla_query_wall_s_count' "$SMOKE_DIR/metrics.txt"
  wait "$RUN_PID"
  wait
  # The merged trace must contain real site-side spans (exported by the
  # site processes over TAG_TELEMETRY), not just coordinator lanes.
  "$CLI" trace-check "$SMOKE_DIR/trace.json"
  echo "ci.sh: TCP smoke test passed (sites $ADDRS, metrics at $METRICS)"

  # Concurrent multi-query smoke: 4 sites, 4 copies of the fig2-style
  # query submitted at once over one persistent session per site. The CLI
  # itself verifies the concurrent copies agree on the result.
  for i in 0 1 2 3; do
    "$CLI" site --listen 127.0.0.1:0 --site-index "$i" --sites 4 \
      --dataset tpcr --rows 4000 --once >"$SMOKE_DIR/csite$i.log" &
  done
  for i in 0 1 2 3; do
    for _ in $(seq 1 50); do
      grep -q 'listening on' "$SMOKE_DIR/csite$i.log" && break
      sleep 0.1
    done
    grep -q 'listening on' "$SMOKE_DIR/csite$i.log" \
      || { echo "ci.sh: concurrent-smoke site $i never came up" >&2; cat "$SMOKE_DIR/csite$i.log" >&2; exit 1; }
  done
  CADDRS=$(for i in 0 1 2 3; do sed -n "s/^site $i listening on //p" "$SMOKE_DIR/csite$i.log"; done | paste -sd, -)
  "$CLI" run --sites "$CADDRS" --concurrency 4 --limit 3 -q \
    'BASE SELECT DISTINCT cust_group FROM tpcr;
     MD cnt1 = COUNT(*), avg1 = AVG(extended_price) OVER tpcr WHERE cust_group = b.cust_group;
     MD cnt2 = COUNT(*) OVER tpcr WHERE cust_group = b.cust_group AND extended_price >= b.avg1;'
  wait
  echo "ci.sh: concurrent TCP smoke test passed (4 queries over sites $CADDRS)"
else
  echo "ci.sh: loopback sockets unavailable, skipping TCP smoke tests"
fi

echo "ci.sh: all checks passed"
