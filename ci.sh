#!/usr/bin/env bash
# Local CI: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
# Tier-1 suite at two kernel settings: serial and a 4-worker pool. The
# morsel merge order is deterministic, so both runs must pass identically.
# (Morsel size is left at its default: shrinking it globally would change
# the oracle-vs-distributed morsel decomposition and reassociate inexact
# f64 sums; multi-morsel coverage lives in the gmdj unit tests, the
# property test, and fig_kernel.)
SKALLA_THREADS=1 cargo test -q
SKALLA_THREADS=4 cargo test -q
cargo clippy --all-targets -- -D warnings

# Extended (workspace-wide) checks; tier-1 above is the gate.
cargo test --workspace -q
cargo clippy --all-targets --workspace -- -D warnings
# Zero-allocation probe regression guard (plain-main bench, not run by
# `cargo test`).
cargo bench -p skalla-bench --bench probe_alloc

echo "ci.sh: all checks passed"
