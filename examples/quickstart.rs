//! Quickstart: distributed evaluation of the paper's Example 1.
//!
//! Generates IP flow data, partitions it across four warehouse sites by
//! source autonomous system, and asks: *per (source AS, destination AS),
//! how many flows are there, and how many carry at least the group-average
//! number of bytes?* — a two-round correlated aggregate that conventional
//! GROUP BY cannot express in one pass.
//!
//! Run with: `cargo run --release --example quickstart`

use skalla::core::{plan::Planner, Cluster, OptFlags, Skalla};
use skalla::datagen::flow::{generate_flows, FlowConfig};
use skalla::datagen::partition::partition_by_int_ranges;
use skalla::gmdj::prelude::*;
use skalla::net::CostModel;

fn main() {
    // 1. Data: 20,000 flows across 4 router sites, partitioned on source_as.
    let flows = generate_flows(&FlowConfig {
        flows: 20_000,
        routers: 4,
        source_as: 48,
        dest_as: 24,
        skew: 1.0,
        seed: 42,
    });
    let parts = partition_by_int_ranges(&flows, "source_as", 4);
    println!(
        "generated {} flows across {} sites ({} rows each)",
        flows.len(),
        parts.len(),
        parts
            .iter()
            .map(|p| p.relation.len().to_string())
            .collect::<Vec<_>>()
            .join("/")
    );
    let engine = Skalla::builder()
        .partitions("flow", parts.clone())
        .build()
        .expect("engine builds");

    // 2. Query (paper Example 1).
    let expr = GmdjExprBuilder::distinct_base("flow", &["source_as", "dest_as"])
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as", "dest_as"]).build(),
            vec![AggSpec::count("cnt1"), AggSpec::sum("num_bytes", "sum1")],
        ))
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as", "dest_as"])
                .and_detail_ge_base_expr("num_bytes", "sum1 / cnt1")
                .build(),
            vec![AggSpec::count("cnt2")],
        ))
        .build();

    // 3. Plan with all optimizations and execute.
    let planner = Planner::new(engine.distribution());
    let plan = planner.optimize(&expr, OptFlags::all());
    println!("\n=== plan ===\n{}", plan.explain());

    let result = engine.execute(&plan).expect("query executes");
    let top = result
        .relation
        .sorted_by(&["source_as", "dest_as"])
        .expect("sortable");

    println!("=== first 10 of {} groups ===", top.len());
    println!("{:>9} {:>8} {:>6} {:>12} {:>6}", "source_as", "dest_as", "cnt1", "sum1", "cnt2");
    for row in top.rows().iter().take(10) {
        println!(
            "{:>9} {:>8} {:>6} {:>12} {:>6}",
            row.get(0),
            row.get(1),
            row.get(2),
            row.get(3),
            row.get(4)
        );
    }

    // 4. What moved over the network?
    let stats = &result.stats;
    let (rows_down, rows_up) = stats.total_rows();
    println!("\n=== execution ===");
    println!("rounds:        {}", stats.n_rounds());
    println!("bytes moved:   {} down / {} up", stats.bytes_down(), stats.bytes_up());
    println!("rows moved:    {rows_down} down / {rows_up} up (detail rows shipped: 0)");
    let sim = stats.simulated(&CostModel::wan());
    println!(
        "simulated time (WAN): {:.3}s = site {:.3}s + coordinator {:.3}s + network {:.3}s",
        sim.total_s(),
        sim.site_s,
        sim.coord_s,
        sim.comm_s
    );

    // 5. Contrast with the ship-everything baseline the paper argues
    //    against. The centralized evaluator is a measurement harness, not
    //    part of the engine API, so it stays on the bare `Cluster`.
    let baseline_cluster = Cluster::from_partitions("flow", parts);
    let baseline = baseline_cluster
        .execute_centralized(&expr)
        .expect("baseline runs");
    assert!(baseline.relation.same_bag(&result.relation));
    println!(
        "\nship-everything baseline moves {} bytes ({}x more)",
        baseline.stats.total_bytes(),
        baseline.stats.total_bytes() / stats.total_bytes().max(1)
    );
}
