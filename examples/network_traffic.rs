//! Network management analytics — the paper's motivating application
//! (Sect. 1), expressed in the `skalla-query` language.
//!
//! Two analyses over distributed NetFlow-style data:
//!
//! 1. *"On an hourly basis, what fraction of the total number of flows is
//!    due to Web traffic?"* — per-hour totals plus a filtered sub-count.
//! 2. *"Which source ASes send flows larger than twice their own average
//!    flow size, and how much of their traffic is in such flows?"* — a
//!    correlated aggregate chain.
//!
//! Run with: `cargo run --release --example network_traffic`

use skalla::core::{OptFlags, Skalla};
use skalla::datagen::flow::{generate_flows, FlowConfig};
use skalla::datagen::partition::partition_by_int_ranges;
use skalla::query;

const HOURLY_WEB: &str = "
    BASE SELECT DISTINCT hour FROM hourly;
    MD flows = COUNT(*), web_flows = SUM(is_web)
       OVER hourly
       WHERE hour = b.hour;
";

const ELEPHANT_FLOWS: &str = "
    BASE SELECT DISTINCT source_as FROM flow;
    MD flows = COUNT(*), bytes = SUM(num_bytes), avg_bytes = AVG(num_bytes)
       OVER flow
       WHERE source_as = b.source_as;
    MD big_flows = COUNT(*), big_bytes = SUM(num_bytes)
       OVER flow
       WHERE source_as = b.source_as AND num_bytes >= 2 * b.avg_bytes;
";

fn main() {
    let cfg = FlowConfig {
        flows: 30_000,
        routers: 6,
        source_as: 60,
        dest_as: 30,
        skew: 1.1,
        seed: 7,
    };
    let flows = generate_flows(&cfg);

    // Derive an hourly view with a web-traffic indicator column. In a real
    // deployment each router materializes this locally; here we extend the
    // schema before partitioning.
    let hourly = {
        use skalla::relation::{DataType, Field, Relation, Row, Value};
        let s = flows.schema();
        let (start, dport) = (
            s.index_of("start_time").unwrap(),
            s.index_of("dest_port").unwrap(),
        );
        let schema = s
            .extend(&[
                Field::new("hour", DataType::Int),
                Field::new("is_web", DataType::Int),
            ])
            .unwrap();
        let rows: Vec<Row> = flows
            .iter()
            .map(|r| {
                let hour = r.get(start).as_i64().unwrap() / 3600;
                let port = r.get(dport).as_i64().unwrap();
                let is_web = i64::from(port == 80 || port == 443 || port == 8080);
                r.extend(&[Value::Int(hour), Value::Int(is_web)])
            })
            .collect();
        Relation::new(schema, rows).unwrap()
    };

    let engine = Skalla::builder()
        .partitions("flow", partition_by_int_ranges(&flows, "source_as", 6))
        .partitions("hourly", partition_by_int_ranges(&hourly, "source_as", 6))
        .build()
        .expect("engine builds");

    // --- Analysis 1: hourly web-traffic fraction -------------------------
    println!("=== hourly web-traffic fraction ===");
    let out = query::run(HOURLY_WEB, &engine, OptFlags::all()).expect("hourly query runs");
    let rel = out.relation.sorted_by(&["hour"]).unwrap();
    println!("{:>4} {:>8} {:>9} {:>9}", "hour", "flows", "web", "fraction");
    for row in rel.rows().iter().take(24) {
        let flows = row.get(1).as_i64().unwrap();
        let web = row.get(2).as_i64().unwrap_or(0);
        println!(
            "{:>4} {:>8} {:>9} {:>8.1}%",
            row.get(0),
            flows,
            web,
            100.0 * web as f64 / flows as f64
        );
    }
    println!(
        "({} rounds, {} bytes shipped — no detail tuples left their router)\n",
        out.stats.n_rounds(),
        out.stats.total_bytes()
    );

    // --- Analysis 2: elephant flows per source AS ------------------------
    println!("=== source ASes with flows ≥ 2× their own average ===");
    println!(
        "{}",
        query::explain(ELEPHANT_FLOWS, &engine, OptFlags::all()).unwrap()
    );
    let out =
        query::run(ELEPHANT_FLOWS, &engine, OptFlags::all()).expect("elephant query runs");
    let rel = out.relation.sorted_by(&["source_as"]).unwrap();
    println!(
        "{:>9} {:>7} {:>12} {:>10} {:>10} {:>9}",
        "source_as", "flows", "bytes", "big_flows", "big_bytes", "big_share"
    );
    let mut shown = 0;
    for row in rel.rows() {
        let bytes = row.get(2).as_i64().unwrap_or(0);
        let big_bytes = row.get(5).as_i64().unwrap_or(0);
        if bytes == 0 || shown >= 12 {
            continue;
        }
        shown += 1;
        println!(
            "{:>9} {:>7} {:>12} {:>10} {:>10} {:>8.1}%",
            row.get(0),
            row.get(1),
            bytes,
            row.get(4),
            big_bytes,
            100.0 * big_bytes as f64 / bytes as f64
        );
    }

    // Sanity: optimizations do not change answers.
    let unopt = query::run(ELEPHANT_FLOWS, &engine, OptFlags::none()).expect("runs");
    assert!(unopt.relation.same_bag(&out.relation));
    println!(
        "\noptimizations: {} rounds → {} rounds, {} → {} bytes",
        unopt.stats.n_rounds(),
        out.stats.n_rounds(),
        unopt.stats.total_bytes(),
        out.stats.total_bytes()
    );
}
