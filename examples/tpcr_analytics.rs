//! TPC-R-style analytics over an 8-site warehouse — the paper's
//! experimental setting (Sect. 5.1): a denormalized TPCR relation
//! partitioned on `nation_key` across eight sites, queried with COUNT and
//! AVG aggregates at high cardinality (`cust_name`) and low cardinality
//! (`supp_key`) groupings.
//!
//! Run with: `cargo run --release --example tpcr_analytics`

use skalla::core::{plan::Planner, OptFlags, Skalla};
use skalla::datagen::partition::partition_by_int_ranges;
use skalla::datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla::gmdj::prelude::*;
use skalla::net::CostModel;

/// Per-customer revenue and above-average order lines (high cardinality:
/// one group per customer name).
fn high_cardinality_query() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("tpcr", &["cust_name", "nation_key"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_name"]).build(),
            vec![
                AggSpec::count("lines"),
                AggSpec::avg("extended_price", "avg_price"),
            ],
        ))
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_name"])
                .and(Expr::dcol("extended_price").ge(Expr::bcol("avg_price")))
                .build(),
            vec![AggSpec::count("pricey_lines")],
        ))
        .build()
}

/// Per-supplier volumes (low cardinality: a few thousand groups).
fn low_cardinality_query() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("tpcr", &["supp_key"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["supp_key"]).build(),
            vec![
                AggSpec::count("lines"),
                AggSpec::avg("quantity", "avg_qty"),
                AggSpec::max("extended_price", "max_price"),
            ],
        ))
        .build()
}

fn main() {
    let cfg = TpcrConfig {
        rows: 120_000,
        customers: 4_000,
        nations: 25,
        suppliers: 400,
        parts: 2_000,
        skew: 0.3,
        seed: 2002,
    };
    println!(
        "generating TPCR: {} rows, {} customers, {} nations, {} suppliers…",
        cfg.rows, cfg.customers, cfg.nations, cfg.suppliers
    );
    let tpcr = generate_tpcr(&cfg);
    // The paper's setup: partition on NationKey across eight sites.
    let engine = Skalla::builder()
        .partitions("tpcr", partition_by_int_ranges(&tpcr, "nation_key", 8))
        .build()
        .expect("engine builds");
    let planner = Planner::new(engine.distribution());
    let lan = CostModel::lan();

    for (name, expr) in [
        ("high-cardinality (per customer)", high_cardinality_query()),
        ("low-cardinality (per supplier)", low_cardinality_query()),
    ] {
        println!("\n=== {name} ===");
        let mut last_len = 0;
        for (label, flags) in [
            ("no optimizations", OptFlags::none()),
            ("all optimizations", OptFlags::all()),
        ] {
            let plan = planner.optimize(&expr, flags);
            let out = engine.execute(&plan).expect("query runs");
            let sim = out.stats.simulated(&lan);
            let (down, up) = out.stats.total_rows();
            println!(
                "{label:>18}: {} rounds, {:>9} bytes, rows {down}↓/{up}↑, \
                 sim {:.3}s (site {:.3} + coord {:.3} + net {:.3}), wall {:.3}s",
                out.stats.n_rounds(),
                out.stats.total_bytes(),
                sim.total_s(),
                sim.site_s,
                sim.coord_s,
                sim.comm_s,
                out.stats.wall_s
            );
            last_len = out.relation.len();
        }
        println!("{last_len} groups in the result");
    }

    // Show a slice of the high-cardinality answer.
    let plan = planner.optimize(&high_cardinality_query(), OptFlags::all());
    let out = engine.execute(&plan).expect("query runs");
    let rel = out.relation.sorted_by(&["cust_name"]).unwrap();
    println!("\n=== sample rows (per-customer) ===");
    println!(
        "{:<22} {:>6} {:>6} {:>12} {:>12}",
        "customer", "nation", "lines", "avg_price", "pricey_lines"
    );
    for row in rel.rows().iter().take(8) {
        println!(
            "{:<22} {:>6} {:>6} {:>12.2} {:>12}",
            row.get(0),
            row.get(1),
            row.get(2),
            row.get(3).as_f64().unwrap_or(f64::NAN),
            row.get(4)
        );
    }
}
