//! EXPLAIN: how distribution knowledge changes the plan.
//!
//! Runs the Egil planner on the same correlated-aggregate query under
//! three physical designs —
//!
//! 1. partitioned on the grouping attribute, with declared ranges
//!    (→ full synchronization reduction: one round, Example 5);
//! 2. hash-partitioned with no declared knowledge
//!    (→ Prop 2 fold + distribution-independent group reduction only);
//! 3. scattered round-robin, grouped on a non-partition attribute
//!    (→ the general multi-round plan)
//!
//! — and prints each resulting plan.
//!
//! Run with: `cargo run --release --example explain_plans`

use skalla::core::{plan::Planner, OptFlags, Skalla};
use skalla::datagen::flow::{generate_flows, FlowConfig};
use skalla::datagen::partition::{
    partition_by_hash, partition_by_int_ranges, partition_round_robin,
};
use skalla::gmdj::prelude::*;

fn query() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("flow", &["source_as"])
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as"]).build(),
            vec![AggSpec::count("flows"), AggSpec::avg("num_bytes", "avg_nb")],
        ))
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as"])
                .and_detail_ge_base_expr("num_bytes", "avg_nb")
                .build(),
            vec![AggSpec::count("big")],
        ))
        .build()
}

fn main() {
    let flows = generate_flows(&FlowConfig::small(3));
    let engine = |parts| {
        Skalla::builder()
            .partitions("flow", parts)
            .build()
            .expect("engine builds")
    };
    let scenarios: Vec<(&str, Skalla)> = vec![
        (
            "range-partitioned on source_as (declared φ ranges)",
            engine(partition_by_int_ranges(&flows, "source_as", 4)),
        ),
        (
            "hash-partitioned on source_as (no declared knowledge)",
            engine(partition_by_hash(&flows, "source_as", 4)),
        ),
        (
            "round-robin scattered (no partition attribute exists)",
            engine(partition_round_robin(&flows, 4)),
        ),
    ];

    let expr = query();
    for (name, engine) in &scenarios {
        println!("==================================================================");
        println!("physical design: {name}");
        println!("==================================================================");
        let planner = Planner::new(engine.distribution());
        for (label, flags) in [
            ("OptFlags::none()", OptFlags::none()),
            ("OptFlags::all()", OptFlags::all()),
        ] {
            let plan = planner.optimize(&expr, flags);
            println!("--- {label} ---\n{}", plan.explain());
            let out = engine.execute(&plan).expect("plan executes");
            println!(
                "executed: {} rounds, {} bytes, {} result groups\n",
                out.stats.n_rounds(),
                out.stats.total_bytes(),
                out.relation.len()
            );
        }
    }

    // All plans computed the same answer regardless of physical design.
    let answers: Vec<_> = scenarios
        .iter()
        .map(|(_, c)| {
            let plan = Planner::new(c.distribution()).optimize(&expr, OptFlags::all());
            c.execute(&plan).expect("runs").relation
        })
        .collect();
    assert!(answers.windows(2).all(|w| w[0].same_bag(&w[1])));
    println!("all three physical designs returned identical answers ✓");
}
