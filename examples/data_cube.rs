//! Distributed data cube — Gray et al.'s CUBE BY (the paper cites data
//! cubes as one of the OLAP query classes GMDJ expressions capture),
//! evaluated over the distributed warehouse without moving detail data.
//!
//! Cubes TPCR over (nation_key, return_flag, order_priority) with COUNT
//! and SUM(extended_price), prints a roll-up slice, and shows the
//! per-level provenance: only the finest grouping set runs distributed;
//! every coarser level is rolled up locally from its sub-aggregates.
//!
//! Run with: `cargo run --release --example data_cube`

use skalla::core::{OptFlags, Skalla};
use skalla::datagen::partition::partition_by_int_ranges;
use skalla::datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla::gmdj::AggSpec;
use skalla::query::{cube, render_cube_levels};
use skalla::relation::Value;

fn main() {
    let tpcr = generate_tpcr(&TpcrConfig {
        rows: 60_000,
        customers: 2_000,
        nations: 8,
        suppliers: 100,
        parts: 500,
        skew: 0.2,
        seed: 99,
    });
    let engine = Skalla::builder()
        .partitions("tpcr", partition_by_int_ranges(&tpcr, "nation_key", 8))
        .build()
        .expect("engine builds");

    let dims = ["nation_key", "return_flag", "order_priority"];
    let aggs = [
        AggSpec::count("lines"),
        AggSpec::sum("extended_price", "revenue"),
    ];
    println!("computing CUBE BY ({}) over {} rows on 8 sites…", dims.join(", "), tpcr.len());
    let result = cube(&engine, "tpcr", &dims, &aggs, OptFlags::all()).expect("cube runs");

    println!(
        "cube has {} rows across {} grouping sets ({} total rounds, {} bytes moved)\n",
        result.relation.len(),
        result.levels.len(),
        result.total_rounds(),
        result.total_bytes()
    );

    println!("=== per grouping set ===");
    print!("{}", render_cube_levels(&result));

    // A roll-up slice: revenue by nation with ALL (grand-total) rows.
    println!("\n=== revenue by nation (ALL = rolled up) ===");
    let rel = result
        .relation
        .filter(|r| r.get(1).is_null() && r.get(2).is_null())
        .sorted_by(&["nation_key"])
        .expect("sortable");
    println!("{:>8} {:>9} {:>16}", "nation", "lines", "revenue");
    for row in rel.rows() {
        let nation = match row.get(0) {
            Value::Null => "ALL".to_string(),
            v => v.to_string(),
        };
        println!(
            "{:>8} {:>9} {:>16.2}",
            nation,
            row.get(3),
            row.get(4).as_f64().unwrap_or(f64::NAN)
        );
    }

    // Cross-check: the grand total equals the sum of the nation level.
    let nation_level: f64 = rel
        .rows()
        .iter()
        .filter(|r| !r.get(0).is_null())
        .map(|r| r.get(4).as_f64().unwrap_or(0.0))
        .sum();
    let grand = rel
        .rows()
        .iter()
        .find(|r| r.get(0).is_null())
        .expect("grand total present")
        .get(4)
        .as_f64()
        .expect("numeric");
    assert!((nation_level - grand).abs() < 1e-6 * grand.abs());
    println!("\nroll-up consistency verified ✓");
}
