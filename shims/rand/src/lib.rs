//! Minimal `rand` shim (see `shims/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer and
//! float ranges), [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically solid
//! for data generation and fully deterministic under a seed, but it does
//! **not** reproduce upstream rand's exact streams.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (the `Standard`
/// distribution of upstream rand).
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges uniformly samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant at these spans.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i64, u64, i32, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of a [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // Scramble the seed so nearby seeds give unrelated streams.
            let mut rng = StdRng {
                state: state ^ 0x5DEE_CE66_D0C3_3C65,
            };
            rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let xs: Vec<u64> = (0..10).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range(1i64..=50);
            assert!((1..=50).contains(&w));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn range_distribution_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 800, "counts {counts:?}");
        }
    }
}
