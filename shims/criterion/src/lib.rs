//! Minimal `criterion` shim (see `shims/README.md`).
//!
//! Provides the harness surface the workspace's benches use —
//! [`Criterion::benchmark_group`], group tuning knobs, `bench_function`
//! / `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! warm-up + timed-loop mean (no statistics, no reports, no HTML).
//!
//! Because benches are built with `harness = false`, `cargo test` also
//! runs them; `criterion_main!`'s generated `main` exits immediately
//! when invoked with libtest-style flags (`--test`, `--list`, …).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark label, optionally `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Runs one benchmark's closure in a warm-up + timed loop.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    min_iters: u64,
}

impl Bencher {
    /// Benchmark `routine`, printing its mean wall time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std_black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.min_iters || start.elapsed() < self.measurement {
            std_black_box(routine());
            iters += 1;
        }
        let mean = start.elapsed().as_secs_f64() / iters as f64;
        println!("    mean {:>12.3} µs over {iters} iters", mean * 1e6);
    }
}

/// A named set of related benchmarks sharing tuning knobs.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: u64,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on timed iterations (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// How long to run the routine untimed before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target wall time for the measurement loop.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("bench {}/{}", self.name, id.label);
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            min_iters: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Run one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op: the shim keeps no deferred state).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Whether this process was invoked by `cargo test`'s libtest driver
/// rather than `cargo bench` — benches must then exit without running.
pub fn invoked_as_test() -> bool {
    std::env::args().skip(1).any(|a| {
        a == "--test" || a == "--list" || a == "--exact" || a.starts_with("--format")
    })
}

/// Bundle bench functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups (no-op under `cargo test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_as_test() {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs >= 3, "ran {runs} iters");
    }

    #[test]
    fn bench_with_input_passes_borrow() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(1)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum())
        });
        assert_eq!(seen, 6);
    }
}
