//! Minimal `parking_lot` shim over `std::sync` (see `shims/README.md`).
//!
//! Provides the non-poisoning `lock()`/`read()`/`write()` API the real
//! crate is used for. Poisoned std locks are recovered transparently: a
//! panic while holding a lock does not poison it for other threads,
//! matching parking_lot semantics closely enough for this workspace.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutex that does not poison and whose `lock` never fails.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
