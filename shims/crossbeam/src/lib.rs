//! Minimal `crossbeam` shim over `std::sync::mpsc` (see `shims/README.md`).
//!
//! Only the `channel` module surface this workspace uses is provided:
//! unbounded MPSC channels with a cloneable `Sender`, blocking `recv`,
//! and `recv_timeout`.

/// Multi-producer single-consumer channels (std-backed).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (cloneable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Receiving half of an unbounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
