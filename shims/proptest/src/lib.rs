//! Minimal `proptest` shim (see `shims/README.md`).
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, `Just`,
//! [`arbitrary::any`], a character-class regex-subset string strategy,
//! [`collection::vec`], and the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros.
//!
//! Differences from real proptest: generation only — **no shrinking** —
//! and each test case uses a fixed seed derived from the test's module
//! path, name, and case index, so failures are reproducible run-to-run
//! without a persistence file.

/// Test-case configuration and the deterministic case RNG.
pub mod test_runner {
    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for one named test case. Seeds are a hash of the test
        /// identity and the case index: stable across runs and platforms.
        pub fn for_case(test: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng {
                state: h ^ ((case as u64) << 32 | 0x5EED),
            };
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy it selects.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: `f` receives the strategy for the
        /// previous depth level and returns the composite level. Each of
        /// the `depth` levels chooses 50/50 between the leaf and the
        /// composite, so generated structures have bounded depth.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branch = f(cur).boxed();
                cur = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            cur
        }

        /// Type-erase the strategy (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// Object-safe generation, used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<V> {
        inner: Rc<dyn DynStrategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.dyn_generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given options (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "empty prop_oneof!");
            Union { options }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i64, u64, i32, u32, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    /// String literals are regex-subset strategies: `[class]{lo,hi}`
    /// character-class repetitions (ranges and `\n`/`\t`/`\\`/`\"`
    /// escapes inside the class). This covers the workspace's patterns;
    /// anything else panics loudly rather than silently degrading.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_repeat(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `[class]{lo,hi}` / `[class]{n}` into (choices, lo, hi).
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class, rest) = rest.split_at(close);
        let rest = rest.strip_prefix(']')?;
        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            let c = if c == '\\' {
                match it.next()? {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }
            } else {
                c
            };
            if it.peek() == Some(&'-') {
                let mut look = it.clone();
                look.next();
                if let Some(&end) = look.peek() {
                    if end != ']' {
                        it = look;
                        it.next();
                        for x in c..=end {
                            chars.push(x);
                        }
                        continue;
                    }
                }
            }
            chars.push(c);
        }
        if chars.is_empty() {
            return None;
        }
        let bounds = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match bounds.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = bounds.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` — the full-domain strategy for a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i64, u64, i32, u32, i16, u16, i8, u8, usize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for [`vec`] — built from a `usize` (exact length)
    /// or a `Range<usize>` (half-open, like proptest).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assertion inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in -5i64..5, b in 0usize..3) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 3);
        }

        #[test]
        fn tuples_and_patterns((x, y) in (0i64..10, 0i64..10)) {
            prop_assert!(x < 10 && y < 10);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0i64..3, 2usize..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn regex_subset_strings(s in "[a-c]{1,4}") {
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(0i64), (5i64..10).prop_map(|x| x * 2)]) {
            prop_assert!(v == 0 || (10..20).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn flat_map_dependent(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v), "leaf outside strategy range: {v}");
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::for_case("recursive", 1);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5, "depth bound violated: {t:?}");
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = crate::collection::vec(0i64..100, 0usize..10);
        let a: Vec<_> = (0..20)
            .map(|c| s.generate(&mut crate::test_runner::TestRng::for_case("d", c)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|c| s.generate(&mut crate::test_runner::TestRng::for_case("d", c)))
            .collect();
        assert_eq!(a, b);
    }
}
