//! Runtime robustness: corrupted plans, site-side failures, and
//! multi-table chains through the real threaded runtime.

use skalla::core::{plan::Planner, Cluster, DistributedPlan, OptFlags, StageKind};
use skalla::gmdj::prelude::*;
use skalla::relation::{row, DataType, DomainMap, Relation, Schema};

fn schema() -> Schema {
    Schema::of(&[("g", DataType::Int), ("v", DataType::Int)])
}

fn cluster() -> Cluster {
    let p0 = Relation::new(schema(), vec![row![1i64, 10i64], row![2i64, 6i64]]).unwrap();
    let p1 = Relation::new(schema(), vec![row![1i64, 20i64]]).unwrap();
    Cluster::from_partitions(
        "t",
        vec![(p0, DomainMap::new()), (p1, DomainMap::new())],
    )
}

fn expr() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("t", &["g"])
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("c")],
        ))
        .build()
}

#[test]
fn corrupted_stage_range_is_a_site_error_not_a_hang() {
    let c = cluster();
    let mut plan: DistributedPlan =
        Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
    // Corrupt the unit's op range to point past the expression.
    for stage in &mut plan.stages {
        if let StageKind::Unit(u) = &mut stage.kind {
            u.ops = 5..6;
        }
    }
    let err = c.execute(&plan).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("op range"), "unexpected error: {msg}");
}

#[test]
fn corrupted_ship_columns_fail_cleanly() {
    let c = cluster();
    let mut plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
    for stage in &mut plan.stages {
        if let StageKind::Unit(u) = &mut stage.kind {
            u.ship_columns = vec!["no_such_column".to_string()];
        }
    }
    assert!(c.execute(&plan).is_err());
}

#[test]
fn wrong_site_filter_count_fails_cleanly() {
    let c = cluster();
    let mut plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
    for stage in &mut plan.stages {
        if let StageKind::Unit(u) = &mut stage.kind {
            u.site_filters.truncate(1); // 2 sites, 1 filter
        }
    }
    let err = c.execute(&plan).unwrap_err();
    assert!(err.to_string().contains("site filter"), "unexpected error: {err}");
}

#[test]
fn multi_table_chain_executes() {
    // Two fact tables: flows and alerts, both partitioned; the chain
    // aggregates over both in different rounds.
    let flows_schema = Schema::of(&[("asn", DataType::Int), ("bytes", DataType::Int)]);
    let alerts_schema = Schema::of(&[("asn", DataType::Int), ("sev", DataType::Int)]);
    let mut c = Cluster::new(2);
    c.add_table(
        "flows",
        vec![
            (
                Relation::new(
                    flows_schema.clone(),
                    vec![row![1i64, 100i64], row![2i64, 50i64]],
                )
                .unwrap(),
                DomainMap::new(),
            ),
            (
                Relation::new(flows_schema, vec![row![1i64, 300i64]]).unwrap(),
                DomainMap::new(),
            ),
        ],
    );
    c.add_table(
        "alerts",
        vec![
            (
                Relation::new(alerts_schema.clone(), vec![row![1i64, 5i64]]).unwrap(),
                DomainMap::new(),
            ),
            (
                Relation::new(
                    alerts_schema,
                    vec![row![1i64, 9i64], row![2i64, 2i64], row![3i64, 1i64]],
                )
                .unwrap(),
                DomainMap::new(),
            ),
        ],
    );

    let expr = GmdjExprBuilder::distinct_base("flows", &["asn"])
        .gmdj(Gmdj::new("flows").block(
            ThetaBuilder::group_by(&["asn"]).build(),
            vec![AggSpec::sum("bytes", "traffic")],
        ))
        .gmdj(Gmdj::new("alerts").block(
            ThetaBuilder::group_by(&["asn"]).build(),
            vec![AggSpec::count("n_alerts"), AggSpec::max("sev", "worst")],
        ))
        .gmdj(Gmdj::new("alerts").block(
            // Correlated across tables: alerts at least as severe as half
            // the AS's traffic-scaled threshold — a contrived but
            // cross-referencing condition.
            ThetaBuilder::group_by(&["asn"])
                .and(Expr::dcol("sev").mul(Expr::lit(100i64)).ge(Expr::bcol("traffic")))
                .build(),
            vec![AggSpec::count("big_alerts")],
        ))
        .build();

    for flags in [OptFlags::none(), OptFlags::all()] {
        let plan = Planner::new(c.distribution()).optimize(&expr, flags);
        let out = c.execute(&plan).unwrap();
        let sorted = out.relation.sorted_by(&["asn"]).unwrap();
        assert_eq!(
            sorted.schema().column_names(),
            ["asn", "traffic", "n_alerts", "worst", "big_alerts"]
        );
        // asn 1: traffic 400, alerts sev {5, 9}: 9*100 ≥ 400, 5*100 ≥ 400.
        assert_eq!(sorted.rows()[0], row![1i64, 400i64, 2i64, 9i64, 2i64]);
        // asn 2: traffic 50, one alert sev 2: 200 ≥ 50.
        assert_eq!(sorted.rows()[1], row![2i64, 50i64, 1i64, 2i64, 1i64]);
        // Oracle agreement.
        let oracle = expr
            .eval_centralized(&c.global_catalog(), Default::default())
            .unwrap();
        assert!(out.relation.same_bag(&oracle));
    }
}

#[test]
fn worker_panic_mid_morsel_is_a_clean_execution_error() {
    use skalla::core::EngineConfig;
    use skalla::gmdj::EvalOptions;
    let mut c = cluster();
    // One-row morsels with two workers, and a fault injected into morsel 0:
    // the panicking worker must not poison the cluster — the site catches
    // the unwind and reports a clean execution error upstream.
    c.configure(&EngineConfig {
        eval: EvalOptions {
            parallelism: 2,
            morsel_rows: 1,
            skew_balance: true,
            fault_panic_morsel: Some(0),
            ..EvalOptions::default()
        },
        ..EngineConfig::default()
    });
    let plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
    let err = c.execute(&plan).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("panicked in morsel 0") && msg.contains("site failed"),
        "unexpected error: {msg}"
    );

    // The same cluster value with clean options executes normally — no
    // poisoned state survives the failed run.
    c.configure(&EngineConfig {
        eval: EvalOptions {
            parallelism: 2,
            morsel_rows: 1,
            ..EvalOptions::default()
        },
        ..EngineConfig::default()
    });
    let out = c.execute(&plan).unwrap();
    let sorted = out.relation.sorted_by(&["g"]).unwrap();
    assert_eq!(sorted.rows()[0], row![1i64, 2i64]);
    assert_eq!(sorted.rows()[1], row![2i64, 1i64]);
}

#[test]
fn plan_survives_codec_round_trip_and_still_executes() {
    let c = cluster();
    let plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::all());
    let bytes = skalla::core::encode_plan(&plan);
    let back = skalla::core::decode_plan(&bytes).unwrap();
    assert_eq!(back, plan);
    let a = c.execute(&plan).unwrap();
    let b = c.execute(&back).unwrap();
    assert!(a.relation.same_bag(&b.relation));
}
