//! Skew balancing is a pure performance transform: turning it on or off
//! must never change a single output bit.
//!
//! The balanced path rebuilds each donor's result from per-segment
//! sub-aggregates computed by *other* sites (helpers), merged back in
//! donor morsel order — so any drift in morsel decomposition, segment
//! routing, or merge order shows up as a low-bit difference in the
//! order-sensitive f64 accumulators (AVG / VAR / STDDEV). These tests
//! compare raw `f64` bit patterns, not `Value` equality, across random
//! GMDJ chains over Zipf-partitioned data, thread counts, both kernels,
//! and both transports.

use proptest::prelude::*;
use skalla::core::{Cluster, OptFlags, Planner, RemoteCluster, SiteServer};
use skalla::datagen::partition::{partition_by_int_ranges, Partition};
use skalla::datagen::Zipf;
use skalla::gmdj::prelude::*;
use skalla::gmdj::EvalOptions;
use skalla::net::TcpConfig;
use skalla::relation::{DataType, Row, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Zipf-keyed detail: group key is a Zipf(s) rank (rank 0 hottest), so
/// range partitioning concentrates the hot keys on site 0 — the regime
/// the balancer detects and rewrites.
fn zipf_detail(rows: usize, keys: usize, s: f64, seed: u64) -> Relation {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let zipf = Zipf::new(keys, s);
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::new(
        Schema::of(&[("g", DataType::Int), ("v", DataType::Double)]),
        (0..rows)
            .map(|i| {
                let g = zipf.sample(&mut rng) as i64;
                // Thirds are inexact in binary, so SUM/AVG/VAR low bits
                // depend on accumulation order.
                let v = ((i.wrapping_mul(1_103_515_245).wrapping_add(12_345)) % 1000) as f64 / 3.0;
                Row::new(vec![g.into(), v.into()])
            })
            .collect(),
    )
    .expect("static schema")
}

/// Shape of the optional later rounds of the chain.
#[derive(Debug, Clone)]
enum Tail {
    /// Single-round chain: balancing only has the one stage to rewrite.
    None,
    /// Correlated round (θ references the round-1 AVG output).
    AboveAvg,
    /// Independent filter round plus a third correlated round.
    FilteredThenBelowAvg(i64),
}

fn arb_tail() -> impl Strategy<Value = Tail> {
    prop_oneof![
        Just(Tail::None),
        Just(Tail::AboveAvg),
        (0i64..300).prop_map(Tail::FilteredThenBelowAvg),
    ]
}

fn build_chain(tail: &Tail) -> GmdjExpr {
    let mut b = GmdjExprBuilder::distinct_base("t", &["g"]).gmdj(Gmdj::new("t").block(
        ThetaBuilder::group_by(&["g"]).build(),
        vec![
            AggSpec::count("cnt"),
            AggSpec::sum("v", "sm"),
            AggSpec::avg("v", "av"),
            AggSpec::var("v", "vr"),
            AggSpec::stddev("v", "sd"),
        ],
    ));
    b = match tail {
        Tail::None => b,
        Tail::AboveAvg => b.gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").ge(Expr::bcol("av")))
                .build(),
            vec![AggSpec::count("big"), AggSpec::avg("v", "av2")],
        )),
        Tail::FilteredThenBelowAvg(k) => b
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"])
                    .and(Expr::dcol("v").gt(Expr::lit(*k)))
                    .build(),
                vec![AggSpec::count("big"), AggSpec::sum("v", "sm2")],
            ))
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"])
                    .and(Expr::dcol("v").lt(Expr::bcol("av")))
                    .build(),
                vec![AggSpec::min("v", "mn"), AggSpec::var("v", "vr2")],
            )),
    };
    b.build()
}

/// Positional, bit-exact comparison (f64 by bit pattern, so -0.0 != 0.0
/// and NaN payloads count).
fn assert_bit_identical(on: &Relation, off: &Relation, ctx: &str) {
    assert_eq!(on.len(), off.len(), "{ctx}: row count differs");
    for (i, (ra, rb)) in on.rows().iter().zip(off.rows()).enumerate() {
        for (va, vb) in ra.values().iter().zip(rb.values()) {
            let same = match (va, vb) {
                (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                _ => va == vb,
            };
            assert!(same, "{ctx}: row {i} differs: {ra:?} vs {rb:?}");
        }
    }
}

fn opts(
    skew_balance: bool,
    columnar: bool,
    parallelism: usize,
    morsel_rows: usize,
) -> skalla::core::EngineConfig {
    skalla::core::EngineConfig {
        eval: EvalOptions {
            hash_path: true,
            parallelism,
            morsel_rows,
            legacy_probe: false,
            columnar,
            skew_balance,
            cache: true,
            fault_panic_morsel: None,
        },
        ..skalla::core::EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random chains × random Zipf data × random partitioning, thread
    /// counts and morsel sizes: the balanced execution is bit-identical
    /// to the unbalanced one under both kernels.
    #[test]
    fn balanced_matches_unbalanced_bitwise(
        rows in 200usize..900,
        keys in 8usize..64,
        s in 0.3f64..1.6,
        n_sites in 2usize..9,
        parallelism in 1usize..5,
        morsel_rows in 16usize..96,
        columnar in any::<bool>(),
        all_flags in any::<bool>(),
        tail in arb_tail(),
        seed in 0u64..1_000,
    ) {
        let detail = zipf_detail(rows, keys, s, seed);
        let mut cluster =
            Cluster::from_partitions("t", partition_by_int_ranges(&detail, "g", n_sites));
        let expr = build_chain(&tail);
        let flags = if all_flags { OptFlags::all() } else { OptFlags::none() };
        let plan = Planner::new(cluster.distribution()).optimize(&expr, flags);

        cluster.configure(&opts(false, columnar, parallelism, morsel_rows));
        let off = cluster.execute(&plan).expect("unbalanced run");
        cluster.configure(&opts(true, columnar, parallelism, morsel_rows));
        let on = cluster.execute(&plan).expect("balanced run");

        assert_bit_identical(
            &on.relation,
            &off.relation,
            &format!(
                "rows {rows} keys {keys} s {s:.2} sites {n_sites} par {parallelism} \
                 morsel {morsel_rows} columnar {columnar} flags {flags:?} tail {tail:?}"
            ),
        );
    }
}

/// The same invariant across transports: a loopback TCP run with skew
/// balancing on must be bit-identical (in key order — arrival order is
/// transport-dependent) to the in-process channel run, and its logical
/// traffic accounting — heavy-hitter reports and loan frames included —
/// must match the channel transport byte for byte.
#[test]
fn tcp_transport_matches_channel_under_balancing() {
    let detail = zipf_detail(6_000, 64, 1.3, 7);
    let parts = partition_by_int_ranges(&detail, "g", 4);
    let expr = build_chain(&Tail::FilteredThenBelowAvg(100));

    let canonical = |r: &Relation| r.sorted_by(&["g"]).expect("g is a key column");

    let mut local = Cluster::from_partitions("t", parts.clone());
    let plan = Planner::new(local.distribution()).optimize(&expr, OptFlags::all());
    local.configure(&opts(false, true, 2, 512));
    let local_off = local.execute(&plan).expect("local unbalanced");
    local.configure(&opts(true, true, 2, 512));
    let local_on = local.execute(&plan).expect("local balanced");
    assert_bit_identical(&local_on.relation, &local_off.relation, "local on/off");

    let spawn = |parts: &[Partition]| -> Vec<String> {
        let mut addrs = Vec::new();
        for part in parts {
            let catalog = HashMap::from([("t".to_string(), Arc::new(part.relation.clone()))]);
            let domains = HashMap::from([("t".to_string(), part.domains.clone())]);
            let server =
                SiteServer::bind("127.0.0.1:0", catalog, domains, TcpConfig::default()).unwrap();
            addrs.push(server.local_addr().unwrap().to_string());
            std::thread::spawn(move || {
                let _ = server.serve_once();
            });
        }
        addrs
    };

    let mut remote = RemoteCluster::connect(&spawn(&parts), &TcpConfig::default()).unwrap();
    remote.configure(&opts(true, true, 2, 512));
    let remote_on = remote.execute(&plan).expect("remote balanced");

    assert_bit_identical(
        &canonical(&remote_on.relation),
        &canonical(&local_on.relation),
        "tcp vs channel, balanced",
    );
    // Loan and report frames are accounted in payload bytes at the
    // protocol layer, so the two transports must agree exactly.
    assert_eq!(remote_on.stats.net, local_on.stats.net);
}
