//! Property tests for the semantic cache and hierarchical roll-up
//! serving: cached and rolled-up answers must be **bit-identical** to
//! fresh distributed execution, across random data, random GMDJ chains,
//! thread counts, and both evaluation kernels — and a partition-epoch
//! bump must make every dependent entry unreachable.
//!
//! Inputs are bounded integers, so every f64 the aggregates produce
//! (AVG / VAR / STDDEV included) is exact and the comparisons below can
//! demand raw bit equality rather than approximate agreement.

use proptest::prelude::*;
use skalla::core::{plan::Planner, Cluster, EngineConfig, OptFlags, Skalla, Warehouse};
use skalla::datagen::partition::partition_by_int_ranges;
use skalla::gmdj::eval::EvalOptions;
use skalla::gmdj::prelude::*;
use skalla::query::{cube_with_rollup, LevelSource};
use skalla::relation::{DataType, Relation, Row, Schema, Value};

fn detail_relation(rows: Vec<(i64, i64, i64)>) -> Relation {
    Relation::new(
        Schema::of(&[
            ("g", DataType::Int),
            ("h", DataType::Int),
            ("v", DataType::Int),
        ]),
        rows.into_iter()
            .map(|(g, h, v)| Row::new(vec![g.into(), h.into(), v.into()]))
            .collect(),
    )
    .expect("static schema")
}

/// Explicit evaluation options so the tests are independent of SKALLA_*
/// variables in the environment. Tiny morsels force many merge steps.
fn eval_opts(parallelism: usize, columnar: bool) -> EvalOptions {
    EvalOptions {
        hash_path: true,
        parallelism,
        morsel_rows: 7,
        legacy_probe: false,
        columnar,
        skew_balance: true,
        cache: true,
        fault_panic_morsel: None,
    }
}

/// Compare two relations row by row after sorting on `key`, demanding
/// raw bit equality on Doubles (Value equality treats -0.0 == 0.0).
fn assert_bits_equal(got: &Relation, want: &Relation, key: &[&str], ctx: &str) {
    let got = got.sorted_by(key).expect("sortable");
    let want = want.sorted_by(key).expect("sortable");
    assert_eq!(got.len(), want.len(), "row count ({ctx})\n{got}\nvs\n{want}");
    for (g, w) in got.rows().iter().zip(want.rows()) {
        for (gv, wv) in g.values().iter().zip(w.values()) {
            let same = match (gv, wv) {
                (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
                _ => gv == wv,
            };
            assert!(same, "bit mismatch ({ctx}): {gv:?} vs {wv:?}\nrow {g:?}\nvs  {w:?}");
        }
    }
}

fn all_aggs() -> Vec<AggSpec> {
    vec![
        AggSpec::count("cnt"),
        AggSpec::sum("v", "sm"),
        AggSpec::avg("v", "av"),
        AggSpec::min("v", "mn"),
        AggSpec::max("v", "mx"),
        AggSpec::var("v", "vr"),
        AggSpec::stddev("v", "sd"),
    ]
}

/// A randomly shaped two-operator GMDJ chain (correlated second block
/// when `correlated` — its residual references first-block outputs).
fn chain(correlated: bool) -> GmdjExpr {
    let mut b = GmdjExprBuilder::distinct_base("t", &["g"]).gmdj(Gmdj::new("t").block(
        ThetaBuilder::group_by(&["g"]).build(),
        vec![AggSpec::count("cnt"), AggSpec::avg("v", "av")],
    ));
    if correlated {
        b = b.gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").ge(Expr::bcol("av")))
                .build(),
            vec![AggSpec::count("above")],
        ));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hierarchical roll-up serving is bit-identical to running every
    /// grouping set as its own distributed query — across random data,
    /// partitionings, dimensionality, thread counts, and both kernels.
    #[test]
    fn cube_rollup_is_bit_identical_to_direct(
        rows in proptest::collection::vec((-4i64..4, 0i64..3, -20i64..20), 0..60),
        n_sites in 1usize..4,
        two_dims in any::<bool>(),
        parallelism in 1usize..5,
        columnar in any::<bool>(),
    ) {
        let detail = detail_relation(rows);
        let parts = partition_by_int_ranges(&detail, "g", n_sites);
        let mut cluster = Cluster::from_partitions("t", parts);
        cluster.configure(&EngineConfig {
            eval: eval_opts(parallelism, columnar),
            ..EngineConfig::default()
        });
        let dims: Vec<&str> = if two_dims { vec!["g", "h"] } else { vec!["g"] };
        let aggs = all_aggs();

        let rolled =
            cube_with_rollup(&cluster, "t", &dims, &aggs, OptFlags::all(), true).expect("rolled");
        let direct =
            cube_with_rollup(&cluster, "t", &dims, &aggs, OptFlags::all(), false).expect("direct");

        assert_bits_equal(
            &rolled.relation,
            &direct.relation,
            &dims,
            &format!("p={parallelism} columnar={columnar} sites={n_sites}"),
        );
        // Provenance: only the finest level of the rolled cube ran a
        // distributed query; the direct cube ran one per grouping set.
        prop_assert_eq!(rolled.rolled_up_levels(), (1usize << dims.len()) - 1);
        prop_assert!(rolled.levels[0].source != LevelSource::RolledUp);
        prop_assert_eq!(direct.rolled_up_levels(), 0);
        prop_assert!(rolled.total_rounds() <= direct.total_rounds());
        prop_assert!(rolled.total_bytes() <= direct.total_bytes());
    }

    /// A cache-served repeat of a random GMDJ chain is bit-identical to
    /// its first (computed) execution, across thread counts and kernels.
    #[test]
    fn cached_repeat_is_bit_identical(
        rows in proptest::collection::vec((-4i64..4, 0i64..3, -20i64..20), 0..60),
        n_sites in 1usize..4,
        correlated in any::<bool>(),
        parallelism in 1usize..5,
        columnar in any::<bool>(),
    ) {
        let detail = detail_relation(rows);
        let engine = Skalla::builder()
            .partitions("t", partition_by_int_ranges(&detail, "g", n_sites))
            .eval_options(eval_opts(parallelism, columnar))
            .build()
            .expect("engine builds");
        let expr = chain(correlated);
        let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());

        let first = engine.execute(&plan).expect("first run");
        prop_assert!(!first.stats.is_cache_hit());
        let second = engine.execute(&plan).expect("second run");
        prop_assert!(second.stats.is_cache_hit(), "repeat must be cache-served");
        prop_assert_eq!(second.stats.total_bytes(), 0, "cache hits move no bytes");

        assert_bits_equal(
            &second.relation,
            &first.relation,
            &["g"],
            &format!("p={parallelism} columnar={columnar} correlated={correlated}"),
        );
    }
}

/// A partition-epoch bump (what every catalog mutation performs) makes
/// every cached entry unreachable: the same plan pays its full cold
/// traffic again instead of serving a stale answer, and the hit/miss
/// counters record the sequence.
#[test]
fn epoch_bump_after_partition_swap_invalidates_the_cache() {
    let detail = detail_relation(vec![(1, 0, 10), (1, 1, 30), (2, 0, 20)]);
    let engine = Skalla::builder()
        .partitions("t", partition_by_int_ranges(&detail, "g", 2))
        .eval_options(eval_opts(2, true))
        .build()
        .expect("engine builds");
    let plan = Planner::new(engine.distribution()).optimize(&chain(true), OptFlags::all());

    let cold = engine.execute(&plan).expect("cold run");
    assert!(!cold.stats.is_cache_hit());
    let warm = engine.execute(&plan).expect("warm run");
    assert!(warm.stats.is_cache_hit(), "repeat must be cache-served");
    assert_bits_equal(&warm.relation, &cold.relation, &["g"], "warm repeat");

    let epoch = engine.bump_partition_epoch();
    assert_eq!(Warehouse::catalog(&engine).epoch(), epoch);

    let reexec = engine.execute(&plan).expect("post-bump run");
    assert!(
        !reexec.stats.is_cache_hit(),
        "post-bump run must re-execute against the sites"
    );
    assert_eq!(
        reexec.stats.net, cold.stats.net,
        "post-bump traffic is byte-for-byte the cold traffic"
    );
    let stats = engine.semantic_cache().stats();
    assert_eq!(stats.epoch, epoch);
    assert!(stats.hits >= 1 && stats.misses >= 2, "{stats:?}");
}
