//! Quantitative claims of the paper, asserted against measured traffic:
//!
//! * **Theorem 2** — total shipped rows ≤ Σᵢ 2·sᵢ·|Q| + s₀·|Q|,
//!   independent of the detail relation size.
//! * **Sect. 5.2 analysis** — with site-side group reduction, the traffic
//!   ratio is (2c + 2n + 1)/(4n + 1); the paper reports measurements
//!   within 5% of this formula.
//! * Group reduction and synchronization reduction never *increase*
//!   traffic.

use skalla::core::{plan::Planner, Cluster, OptFlags, StageKind};
use skalla::datagen::partition::{observe_int_ranges, partition_by_int_ranges};
use skalla::datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla::gmdj::prelude::*;

/// The Fig. 2 "group reduction query": two correlated GMDJs grouped on a
/// partition attribute (`cust_key` stands in for the 1:1 `Customer.Name`).
fn group_reduction_query() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("tpcr", &["cust_key"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_key"]).build(),
            vec![AggSpec::count("cnt"), AggSpec::avg("extended_price", "avgp")],
        ))
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_key"])
                .and(Expr::dcol("extended_price").ge(Expr::bcol("avgp")))
                .build(),
            vec![AggSpec::count("cnt2"), AggSpec::avg("quantity", "avgq")],
        ))
        .build()
}

fn nation_cluster(rows: usize, customers: usize, sites: usize) -> Cluster {
    let tpcr = generate_tpcr(&TpcrConfig {
        rows,
        customers,
        nations: 8,
        suppliers: 20,
        parts: 64,
        skew: 0.0,
        seed: 77,
    });
    let mut parts = partition_by_int_ranges(&tpcr, "nation_key", sites);
    observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
    Cluster::from_partitions("tpcr", parts)
}

#[test]
fn theorem2_row_bound_holds() {
    let cluster = nation_cluster(4000, 512, 4);
    let expr = group_reduction_query();
    let planner = Planner::new(cluster.distribution());
    for flags in [
        OptFlags::none(),
        OptFlags::group_reduction_only(),
        OptFlags::all(),
    ] {
        let plan = planner.optimize(&expr, flags);
        let out = cluster.execute(&plan).unwrap();
        let q = out.relation.len() as u64;

        // sᵢ per GMDJ stage and s₀ from the plan.
        let n = cluster.n_sites() as u64;
        let mut bound = 0u64;
        for stage in &plan.stages {
            match &stage.kind {
                StageKind::Base => bound += n * q,
                StageKind::Unit(u) => {
                    let s_i = u
                        .site_filters
                        .iter()
                        .filter(|f| !matches!(f, skalla::core::SiteFilter::Skip))
                        .count() as u64;
                    bound += 2 * s_i * q;
                }
            }
        }
        let (down, up) = out.stats.total_rows();
        assert!(
            down + up <= bound,
            "{flags:?}: rows {} > bound {bound}",
            down + up
        );
    }
}

#[test]
fn traffic_independent_of_detail_size() {
    // Theorem 2's point: growing the fact relation (with the same groups)
    // leaves the traffic unchanged.
    // A customer can fail to be drawn at all at the smaller row count, so
    // compare traffic *per base group*: down traffic is exactly |B| per
    // site per round and (without reductions) up traffic is |B| per site
    // per round too, so rows/|B| is invariant in |R|.
    let expr = group_reduction_query();
    let small = nation_cluster(2000, 256, 4);
    let large = nation_cluster(8000, 256, 4);
    let plan_s = Planner::new(small.distribution()).optimize(&expr, OptFlags::none());
    let plan_l = Planner::new(large.distribution()).optimize(&expr, OptFlags::none());
    let out_s = small.execute(&plan_s).unwrap();
    let out_l = large.execute(&plan_l).unwrap();
    let (b_s, b_l) = (out_s.relation.len() as u64, out_l.relation.len() as u64);
    let (down_s, up_s) = out_s.stats.total_rows();
    let (down_l, up_l) = out_l.stats.total_rows();
    assert_eq!(down_s % b_s, 0, "down rows are a whole multiple of |B|");
    assert_eq!(down_l % b_l, 0, "down rows are a whole multiple of |B|");
    assert_eq!(up_s % b_s, 0, "up rows are a whole multiple of |B|");
    assert_eq!(up_l % b_l, 0, "up rows are a whole multiple of |B|");
    assert_eq!(
        down_s / b_s,
        down_l / b_l,
        "down rows per group must not depend on |R|"
    );
    assert_eq!(
        up_s / b_s,
        up_l / b_l,
        "up rows per group must not depend on |R|"
    );
}

#[test]
fn fig2_formula_within_five_percent() {
    // Paper Sect. 5.2: groups-transferred ratio with site-side group
    // reduction = (2c + 2n + 1)/(4n + 1), matching measurements within 5%.
    for n in [2usize, 4, 8] {
        let cluster = nation_cluster(6000, 512, n);
        let expr = group_reduction_query();
        let planner = Planner::new(cluster.distribution());

        let base = cluster
            .execute(&planner.optimize(&expr, OptFlags::none()))
            .unwrap();
        let site_gr = cluster
            .execute(&planner.optimize(
                &expr,
                OptFlags {
                    group_reduction_site: true,
                    ..OptFlags::none()
                },
            ))
            .unwrap();

        // c scales the per-round groups returned under reduction: c·n·g
        // groups per round against the base's n·g. Grouping on a partition
        // attribute means every group is live at exactly one site, so the
        // sites collectively return the whole base once per round: c = 1.
        let c = 1.0;
        let predicted = (2.0 * c + 2.0 * n as f64 + 1.0) / (4.0 * n as f64 + 1.0);

        let (d0, u0) = base.stats.total_rows();
        let (d1, u1) = site_gr.stats.total_rows();
        let measured = (d1 + u1) as f64 / (d0 + u0) as f64;
        let err = (measured - predicted).abs() / predicted;
        assert!(
            err < 0.05,
            "n={n}: measured {measured:.4} vs predicted {predicted:.4} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn reductions_never_increase_traffic() {
    let cluster = nation_cluster(4000, 512, 4);
    let expr = group_reduction_query();
    let planner = Planner::new(cluster.distribution());
    let bytes = |flags: OptFlags| {
        cluster
            .execute(&planner.optimize(&expr, flags))
            .unwrap()
            .stats
            .total_bytes()
    };
    let none = bytes(OptFlags::none());
    let site = bytes(OptFlags {
        group_reduction_site: true,
        ..OptFlags::none()
    });
    let both_gr = bytes(OptFlags::group_reduction_only());
    let sync = bytes(OptFlags::sync_reduction_only());
    let all = bytes(OptFlags::all());
    assert!(site <= none, "site GR increased traffic: {site} > {none}");
    assert!(both_gr <= site, "coord GR increased traffic: {both_gr} > {site}");
    assert!(sync <= none, "sync reduction increased traffic: {sync} > {none}");
    assert!(all <= both_gr.min(sync), "combined worse than parts");
    // And the reductions are substantial, not marginal.
    assert!(
        (all as f64) < 0.7 * none as f64,
        "combined reductions should cut traffic well below the baseline: {all} vs {none}"
    );
}

#[test]
fn skalla_ships_no_detail_data() {
    // The defining property: distributed traffic is bounded by groups, the
    // baseline ships the whole fact relation.
    let cluster = nation_cluster(8000, 128, 4);
    let expr = group_reduction_query();
    let plan = Planner::new(cluster.distribution()).optimize(&expr, OptFlags::none());
    let dist = cluster.execute(&plan).unwrap();
    let central = cluster.execute_centralized(&expr).unwrap();
    assert!(central.relation.same_bag(&dist.relation));
    let (_, up_central) = central.stats.total_rows();
    assert_eq!(up_central, 8000, "baseline ships every detail row");
    let (down, up) = dist.stats.total_rows();
    // 128 groups, 3 rounds, 4 sites: orders of magnitude below 8000 rows.
    assert!(down + up <= (3 * 2 * 4) * 128);
    assert!(dist.stats.total_bytes() < central.stats.total_bytes());
}
