//! Synchronization reduction must be *provably safe*: the planner applies
//! Prop 2 / Cor 1 only when it can prove the preconditions, and the
//! runtime detects violated distribution declarations instead of
//! returning silently wrong answers.

use skalla::core::{plan::Planner, Cluster, OptFlags, StageKind};
use skalla::gmdj::prelude::*;
use skalla::relation::{row, DataType, Domain, DomainMap, Relation, Schema};

fn schema() -> Schema {
    Schema::of(&[("g", DataType::Int), ("v", DataType::Int)])
}

fn two_md_query() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("t", &["g"])
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::avg("v", "a")],
        ))
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").ge(Expr::bcol("a")))
                .build(),
            vec![AggSpec::count("c")],
        ))
        .build()
}

#[test]
fn no_chaining_without_declared_partition_attribute() {
    // Physically partitioned on g, but the domains are not declared: the
    // planner must not chain (it cannot prove Cor 1), only fold (Prop 2).
    let p0 = Relation::new(schema(), vec![row![1i64, 10i64], row![1i64, 20i64]]).unwrap();
    let p1 = Relation::new(schema(), vec![row![2i64, 5i64]]).unwrap();
    let cluster = Cluster::from_partitions(
        "t",
        vec![(p0, DomainMap::new()), (p1, DomainMap::new())],
    );
    let plan =
        Planner::new(cluster.distribution()).optimize(&two_md_query(), OptFlags::all());
    assert_eq!(plan.n_rounds(), 2, "{}", plan.explain());
    for st in &plan.stages {
        if let StageKind::Unit(u) = &st.kind {
            assert!(!u.local_chain);
        }
    }
    // And it still computes correctly.
    let out = cluster.execute(&plan).unwrap();
    let sorted = out.relation.sorted_by(&["g"]).unwrap();
    assert_eq!(sorted.rows()[0], row![1i64, 15.0, 1i64]);
    assert_eq!(sorted.rows()[1], row![2i64, 5.0, 1i64]);
}

#[test]
fn no_chaining_when_theta_does_not_entail_partition_equality() {
    // g is declared as a partition attribute, but the second GMDJ groups
    // on a *different* attribute — its θ does not entail g-equality, so
    // only operator 1's unit can fold; no chain of both.
    let p0 = Relation::new(schema(), vec![row![1i64, 10i64]]).unwrap();
    let p1 = Relation::new(schema(), vec![row![2i64, 5i64]]).unwrap();
    let cluster = Cluster::from_partitions(
        "t",
        vec![
            (p0, DomainMap::new().with("g", Domain::IntRange(1, 1))),
            (p1, DomainMap::new().with("g", Domain::IntRange(2, 2))),
        ],
    );
    let expr = GmdjExprBuilder::distinct_base("t", &["g"])
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("c1")],
        ))
        .gmdj(Gmdj::new("t").block(
            // Global (non-grouped) condition: every site contributes to
            // every base tuple.
            Expr::dcol("v").ge(Expr::lit(0i64)),
            vec![AggSpec::count("c2")],
        ))
        .build();
    let plan = Planner::new(cluster.distribution()).optimize(&expr, OptFlags::all());
    let has_chain = plan.stages.iter().any(|s| match &s.kind {
        StageKind::Unit(u) => u.local_chain,
        _ => false,
    });
    assert!(!has_chain, "{}", plan.explain());
    let out = cluster.execute(&plan).unwrap();
    let sorted = out.relation.sorted_by(&["g"]).unwrap();
    assert_eq!(sorted.rows()[0], row![1i64, 1i64, 2i64]);
    assert_eq!(sorted.rows()[1], row![2i64, 1i64, 2i64]);
}

#[test]
fn lying_distribution_declaration_is_detected() {
    // Both sites hold tuples with g = 1, but the declaration claims g is
    // partitioned. The chained plan would double-report group 1; the
    // ChainSync must catch it as an execution error.
    let p0 = Relation::new(schema(), vec![row![1i64, 10i64]]).unwrap();
    let p1 = Relation::new(schema(), vec![row![1i64, 20i64], row![2i64, 5i64]]).unwrap();
    let cluster = Cluster::from_partitions(
        "t",
        vec![
            (p0, DomainMap::new().with("g", Domain::IntRange(1, 1))),
            // Lie: claims only g=2 lives here.
            (p1, DomainMap::new().with("g", Domain::IntRange(2, 2))),
        ],
    );
    let plan =
        Planner::new(cluster.distribution()).optimize(&two_md_query(), OptFlags::sync_reduction_only());
    assert_eq!(plan.n_rounds(), 1, "the lie makes the planner chain");
    let err = cluster.execute(&plan).unwrap_err();
    assert!(
        err.to_string().contains("partition attribute"),
        "unexpected error: {err}"
    );
}

#[test]
fn middle_unit_chaining_without_base_fold() {
    // A literal base (coordinator-held) disables the Prop 2 fold, but the
    // two partition-aligned GMDJs still chain into one local round.
    let p0 = Relation::new(
        schema(),
        vec![row![1i64, 10i64], row![1i64, 30i64]],
    )
    .unwrap();
    let p1 = Relation::new(schema(), vec![row![2i64, 8i64]]).unwrap();
    let cluster = Cluster::from_partitions(
        "t",
        vec![
            (p0, DomainMap::new().with("g", Domain::IntRange(1, 1))),
            (p1, DomainMap::new().with("g", Domain::IntRange(2, 2))),
        ],
    );
    // Base includes a group (g=3) that no site owns.
    let base = Relation::new(
        Schema::of(&[("g", DataType::Int)]),
        vec![row![1i64], row![2i64], row![3i64]],
    )
    .unwrap();
    let expr = GmdjExprBuilder::literal_base(base)
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::avg("v", "a")],
        ))
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").ge(Expr::bcol("a")))
                .build(),
            vec![AggSpec::count("c")],
        ))
        .build();
    let plan = Planner::new(cluster.distribution()).optimize(&expr, OptFlags::all());
    assert_eq!(plan.n_rounds(), 1, "{}", plan.explain());
    let StageKind::Unit(u) = &plan.stages[0].kind else {
        panic!("expected unit");
    };
    assert!(u.local_chain && !u.fold_base);

    let out = cluster.execute(&plan).unwrap();
    let sorted = out.relation.sorted_by(&["g"]).unwrap();
    assert_eq!(sorted.rows()[0], row![1i64, 20.0, 1i64]);
    assert_eq!(sorted.rows()[1], row![2i64, 8.0, 1i64]);
    // The unowned group gets the empty aggregates.
    assert_eq!(
        sorted.rows()[2],
        Row::new(vec![Value::Int(3), Value::Null, Value::Int(0)])
    );
}

#[test]
fn coalescing_disabled_when_outer_depends_on_inner() {
    let p0 = Relation::new(schema(), vec![row![1i64, 10i64], row![1i64, 20i64]]).unwrap();
    let p1 = Relation::new(schema(), vec![row![2i64, 5i64]]).unwrap();
    let cluster = Cluster::from_partitions(
        "t",
        vec![(p0, DomainMap::new()), (p1, DomainMap::new())],
    );
    let plan = Planner::new(cluster.distribution()).optimize(
        &two_md_query(),
        OptFlags {
            coalesce: true,
            ..OptFlags::none()
        },
    );
    // θ₂ references `a` from MD₁: coalescing must not fire.
    assert_eq!(plan.expr.ops.len(), 2, "{}", plan.explain());
    assert!(cluster.execute(&plan).is_ok());
}

#[test]
fn fold_skipped_for_partial_key_grouping() {
    // Key is (g, v) but θ only groups on g: Prop 2's θ ⊨ θ_K fails and the
    // base must synchronize separately — and results stay correct.
    let p0 = Relation::new(schema(), vec![row![1i64, 10i64], row![1i64, 10i64]]).unwrap();
    let p1 = Relation::new(schema(), vec![row![1i64, 20i64]]).unwrap();
    let cluster = Cluster::from_partitions(
        "t",
        vec![(p0, DomainMap::new()), (p1, DomainMap::new())],
    );
    let expr = GmdjExprBuilder::distinct_base("t", &["g", "v"])
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("c")],
        ))
        .build();
    let plan = Planner::new(cluster.distribution()).optimize(&expr, OptFlags::all());
    assert!(matches!(plan.stages[0].kind, StageKind::Base), "{}", plan.explain());
    let out = cluster.execute(&plan).unwrap();
    // Groups (1,10) and (1,20), each counting all three g=1 tuples.
    let sorted = out.relation.sorted_by(&["v"]).unwrap();
    assert_eq!(sorted.rows()[0], row![1i64, 10i64, 3i64]);
    assert_eq!(sorted.rows()[1], row![1i64, 20i64, 3i64]);
}
