//! End-to-end observability: a traced distributed execution must produce
//! a well-formed Chrome trace containing the full span hierarchy (query,
//! stage, per-site task, sync), optimizer-decision events, and net
//! counters — and the per-round table must cover every executed stage.

use skalla::core::{Cluster, OptFlags, Planner};
use skalla::datagen::flow::{generate_flows, FlowConfig};
use skalla::datagen::partition::partition_by_int_ranges;
use skalla::obs::chrome::{metrics_snapshot, write_chrome_trace};
use skalla::obs::{json, Obs, Track};
use skalla::query;

const EXAMPLE1: &str = include_str!("../queries/example1.skl");

fn traced_run(flags: OptFlags) -> (Obs, skalla::core::QueryResult) {
    let flows = generate_flows(&FlowConfig::new(1500, 11));
    let parts = partition_by_int_ranges(&flows, "source_as", 3);
    let mut cluster = Cluster::from_partitions("flow", parts);
    let obs = Obs::recording();
    cluster.configure(&skalla::core::EngineConfig {
        obs: obs.clone(),
        ..skalla::core::EngineConfig::default()
    });
    let expr = query::compile_text(EXAMPLE1).unwrap();
    let planner = Planner::new(cluster.distribution()).with_obs(obs.clone());
    let (plan, decisions) = planner.optimize_with_decisions(&expr, flags);
    assert!(!decisions.is_empty(), "optimizer records its decisions");
    let out = cluster.execute(&plan).unwrap();
    (obs, out)
}

#[test]
fn chrome_trace_round_trips_and_has_all_span_kinds() {
    let (obs, out) = traced_run(OptFlags::group_reduction_only());
    let rec = obs.recorder().unwrap();

    // The JSON must parse back through our own strict parser.
    let text = write_chrome_trace(rec);
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("invalid trace JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Partition by phase.
    let ph = |e: &json::Json| e.get("ph").and_then(|p| p.as_str()).unwrap().to_string();
    let name = |e: &json::Json| e.get("name").and_then(|n| n.as_str()).unwrap().to_string();
    let spans: Vec<_> = events.iter().filter(|e| ph(e) == "X").collect();
    let instants: Vec<_> = events.iter().filter(|e| ph(e) == "i").collect();
    let counters: Vec<_> = events.iter().filter(|e| ph(e) == "C").collect();

    // Query span on the coordinator track.
    let query_span = spans
        .iter()
        .find(|e| name(e) == "query")
        .expect("query span");
    assert_eq!(
        query_span.get("tid").and_then(|t| t.as_u64()),
        Some(Track::Coordinator.tid())
    );
    // Stage spans for every executed round.
    for label in ["base", "gmdj 1", "gmdj 2"] {
        assert!(
            spans.iter().any(|e| name(e) == label),
            "missing stage span {label}"
        );
    }
    // Sync spans.
    assert!(spans.iter().any(|e| name(e) == "BaseSync"));
    assert!(spans.iter().any(|e| name(e) == "MergeSync"));
    // Per-site task spans: every site track saw all three stages (skew
    // balancing may add further "loan" task spans on helper tracks).
    for site in 0..3 {
        let tid = Track::Site(site).tid();
        for label in ["base", "gmdj 1", "gmdj 2"] {
            assert!(
                spans
                    .iter()
                    .any(|e| e.get("tid").and_then(|t| t.as_u64()) == Some(tid)
                        && name(e) == label),
                "site {site} missing task span {label}"
            );
        }
    }
    // At least one optimizer decision event on the optimizer track.
    assert!(
        instants
            .iter()
            .any(|e| e.get("tid").and_then(|t| t.as_u64()) == Some(Track::Optimizer.tid())),
        "no optimizer decision events in trace"
    );
    // Net byte counters present and consistent with the stats totals.
    let last_down = counters
        .iter()
        .rfind(|e| name(e) == "net.bytes_down")
        .and_then(|e| e.get("args").and_then(|a| a.get("value")).and_then(|v| v.as_f64()))
        .expect("net.bytes_down counter");
    assert_eq!(last_down as u64, out.stats.bytes_down());

    // Every span is closed (dur present and non-negative).
    for s in &spans {
        assert!(s.get("dur").and_then(|d| d.as_u64()).is_some(), "open span in trace");
    }
}

#[test]
fn round_table_covers_every_executed_stage() {
    let (_, out) = traced_run(OptFlags::group_reduction_only());
    let table = out.stats.round_table();
    // Header + plan round + 3 executed stages.
    assert_eq!(table.lines().count(), 1 + out.stats.stages.len());
    for st in &out.stats.stages {
        assert!(
            table.contains(&st.label),
            "round table missing stage {:?}:\n{table}",
            st.label
        );
    }
    let summaries = out.stats.round_summaries();
    assert_eq!(summaries.len(), out.stats.stages.len());
    // Executed stages moved rows and bytes.
    let gmdj1 = summaries.iter().find(|r| r.label == "gmdj 1").unwrap();
    assert!(gmdj1.rows_down > 0 && gmdj1.rows_up > 0);
    assert!(gmdj1.bytes_down > 0 && gmdj1.bytes_up > 0);
    assert!(gmdj1.skew >= 1.0);
}

#[test]
fn metrics_snapshot_is_valid_json_with_counters() {
    let (obs, out) = traced_run(OptFlags::all());
    let rec = obs.recorder().unwrap();
    let doc = json::parse(&metrics_snapshot(rec).to_json()).unwrap();
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("net.bytes_up")
            .and_then(|v| v.as_f64())
            .map(|v| v as u64),
        Some(out.stats.bytes_up())
    );
    assert!(doc.get("elapsed_us").and_then(|v| v.as_u64()).is_some());
}

#[test]
#[allow(deprecated)] // pins the serial Cluster's legacy setter path
fn disabled_obs_records_nothing_and_execution_matches() {
    // Same query with and without a recorder: identical results, and the
    // disabled handle never allocates a recorder.
    let flows = generate_flows(&FlowConfig::new(800, 3));
    let parts = partition_by_int_ranges(&flows, "source_as", 2);
    let mut cluster = Cluster::from_partitions("flow", parts);
    let expr = query::compile_text(EXAMPLE1).unwrap();
    let plan = Planner::new(cluster.distribution()).optimize(&expr, OptFlags::all());
    let plain = cluster.execute(&plan).unwrap();

    let obs = Obs::disabled();
    assert!(!obs.is_recording());
    assert!(obs.recorder().is_none());
    cluster.configure(&skalla::core::EngineConfig {
        obs,
        ..skalla::core::EngineConfig::default()
    });
    let traced = cluster.execute(&plan).unwrap();
    assert!(plain.relation.same_bag(&traced.relation));
}
