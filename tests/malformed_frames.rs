//! Malformed-frame robustness: garbage, truncated, and out-of-order
//! remote frames must surface as clean `TAG_ERROR` replies (through the
//! channel transport's [`site_session_loop`]) or clean session errors
//! (at the TCP framing layer) — never a panic, never a hang. These are
//! the regression tests for the decode paths in `protocol.rs`,
//! `relation/codec.rs`, and `tcp.rs` that used to `unwrap`/`expect` on
//! remote input.

use skalla::core::distribution::DistributionInfo;
use skalla::core::plan::{OptFlags, Planner};
use skalla::core::plan_codec::encode_plan_with_options;
use skalla::core::protocol;
use skalla::core::site::site_session_loop;
use skalla::gmdj::prelude::*;
use skalla::gmdj::EvalOptions;
use skalla::net::{star, Message, TcpConfig, TcpSiteListener};
use skalla::obs::Obs;
use skalla::relation::{row, DataType, DomainMap, Relation, Schema};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> HashMap<String, Arc<Relation>> {
    let rel = Relation::new(
        Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
        vec![row![1i64, 10i64], row![2i64, 20i64]],
    )
    .unwrap();
    HashMap::from([("t".to_string(), Arc::new(rel))])
}

fn plan_bytes() -> Vec<u8> {
    let mut dist = DistributionInfo::new(1);
    dist.set_table("t", vec![DomainMap::new()]);
    let expr = GmdjExprBuilder::distinct_base("t", &["g"])
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("c")],
        ))
        .build();
    let plan = Planner::new(dist).optimize(&expr, OptFlags::none());
    encode_plan_with_options(&plan, &EvalOptions::default(), None)
}

/// Feed the session demultiplexer every malformed-frame shape a remote
/// peer can produce and assert each one is answered with a clean
/// `TAG_ERROR` — and that the session loop itself survives all of them
/// and still shuts down normally (no panic, no poisoned worker).
#[test]
fn garbage_and_truncated_frames_get_clean_error_replies() {
    let (coord, mut sites) = star(1);
    let site = sites.pop().unwrap();
    let cat = catalog();
    let session = std::thread::spawn(move || {
        site_session_loop(&cat, Arc::new(site), false, &Obs::disabled())
    });

    let expect_error = |frag: &str| {
        let (_, reply) = coord
            .recv(Duration::from_secs(10))
            .expect("site must reply, not hang");
        assert_eq!(reply.tag, protocol::TAG_ERROR, "expected an error frame");
        let msg = protocol::decode_error(&reply.payload);
        assert!(msg.contains(frag), "error {msg:?} does not mention {frag:?}");
        msg
    };

    // A stage task before any plan arrived.
    coord
        .send(0, Message::for_query(protocol::TAG_RUN_STAGE, 1, vec![]))
        .unwrap();
    expect_error("stage task before plan");

    // A plan frame carrying pure garbage.
    coord
        .send(
            0,
            Message::for_query(protocol::TAG_PLAN, 1, vec![0xDE, 0xAD, 0xBE, 0xEF]),
        )
        .unwrap();
    expect_error("bad plan");

    // A genuine plan truncated mid-stream (a dropped TCP segment shape).
    let bytes = plan_bytes();
    let truncated = bytes[..bytes.len() / 2].to_vec();
    coord
        .send(0, Message::for_query(protocol::TAG_PLAN, 1, truncated))
        .unwrap();
    expect_error("bad plan");

    // Now install the intact plan, then corrupt everything after it.
    coord
        .send(0, Message::for_query(protocol::TAG_PLAN, 1, bytes))
        .unwrap();

    // A truncated RUN_STAGE payload: one byte where a u32 stage index
    // belongs (the old decoder `unwrap`ed here).
    coord
        .send(0, Message::for_query(protocol::TAG_RUN_STAGE, 1, vec![0x07]))
        .unwrap();
    expect_error("unexpected end of input");

    // A garbage LOAN_TASK payload.
    coord
        .send(
            0,
            Message::for_query(protocol::TAG_LOAN_TASK, 1, vec![0xFF, 0x00]),
        )
        .unwrap();
    expect_error("unexpected end of input");

    // A tag outside the protocol registry entirely.
    coord
        .send(0, Message::for_query(0xEE, 1, b"???".to_vec()))
        .unwrap();
    expect_error("unexpected message tag");

    // The session survived every malformed frame: it still executes the
    // orderly shutdown and the thread joins without a panic.
    coord.broadcast(&protocol::shutdown()).unwrap();
    session.join().expect("session loop must not panic");
}

/// The TCP accept path: garbage hellos, truncated headers, and absurd
/// length fields are clean per-session errors, and the listener stays
/// usable for the next connection.
#[test]
fn tcp_accept_survives_garbage_truncated_and_oversized_frames() {
    let listener = TcpSiteListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let cfg = TcpConfig {
        connect_timeout: Duration::from_millis(500),
        ..TcpConfig::default()
    };

    let accepts = std::thread::spawn(move || {
        (0..3)
            .map(|_| listener.accept(&cfg).map(|_| ()))
            .collect::<Vec<_>>()
    });

    // Session 1: a well-formed v2 frame that is not a handshake hello.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut frame = vec![7u8]; // tag 7, not the hello tag
    frame.extend_from_slice(&0u32.to_le_bytes()); // query id
    frame.extend_from_slice(&3u32.to_le_bytes()); // len
    frame.extend_from_slice(b"abc");
    s.write_all(&frame).unwrap();

    // Session 2: a header truncated mid-way, then a hard close.
    let mut s2 = TcpStream::connect(addr).unwrap();
    s2.write_all(&[0xFF, 0x01, 0x02, 0x03]).unwrap();
    s2.shutdown(Shutdown::Both).unwrap();

    // Session 3: a header whose length field claims 4 GiB.
    let mut s3 = TcpStream::connect(addr).unwrap();
    let mut frame = vec![0xFFu8];
    frame.extend_from_slice(&0u32.to_le_bytes());
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    s3.write_all(&frame).unwrap();

    let results = accepts.join().expect("accept loop must not panic");
    let errs: Vec<String> = results
        .into_iter()
        .map(|r| r.expect_err("malformed session must fail accept").to_string())
        .collect();
    assert!(errs[0].contains("bad handshake frame"), "{errs:?}");
    assert!(
        errs[1].contains("disconnected") || errs[1].contains("Disconnected"),
        "{errs:?}"
    );
    assert!(errs[2].contains("exceeds"), "{errs:?}");
}
