//! The distributed telemetry plane, end to end over real TCP sites.
//!
//! After every query the coordinator broadcasts `QUERY_DONE` and each
//! site replies with a telemetry frame: its per-query busy times plus
//! (when the site records) its span/counter delta. These tests pin the
//! three observable consequences:
//!
//! 1. the ExplainAnalyze round table reports *site-measured* busy times
//!    over TCP, agreeing with the in-process channel transport's ground
//!    truth on which sites did work in which round;
//! 2. `--trace` style merging: the coordinator's recorder ends up with
//!    one process lane per site, clock-aligned, with spans attributed
//!    to the right query ids;
//! 3. the control-plane pull (`pull_telemetry`) reaches every site
//!    without disturbing query execution.
//!
//! Telemetry frames must also never perturb the paper's traffic model:
//! every test asserts the channel/TCP `NetStats` byte-identity that the
//! rest of the suite relies on.

use proptest::prelude::*;
use skalla::core::{protocol, OptFlags, Planner, SiteServer, Skalla};
use skalla::datagen::partition::{observe_int_ranges, partition_by_int_ranges, Partition};
use skalla::datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla::gmdj::prelude::*;
use skalla::net::TcpConfig;
use skalla::obs::json::{self, Json};
use skalla::obs::Obs;
use std::collections::HashMap;
use std::sync::Arc;

const N_SITES: usize = 4;

/// Nation-partitioned TPCR fragments — the Fig. 2 experimental setup at
/// test scale (same construction as the transport-equivalence tests).
fn fig2_partitions() -> Vec<Partition> {
    let tpcr = generate_tpcr(&TpcrConfig::new(8_000, 42));
    let mut parts = partition_by_int_ranges(&tpcr, "nation_key", N_SITES);
    observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
    parts
}

/// The Fig. 2 group-reduction query: two correlated GMDJs.
fn fig2_query() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("tpcr", &["cust_group"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_group"]).build(),
            vec![
                AggSpec::count("cnt1"),
                AggSpec::avg("extended_price", "avg1"),
            ],
        ))
        .gmdj(
            Gmdj::new("tpcr").block(
                ThetaBuilder::group_by(&["cust_group"])
                    .and(Expr::dcol("extended_price").ge(Expr::bcol("avg1")))
                    .build(),
                vec![AggSpec::count("cnt2"), AggSpec::avg("quantity", "avg2")],
            ),
        )
        .build()
}

/// Spawn one `SiteServer` per fragment. With `record` each site gets a
/// recording [`Obs`] and the `site-N` process identity a standalone
/// `skalla-cli site` would claim, so its delta ships in telemetry
/// replies; without, sites still measure busy times (that path is
/// always on) but export no spans.
fn spawn_sites(parts: &[Partition], record: bool) -> Vec<String> {
    let mut addrs = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        let catalog = HashMap::from([("tpcr".to_string(), Arc::new(part.relation.clone()))]);
        let domains = HashMap::from([("tpcr".to_string(), part.domains.clone())]);
        let mut server =
            SiteServer::bind("127.0.0.1:0", catalog, domains, TcpConfig::default()).unwrap();
        if record {
            let obs = Obs::recording();
            if let Some(rec) = obs.recorder() {
                rec.set_process(2 + i as u32, format!("site-{i}"));
            }
            server.set_obs(obs);
        }
        addrs.push(server.local_addr().unwrap().to_string());
        std::thread::spawn(move || {
            let _ = server.serve_once();
        });
    }
    addrs
}

/// Per stage, which sites did measurable work (busy > 0): the shape we
/// can compare across transports without timing flakiness.
fn worked(stages: &[skalla::core::StageTimes]) -> Vec<(String, Vec<bool>)> {
    stages
        .iter()
        .map(|s| {
            (
                s.label.clone(),
                s.site_busy_s.iter().map(|&b| b > 0.0).collect(),
            )
        })
        .collect()
}

/// Over TCP, the round table's busy/skew columns must come from real
/// site-side measurements shipped in telemetry frames — not simulated
/// zeros (the pre-telemetry behaviour) — and must agree with the
/// channel transport's ground truth about which sites worked when.
#[test]
fn tcp_site_busy_matches_channel_transport_ground_truth() {
    let parts = fig2_partitions();
    let expr = fig2_query();

    let local = Skalla::builder()
        .partitions("tpcr", parts.clone())
        .build()
        .unwrap();
    let plan = Planner::new(local.distribution()).optimize(&expr, OptFlags::all());
    let local_out = local.execute(&plan).unwrap();

    let addrs = spawn_sites(&parts, false);
    let remote = Skalla::builder()
        .remote(&addrs, TcpConfig::default())
        .build()
        .unwrap();
    let remote_out = remote.execute(&plan).unwrap();

    // Telemetry frames ride tag 9 and are exempt from accounting, so
    // the paper's traffic model still sees identical bytes.
    assert_eq!(remote_out.stats.net, local_out.stats.net);

    // Both backends now measure at the sites; the gmdj round must show
    // real work and both transports must agree on who did it.
    assert_eq!(
        worked(&remote_out.stats.stages),
        worked(&local_out.stats.stages),
        "site-busy pattern must match the channel-transport ground truth"
    );
    let gmdj_busy: f64 = remote_out
        .stats
        .stages
        .iter()
        .filter(|s| s.label.starts_with("gmdj"))
        .flat_map(|s| s.site_busy_s.iter())
        .sum();
    assert!(
        gmdj_busy > 0.0,
        "TCP run reported no site busy time at all — telemetry not merged"
    );
    // …and the human-facing round table renders it (busy max column).
    let table = remote_out.stats.round_table();
    assert!(
        !table.contains("busy max") || table.lines().count() > 1,
        "round table lost its rows: {table}"
    );
}

/// Coordinator + recording sites: after a query the coordinator's
/// recorder holds one remote lane per site, clock-aligned into the
/// coordinator's timeline, and the merged Chrome trace attributes the
/// site spans to the query that ran.
#[test]
fn merged_trace_has_one_aligned_lane_per_site() {
    let parts = fig2_partitions();
    let expr = fig2_query();
    let addrs = spawn_sites(&parts, true);

    let obs = Obs::recording();
    let rec = Arc::clone(obs.recorder().unwrap());
    rec.set_process(1, "coordinator");
    let engine = Skalla::builder()
        .remote(&addrs, TcpConfig::default())
        .obs(obs)
        .build()
        .unwrap();
    let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());
    engine.execute(&plan).unwrap();

    // One lane per site, named by the coordinator from the link index
    // (authoritative even if a site misconfigured its own identity).
    let parts_seen = rec.remote_parts();
    let mut names: Vec<String> = parts_seen.iter().map(|p| p.process_name.clone()).collect();
    names.sort();
    assert_eq!(
        names,
        (0..N_SITES).map(|i| format!("site-{i}")).collect::<Vec<_>>(),
        "expected one remote lane per site"
    );
    let now = rec.now_us();
    for part in &parts_seen {
        assert!(
            !part.spans.is_empty(),
            "{}: site shipped no spans",
            part.process_name
        );
        for span in &part.spans {
            let start = part.shift_us(span.start_us);
            let end = part.shift_us(span.start_us + span.dur_us.unwrap_or(0));
            assert!(start <= end, "alignment reversed a span");
            // Aligned site work happened within the coordinator's run
            // (generous slack: loopback offsets are microseconds, the
            // bound guards against s-vs-µs unit mistakes).
            assert!(
                end <= now + 2_000_000,
                "{}: span ends {}µs past the coordinator clock",
                part.process_name,
                end - now
            );
        }
    }

    // The merged Chrome trace exposes those lanes with query-attributed
    // spans: every site lane has ≥1 "X" span carrying a query_id arg.
    let trace = json::parse(&skalla::obs::chrome::write_chrome_trace(&rec)).unwrap();
    let events = trace.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut lane_of = HashMap::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) == Some("M")
            && ev.get("name").and_then(Json::as_str) == Some("process_name")
        {
            lane_of.insert(
                ev.get("pid").and_then(Json::as_u64).unwrap(),
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
    }
    let mut attributed_site_spans = 0;
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let pid = ev.get("pid").and_then(Json::as_u64).unwrap();
        if !lane_of.get(&pid).is_some_and(|n| n.starts_with("site-")) {
            continue;
        }
        if let Some(qid) = ev
            .get("args")
            .and_then(|a| a.get("query_id"))
            .and_then(Json::as_u64)
        {
            assert!(qid >= 1, "site span attributed to the control stream");
            attributed_site_spans += 1;
        }
    }
    assert!(
        attributed_site_spans >= N_SITES,
        "expected ≥1 query-attributed span per site lane, got {attributed_site_spans}"
    );
}

/// The control-plane pull: `pull_telemetry` reaches every connected
/// site and returns its recorder delta, and the engine still executes
/// queries correctly afterwards (the pull must not desynchronise the
/// persistent sessions).
#[test]
fn pull_telemetry_reaches_every_site_without_disturbing_queries() {
    let parts = fig2_partitions();
    let expr = fig2_query();
    let addrs = spawn_sites(&parts, true);
    let engine = Skalla::builder()
        .remote(&addrs, TcpConfig::default())
        .build()
        .unwrap();

    let reports = engine.pull_telemetry();
    let mut sites: Vec<usize> = reports.iter().map(|(s, _)| *s).collect();
    sites.sort_unstable();
    assert_eq!(sites, (0..N_SITES).collect::<Vec<_>>());
    for (site, report) in &reports {
        assert!(
            report.obs.is_some(),
            "site {site} is recording but its pull reply had no delta"
        );
    }

    // Queries still work after the pull, with intact accounting.
    let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());
    let out = engine.execute(&plan).unwrap();
    let local = Skalla::builder()
        .partitions("tpcr", parts)
        .build()
        .unwrap();
    let want = local.execute(&plan).unwrap();
    assert_eq!(out.stats.net, want.stats.net);
    assert_eq!(
        out.relation.sorted_by(&["cust_group"]).unwrap(),
        want.relation.sorted_by(&["cust_group"]).unwrap()
    );
}

proptest! {
    /// The telemetry payload codec round-trips arbitrary busy reports
    /// exactly (the delta side is covered by the obs crate's own
    /// round-trip tests; `None` must survive too).
    #[test]
    fn telemetry_payload_round_trips(
        busy in proptest::collection::vec((0u32..64, 0u32..8, 0.0f64..10.0), 0..20),
    ) {
        let report = protocol::SiteTelemetry { busy, obs: None };
        let msg = protocol::telemetry(&report);
        prop_assert_eq!(msg.tag, protocol::TAG_TELEMETRY);
        let back = protocol::decode_telemetry(&msg.payload).unwrap();
        prop_assert_eq!(back, report);
    }
}
