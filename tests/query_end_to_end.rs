//! End-to-end: the paper's Example 1 written in the query language,
//! executed distributed, against hand-computed expected values.

use skalla::core::{Cluster, OptFlags};
use skalla::query;
use skalla::relation::{csv, row, DataType, Domain, DomainMap, Relation, Row, Schema, Value};

/// Flow tuples: (source_as, dest_as, num_bytes), placed so source_as is a
/// partition attribute across two "routers".
fn cluster() -> Cluster {
    let schema = Schema::of(&[
        ("source_as", DataType::Int),
        ("dest_as", DataType::Int),
        ("num_bytes", DataType::Int),
    ]);
    // Site 0: source_as ∈ {1}: (1,10): 100, 300; (1,20): 50.
    let p0 = Relation::new(
        schema.clone(),
        vec![
            row![1i64, 10i64, 100i64],
            row![1i64, 10i64, 300i64],
            row![1i64, 20i64, 50i64],
        ],
    )
    .unwrap();
    // Site 1: source_as ∈ {2}: (2,10): 80, 120.
    let p1 = Relation::new(
        schema,
        vec![row![2i64, 10i64, 80i64], row![2i64, 10i64, 120i64]],
    )
    .unwrap();
    Cluster::from_partitions(
        "flow",
        vec![
            (p0, DomainMap::new().with("source_as", Domain::IntRange(1, 1))),
            (p1, DomainMap::new().with("source_as", Domain::IntRange(2, 2))),
        ],
    )
}

const EXAMPLE1: &str = "
    BASE SELECT DISTINCT source_as, dest_as FROM flow;
    MD cnt1 = COUNT(*), sum1 = SUM(num_bytes)
       OVER flow
       WHERE source_as = b.source_as AND dest_as = b.dest_as;
    MD cnt2 = COUNT(*)
       OVER flow
       WHERE source_as = b.source_as AND dest_as = b.dest_as
             AND num_bytes >= b.sum1 / b.cnt1;
";

fn expected() -> Vec<Row> {
    vec![
        // (1,10): avg 200 → one flow ≥ 200.
        row![1i64, 10i64, 2i64, 400i64, 1i64],
        // (1,20): single flow equals its own average.
        row![1i64, 20i64, 1i64, 50i64, 1i64],
        // (2,10): avg 100 → one flow ≥ 100.
        row![2i64, 10i64, 2i64, 200i64, 1i64],
    ]
}

#[test]
fn example1_text_query_all_flag_sets() {
    let c = cluster();
    for flags in [
        OptFlags::none(),
        OptFlags::coalesce_only(),
        OptFlags::group_reduction_only(),
        OptFlags::sync_reduction_only(),
        OptFlags::all(),
    ] {
        let out = query::run(EXAMPLE1, &c, flags).unwrap();
        let sorted = out.relation.sorted_by(&["source_as", "dest_as"]).unwrap();
        assert_eq!(sorted.rows(), expected().as_slice(), "{flags:?}");
        assert_eq!(
            sorted.schema().column_names(),
            ["source_as", "dest_as", "cnt1", "sum1", "cnt2"]
        );
    }
}

#[test]
fn example5_single_synchronization() {
    // Paper Example 5: partition attribute + key entailment ⇒ the whole
    // query runs locally with a single synchronization.
    let c = cluster();
    let explained = query::explain(EXAMPLE1, &c, OptFlags::all()).unwrap();
    assert!(explained.contains("1 round(s)"), "{explained}");
    let out = query::run(EXAMPLE1, &c, OptFlags::all()).unwrap();
    assert_eq!(out.stats.n_rounds(), 1);
    // No base structure ever travels down.
    assert_eq!(out.stats.total_rows().0, 0);
}

#[test]
fn results_export_to_csv_and_back() {
    let c = cluster();
    let out = query::run(EXAMPLE1, &c, OptFlags::all()).unwrap();
    let sorted = out.relation.sorted_by(&["source_as", "dest_as"]).unwrap();
    let text = csv::to_csv(&sorted);
    assert!(text.starts_with("source_as,dest_as,cnt1,sum1,cnt2\n"));
    let back = csv::from_csv(&text, sorted.schema().clone()).unwrap();
    assert_eq!(back, sorted);
}

#[test]
fn unpivot_style_marginals_via_multiple_blocks() {
    // The paper cites unpivot/marginal-distribution queries as GMDJ
    // targets: compute per-source totals and three marginal counts with
    // one operator (three blocks after manual construction → here three
    // MD statements that the optimizer coalesces back into one round).
    let c = cluster();
    let q = "
        BASE SELECT DISTINCT source_as FROM flow;
        MD total = COUNT(*) OVER flow WHERE source_as = b.source_as;
        MD small = COUNT(*) OVER flow WHERE source_as = b.source_as AND num_bytes < 100;
        MD large = COUNT(*) OVER flow WHERE source_as = b.source_as AND num_bytes >= 100;
    ";
    let out = query::run(q, &c, OptFlags::all()).unwrap();
    let sorted = out.relation.sorted_by(&["source_as"]).unwrap();
    assert_eq!(sorted.rows()[0], row![1i64, 3i64, 1i64, 2i64]);
    assert_eq!(sorted.rows()[1], row![2i64, 2i64, 1i64, 1i64]);
    // Coalescing + sync reduction: single round despite three MDs.
    assert_eq!(out.stats.n_rounds(), 1);
    let _ = Value::Null;
}
