//! Property-based end-to-end tests: for *random* detail relations, random
//! partitionings, and randomly shaped GMDJ chains, distributed evaluation
//! under random optimization flags equals centralized evaluation.

use proptest::prelude::*;
use skalla::core::{plan::Planner, Cluster, OptFlags};
use skalla::datagen::partition::{partition_by_int_ranges, partition_round_robin, Partition};
use skalla::gmdj::eval::EvalOptions;
use skalla::gmdj::prelude::*;
use skalla::relation::{DataType, Relation, Row, Schema};

fn detail_relation(rows: Vec<(i64, i64, i64)>) -> Relation {
    Relation::new(
        Schema::of(&[
            ("g", DataType::Int),
            ("h", DataType::Int),
            ("v", DataType::Int),
        ]),
        rows.into_iter()
            .map(|(g, h, v)| Row::new(vec![g.into(), h.into(), v.into()]))
            .collect(),
    )
    .expect("static schema")
}

#[derive(Debug, Clone)]
enum SecondOp {
    None,
    /// Correlated: count v ≥ group average.
    AboveAvg,
    /// Independent (coalescible): count v > constant.
    Filtered(i64),
    /// Non-equi: count detail tuples with v ≥ b.mx across all groups.
    NonEqui,
}

fn build_expr(group_cols: &[&str], second: &SecondOp) -> GmdjExpr {
    let mut first_aggs = vec![
        AggSpec::count("cnt"),
        AggSpec::avg("v", "avg"),
        AggSpec::max("v", "mx"),
    ];
    first_aggs.push(AggSpec::sum("v", "sm"));
    let mut b = GmdjExprBuilder::distinct_base("t", group_cols).gmdj(
        Gmdj::new("t").block(ThetaBuilder::group_by(group_cols).build(), first_aggs),
    );
    b = match second {
        SecondOp::None => b,
        SecondOp::AboveAvg => b.gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(group_cols)
                .and(Expr::dcol("v").ge(Expr::bcol("avg")))
                .build(),
            vec![AggSpec::count("above")],
        )),
        SecondOp::Filtered(k) => b.gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(group_cols)
                .and(Expr::dcol("v").gt(Expr::lit(*k)))
                .build(),
            vec![AggSpec::count("big")],
        )),
        SecondOp::NonEqui => b.gmdj(Gmdj::new("t").block(
            Expr::dcol("v").ge(Expr::bcol("mx")),
            vec![AggSpec::count("geq_max")],
        )),
    };
    b.build()
}

fn arb_second() -> impl Strategy<Value = SecondOp> {
    prop_oneof![
        Just(SecondOp::None),
        Just(SecondOp::AboveAvg),
        (-10i64..10).prop_map(SecondOp::Filtered),
        Just(SecondOp::NonEqui),
    ]
}

fn arb_flags() -> impl Strategy<Value = OptFlags> {
    (0u32..16).prop_map(|bits| OptFlags {
        coalesce: bits & 1 != 0,
        group_reduction_site: bits & 2 != 0,
        group_reduction_coord: bits & 4 != 0,
        sync_reduction: bits & 8 != 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn distributed_equals_centralized(
        rows in proptest::collection::vec((-6i64..6, 0i64..3, -20i64..20), 0..60),
        n_sites in 1usize..5,
        by_range in any::<bool>(),
        group_on_h in any::<bool>(),
        second in arb_second(),
        flags in arb_flags(),
    ) {
        let detail = detail_relation(rows);
        let parts: Vec<Partition> = if by_range {
            partition_by_int_ranges(&detail, "g", n_sites)
        } else {
            partition_round_robin(&detail, n_sites)
        };
        let cluster = Cluster::from_partitions("t", parts);
        let group_cols: Vec<&str> = if group_on_h { vec!["g", "h"] } else { vec!["g"] };
        let expr = build_expr(&group_cols, &second);

        let oracle = expr
            .eval_centralized(&cluster.global_catalog(), EvalOptions::default())
            .expect("oracle evaluates");
        let plan = Planner::new(cluster.distribution()).optimize(&expr, flags);
        let out = cluster.execute(&plan).expect("distributed evaluates");
        prop_assert!(
            out.relation.same_bag(&oracle),
            "flags {flags:?} second {second:?} groups {group_cols:?}\nplan:\n{}\ngot:\n{}\nwant:\n{}",
            plan.explain(),
            out.relation.canonicalized(),
            oracle.canonicalized()
        );
    }

    /// Group reduction flags never change the row traffic *upward*.
    #[test]
    fn group_reduction_is_monotone(
        rows in proptest::collection::vec((-6i64..6, 0i64..3, -20i64..20), 1..60),
        n_sites in 1usize..5,
    ) {
        let detail = detail_relation(rows);
        let parts = partition_by_int_ranges(&detail, "g", n_sites);
        let cluster = Cluster::from_partitions("t", parts);
        let expr = build_expr(&["g"], &SecondOp::AboveAvg);
        let planner = Planner::new(cluster.distribution());
        let base = cluster
            .execute(&planner.optimize(&expr, OptFlags::none()))
            .expect("runs");
        let reduced = cluster
            .execute(&planner.optimize(&expr, OptFlags::group_reduction_only()))
            .expect("runs");
        let (d0, u0) = base.stats.total_rows();
        let (d1, u1) = reduced.stats.total_rows();
        prop_assert!(d1 <= d0 && u1 <= u0, "({d1},{u1}) vs ({d0},{u0})");
        prop_assert!(reduced.relation.same_bag(&base.relation));
    }
}
