//! Property-based end-to-end tests: for *random* detail relations, random
//! partitionings, and randomly shaped GMDJ chains, distributed evaluation
//! under random optimization flags equals centralized evaluation.

use proptest::prelude::*;
use skalla::core::{plan::Planner, Cluster, OptFlags};
use skalla::datagen::partition::{partition_by_int_ranges, partition_round_robin, Partition};
use skalla::gmdj::eval::EvalOptions;
use skalla::gmdj::prelude::*;
use skalla::relation::{DataType, Relation, Row, Schema};

/// A detail relation with a Double measure column, for bit-identity tests
/// of float aggregation (values chosen to have inexact f64 sums).
fn detail_relation_f64(rows: Vec<(i64, i64, i64)>) -> Relation {
    Relation::new(
        Schema::of(&[
            ("g", DataType::Int),
            ("h", DataType::Int),
            ("v", DataType::Double),
        ]),
        rows.into_iter()
            .map(|(g, h, v)| Row::new(vec![g.into(), h.into(), (v as f64 / 3.0).into()]))
            .collect(),
    )
    .expect("static schema")
}

fn detail_relation(rows: Vec<(i64, i64, i64)>) -> Relation {
    Relation::new(
        Schema::of(&[
            ("g", DataType::Int),
            ("h", DataType::Int),
            ("v", DataType::Int),
        ]),
        rows.into_iter()
            .map(|(g, h, v)| Row::new(vec![g.into(), h.into(), v.into()]))
            .collect(),
    )
    .expect("static schema")
}

#[derive(Debug, Clone)]
enum SecondOp {
    None,
    /// Correlated: count v ≥ group average.
    AboveAvg,
    /// Independent (coalescible): count v > constant.
    Filtered(i64),
    /// Non-equi: count detail tuples with v ≥ b.mx across all groups.
    NonEqui,
}

fn build_expr(group_cols: &[&str], second: &SecondOp) -> GmdjExpr {
    let mut first_aggs = vec![
        AggSpec::count("cnt"),
        AggSpec::avg("v", "avg"),
        AggSpec::max("v", "mx"),
    ];
    first_aggs.push(AggSpec::sum("v", "sm"));
    let mut b = GmdjExprBuilder::distinct_base("t", group_cols).gmdj(
        Gmdj::new("t").block(ThetaBuilder::group_by(group_cols).build(), first_aggs),
    );
    b = match second {
        SecondOp::None => b,
        SecondOp::AboveAvg => b.gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(group_cols)
                .and(Expr::dcol("v").ge(Expr::bcol("avg")))
                .build(),
            vec![AggSpec::count("above")],
        )),
        SecondOp::Filtered(k) => b.gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(group_cols)
                .and(Expr::dcol("v").gt(Expr::lit(*k)))
                .build(),
            vec![AggSpec::count("big")],
        )),
        SecondOp::NonEqui => b.gmdj(Gmdj::new("t").block(
            Expr::dcol("v").ge(Expr::bcol("mx")),
            vec![AggSpec::count("geq_max")],
        )),
    };
    b.build()
}

fn arb_second() -> impl Strategy<Value = SecondOp> {
    prop_oneof![
        Just(SecondOp::None),
        Just(SecondOp::AboveAvg),
        (-10i64..10).prop_map(SecondOp::Filtered),
        Just(SecondOp::NonEqui),
    ]
}

fn arb_flags() -> impl Strategy<Value = OptFlags> {
    (0u32..16).prop_map(|bits| OptFlags {
        coalesce: bits & 1 != 0,
        group_reduction_site: bits & 2 != 0,
        group_reduction_coord: bits & 4 != 0,
        sync_reduction: bits & 8 != 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn distributed_equals_centralized(
        rows in proptest::collection::vec((-6i64..6, 0i64..3, -20i64..20), 0..60),
        n_sites in 1usize..5,
        by_range in any::<bool>(),
        group_on_h in any::<bool>(),
        second in arb_second(),
        flags in arb_flags(),
    ) {
        let detail = detail_relation(rows);
        let parts: Vec<Partition> = if by_range {
            partition_by_int_ranges(&detail, "g", n_sites)
        } else {
            partition_round_robin(&detail, n_sites)
        };
        let cluster = Cluster::from_partitions("t", parts);
        let group_cols: Vec<&str> = if group_on_h { vec!["g", "h"] } else { vec!["g"] };
        let expr = build_expr(&group_cols, &second);

        let oracle = expr
            .eval_centralized(&cluster.global_catalog(), EvalOptions::default())
            .expect("oracle evaluates");
        let plan = Planner::new(cluster.distribution()).optimize(&expr, flags);
        let out = cluster.execute(&plan).expect("distributed evaluates");
        prop_assert!(
            out.relation.same_bag(&oracle),
            "flags {flags:?} second {second:?} groups {group_cols:?}\nplan:\n{}\ngot:\n{}\nwant:\n{}",
            plan.explain(),
            out.relation.canonicalized(),
            oracle.canonicalized()
        );
    }

    /// The morsel-parallel kernel is **bit-identical** across thread
    /// counts, probe strategies, and both evaluation paths: the morsel
    /// decomposition and merge order depend only on the input and the
    /// morsel size, never on worker scheduling. Verified on f64 SUM / AVG
    /// / VAR accumulators (where reassociation would change low bits) by
    /// comparing raw bit patterns, not `Value` equality (which treats
    /// -0.0 == 0.0).
    #[test]
    fn parallel_kernel_is_bit_identical(
        rows in proptest::collection::vec((-6i64..6, 0i64..3, -20i64..20), 0..80),
        hash_path in any::<bool>(),
        non_equi in any::<bool>(),
    ) {
        let detail = detail_relation_f64(rows);
        let base = detail.project(&["g"]).expect("project").distinct();
        let theta = if non_equi {
            // Overlapping ranges: exercises the nested-loop morsel path.
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").ge(Expr::lit(-3.0)))
                .build()
        } else {
            ThetaBuilder::group_by(&["g"]).build()
        };
        let op = Gmdj::new("t").block(
            theta,
            vec![
                AggSpec::count("cnt"),
                AggSpec::sum("v", "sm"),
                AggSpec::avg("v", "av"),
                AggSpec::var("v", "vr"),
                AggSpec::min("v", "mn"),
                AggSpec::max("v", "mx"),
            ],
        );
        // Explicit options (not Default) so the test is independent of
        // SKALLA_THREADS / SKALLA_MORSEL_ROWS / SKALLA_COLUMNAR in the
        // environment. Tiny morsels force many merge steps even on small
        // inputs.
        let opts = |parallelism: usize, legacy_probe: bool, columnar: bool| EvalOptions {
            hash_path,
            parallelism,
            morsel_rows: 7,
            legacy_probe,
            columnar,
            skew_balance: true,
            cache: true,
            fault_panic_morsel: None,
        };
        let reference = skalla::gmdj::eval_local(&base, &detail, &op, opts(1, false, false))
            .expect("serial kernel");
        for (p, legacy, columnar) in [
            (1, true, false),
            (2, false, false),
            (2, true, false),
            (7, false, false),
            (1, false, true),
            (2, false, true),
            (7, false, true),
        ] {
            let out = skalla::gmdj::eval_local(&base, &detail, &op, opts(p, legacy, columnar))
                .expect("parallel kernel");
            prop_assert_eq!(out.matched.clone(), reference.matched.clone(),
                "matched flags, parallelism {} legacy {} columnar {}", p, legacy, columnar);
            prop_assert_eq!(
                out.physical.len(), reference.physical.len(),
                "row count, parallelism {} legacy {} columnar {}", p, legacy, columnar
            );
            for (got, want) in out.physical.rows().iter().zip(reference.physical.rows()) {
                for (gv, wv) in got.values().iter().zip(want.values()) {
                    let same = match (gv, wv) {
                        (skalla::relation::Value::Double(a), skalla::relation::Value::Double(b)) =>
                            a.to_bits() == b.to_bits(),
                        _ => gv == wv,
                    };
                    prop_assert!(
                        same,
                        "bit mismatch at parallelism {} legacy {} columnar {}: {:?} vs {:?}",
                        p, legacy, columnar, gv, wv
                    );
                }
            }
        }
    }

    /// The columnar kernel is bit-identical to the row kernel on randomly
    /// shaped GMDJ *chains* — including correlated second blocks (whose
    /// residuals reference first-block aggregate outputs) and non-equi
    /// blocks (nested-loop path), end to end through finalization.
    #[test]
    fn columnar_kernel_matches_row_kernel_on_chains(
        rows in proptest::collection::vec((-6i64..6, 0i64..3, -20i64..20), 0..60),
        group_on_h in any::<bool>(),
        second in arb_second(),
    ) {
        let detail = detail_relation_f64(rows);
        let cluster = Cluster::from_partitions("t", partition_round_robin(&detail, 1));
        let group_cols: Vec<&str> = if group_on_h { vec!["g", "h"] } else { vec!["g"] };
        let expr = build_expr(&group_cols, &second);
        let opts = |columnar: bool| EvalOptions {
            hash_path: true,
            parallelism: 1,
            morsel_rows: 7,
            legacy_probe: false,
            columnar,
            skew_balance: true,
            cache: true,
            fault_panic_morsel: None,
        };
        let rowk = expr
            .eval_centralized(&cluster.global_catalog(), opts(false))
            .expect("row kernel evaluates");
        let colk = expr
            .eval_centralized(&cluster.global_catalog(), opts(true))
            .expect("columnar kernel evaluates");
        prop_assert_eq!(rowk.len(), colk.len());
        for (got, want) in colk.rows().iter().zip(rowk.rows()) {
            for (gv, wv) in got.values().iter().zip(want.values()) {
                let same = match (gv, wv) {
                    (skalla::relation::Value::Double(a), skalla::relation::Value::Double(b)) =>
                        a.to_bits() == b.to_bits(),
                    _ => gv == wv,
                };
                prop_assert!(same, "second {:?}: {:?} vs {:?}", second, gv, wv);
            }
        }
    }

    /// Group reduction flags never change the row traffic *upward*.
    #[test]
    fn group_reduction_is_monotone(
        rows in proptest::collection::vec((-6i64..6, 0i64..3, -20i64..20), 1..60),
        n_sites in 1usize..5,
    ) {
        let detail = detail_relation(rows);
        let parts = partition_by_int_ranges(&detail, "g", n_sites);
        let cluster = Cluster::from_partitions("t", parts);
        let expr = build_expr(&["g"], &SecondOp::AboveAvg);
        let planner = Planner::new(cluster.distribution());
        let base = cluster
            .execute(&planner.optimize(&expr, OptFlags::none()))
            .expect("runs");
        let reduced = cluster
            .execute(&planner.optimize(&expr, OptFlags::group_reduction_only()))
            .expect("runs");
        let (d0, u0) = base.stats.total_rows();
        let (d1, u1) = reduced.stats.total_rows();
        prop_assert!(d1 <= d0 && u1 <= u0, "({d1},{u1}) vs ({d0},{u0})");
        prop_assert!(reduced.relation.same_bag(&base.relation));
    }
}
