//! Row blocking (paper Sect. 3.2): sites ship sub-results in chunks and
//! the coordinator synchronizes them incrementally. Results must be
//! identical; message counts grow; byte totals grow only by framing.

use skalla::core::{plan::Planner, Cluster, OptFlags};
use skalla::datagen::flow::{generate_flows, FlowConfig};
use skalla::datagen::partition::partition_by_int_ranges;
use skalla::gmdj::prelude::*;

fn expr() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("flow", &["source_as"])
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as"]).build(),
            vec![AggSpec::count("flows"), AggSpec::avg("num_bytes", "avg_nb")],
        ))
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as"])
                .and(Expr::dcol("num_bytes").ge(Expr::bcol("avg_nb")))
                .build(),
            vec![AggSpec::count("big")],
        ))
        .build()
}

fn make_cluster(chunk: Option<usize>) -> Cluster {
    let flows = generate_flows(&FlowConfig {
        flows: 4000,
        routers: 4,
        source_as: 64,
        dest_as: 16,
        skew: 0.6,
        seed: 3,
    });
    let mut c = Cluster::from_partitions("flow", partition_by_int_ranges(&flows, "source_as", 4));
    c.configure(&skalla::core::EngineConfig {
        chunk_rows: chunk,
        ..skalla::core::EngineConfig::default()
    });
    c
}

#[test]
fn chunked_execution_is_equivalent() {
    let e = expr();
    for flags in [OptFlags::none(), OptFlags::all()] {
        let whole = {
            let c = make_cluster(None);
            let plan = Planner::new(c.distribution()).optimize(&e, flags);
            c.execute(&plan).unwrap()
        };
        for chunk in [1usize, 3, 7, 100, 10_000] {
            let c = make_cluster(Some(chunk));
            let plan = Planner::new(c.distribution()).optimize(&e, flags);
            let out = c.execute(&plan).unwrap();
            assert!(
                out.relation.same_bag(&whole.relation),
                "chunk {chunk} {flags:?} changed the result"
            );
        }
    }
}

#[test]
fn chunking_increases_messages_not_rows() {
    let e = expr();
    let whole = {
        let c = make_cluster(None);
        let plan = Planner::new(c.distribution()).optimize(&e, OptFlags::none());
        c.execute(&plan).unwrap()
    };
    let chunked = {
        let c = make_cluster(Some(5));
        let plan = Planner::new(c.distribution()).optimize(&e, OptFlags::none());
        c.execute(&plan).unwrap()
    };
    assert!(chunked.stats.total_messages() > whole.stats.total_messages());
    assert_eq!(chunked.stats.total_rows(), whole.stats.total_rows());
    // Only framing + repeated schema headers may grow the byte count.
    assert!(chunked.stats.total_bytes() > whole.stats.total_bytes());
    assert!(
        (chunked.stats.total_bytes() as f64) < 3.0 * whole.stats.total_bytes() as f64,
        "framing overhead exploded: {} vs {}",
        chunked.stats.total_bytes(),
        whole.stats.total_bytes()
    );
}

#[test]
fn chunk_size_zero_means_off() {
    let mut c = make_cluster(None);
    // Pin the skew balancer off: its report/loan frames would add to the
    // exact per-round message count this test asserts.
    c.configure(&skalla::core::EngineConfig {
        chunk_rows: Some(0),
        eval: EvalOptions {
            skew_balance: false,
            ..EvalOptions::default()
        },
        ..skalla::core::EngineConfig::default()
    });
    let plan = Planner::new(c.distribution()).optimize(&expr(), OptFlags::none());
    let out = c.execute(&plan).unwrap();
    // One result message per site per round.
    let (_, up_msgs): (u64, u64) = out
        .stats
        .net
        .iter()
        .map(|r| {
            let t = r.totals();
            (t.down_msgs, t.up_msgs)
        })
        .fold((0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1));
    assert_eq!(up_msgs, 3 * 4, "3 rounds × 4 sites, unchunked");
}
