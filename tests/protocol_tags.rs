//! Exhaustive protocol-tag coverage: one encode/decode round trip per v2
//! frame tag, plus registry-level uniqueness. If a new tag is added to
//! `skalla_core::protocol` without extending this test, the uniqueness
//! and coverage assertions below are the tripwire (alongside the
//! `protocol-registry` lint, which checks the docs and accounting side).

use skalla::core::distribution::DistributionInfo;
use skalla::core::plan::{OptFlags, Planner};
use skalla::core::plan_codec::{decode_plan_with_options, encode_plan_with_options};
use skalla::core::protocol::{self, SiteCatalogEntry, SiteTelemetry};
use skalla::core::skew::ExtractSpec;
use skalla::core::HotReport;
use skalla::gmdj::prelude::*;
use skalla::gmdj::EvalOptions;
use skalla::relation::{row, DataType, Domain, DomainMap, Relation, Schema, Value};

/// Every v2 frame tag, name first so failures read well.
const ALL_TAGS: &[(&str, u8)] = &[
    ("RUN_STAGE", protocol::TAG_RUN_STAGE),
    ("RESULT", protocol::TAG_RESULT),
    ("ERROR", protocol::TAG_ERROR),
    ("SHUTDOWN", protocol::TAG_SHUTDOWN),
    ("PLAN", protocol::TAG_PLAN),
    ("CATALOG_REQ", protocol::TAG_CATALOG_REQ),
    ("CATALOG", protocol::TAG_CATALOG),
    ("QUERY_DONE", protocol::TAG_QUERY_DONE),
    ("TELEMETRY", protocol::TAG_TELEMETRY),
    ("HH_REPORT", protocol::TAG_HH_REPORT),
    ("LOAN", protocol::TAG_LOAN),
    ("LOAN_TASK", protocol::TAG_LOAN_TASK),
    ("LOAN_RESULT", protocol::TAG_LOAN_RESULT),
];

fn rel() -> Relation {
    Relation::new(
        Schema::of(&[("g", DataType::Int), ("v", DataType::Double)]),
        vec![row![1i64, 1.5f64], row![2i64, -2.5f64]],
    )
    .unwrap()
}

fn segments() -> Vec<(u32, Relation)> {
    vec![(0, rel()), (2, rel())]
}

#[test]
fn tag_values_are_unique_and_dense() {
    let mut seen = std::collections::BTreeMap::new();
    for (name, tag) in ALL_TAGS {
        if let Some(prev) = seen.insert(*tag, *name) {
            panic!("tag {tag} is claimed by both {prev} and {name}");
        }
    }
    // Tags 1..=13 with no gaps; query id 0 marks the control stream, so
    // there is no tag 0.
    let tags: Vec<u8> = seen.keys().copied().collect();
    assert_eq!(tags, (1..=13).collect::<Vec<u8>>());
}

#[test]
fn every_tag_round_trips() {
    // RUN_STAGE, with and without a fragment and extract spec.
    let spec = ExtractSpec {
        detail_cols: vec!["g".into(), "v".into()],
        keys: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
    };
    let m = protocol::run_stage_with_extract(7, Some(&rel()), Some(&spec));
    assert_eq!(m.tag, protocol::TAG_RUN_STAGE);
    let (stage, frag, extract) = protocol::decode_run_stage(&m.payload).unwrap();
    assert_eq!((stage, frag.unwrap(), extract.unwrap()), (7, rel(), spec));

    // RESULT: a non-final chunk.
    let m = protocol::result_chunk(3, &rel(), false);
    assert_eq!(m.tag, protocol::TAG_RESULT);
    let (stage, last, back) = protocol::decode_result(&m.payload).unwrap();
    assert_eq!((stage, last, back), (3, false, rel()));

    // ERROR carries a free-form message.
    let m = protocol::error("boom");
    assert_eq!(m.tag, protocol::TAG_ERROR);
    assert_eq!(protocol::decode_error(&m.payload), "boom");

    // SHUTDOWN and QUERY_DONE are empty control frames.
    let m = protocol::shutdown();
    assert_eq!((m.tag, m.payload.len()), (protocol::TAG_SHUTDOWN, 0));
    let m = protocol::query_done();
    assert_eq!((m.tag, m.payload.len()), (protocol::TAG_QUERY_DONE, 0));

    // PLAN: options + chunking + the distributed plan itself.
    let mut dist = DistributionInfo::new(2);
    dist.set_table(
        "t",
        (0..2)
            .map(|i| DomainMap::new().with("g", Domain::IntRange(10 * i, 10 * i + 9)))
            .collect(),
    );
    let expr = GmdjExprBuilder::distinct_base("t", &["g"]).gmdj(Gmdj::new("t").block(
        ThetaBuilder::group_by(&["g"]).build(),
        vec![AggSpec::count("c")],
    ));
    let plan = Planner::new(dist).optimize(&expr.build(), OptFlags::all());
    let opts = EvalOptions {
        parallelism: 3,
        ..EvalOptions::default()
    };
    let bytes = encode_plan_with_options(&plan, &opts, Some(128));
    let (plan_back, opts_back, chunk) = decode_plan_with_options(&bytes).unwrap();
    assert_eq!(plan_back, plan);
    assert_eq!(opts_back.parallelism, 3);
    assert_eq!(chunk, Some(128));

    // CATALOG_REQ carries the protocol version.
    let m = protocol::catalog_request();
    assert_eq!(m.tag, protocol::TAG_CATALOG_REQ);
    assert_eq!(
        protocol::decode_catalog_request(&m.payload).unwrap(),
        protocol::PROTOCOL_VERSION
    );

    // CATALOG: one table advertisement.
    let entry = SiteCatalogEntry {
        table: "t".into(),
        schema: rel().schema().clone(),
        domains: DomainMap::new().with("g", Domain::IntRange(0, 9)),
        rows: 2,
    };
    let m = protocol::catalog(std::slice::from_ref(&entry));
    assert_eq!(m.tag, protocol::TAG_CATALOG);
    assert_eq!(protocol::decode_catalog(&m.payload).unwrap(), vec![entry]);

    // TELEMETRY: busy samples round-trip through the JSON payload.
    let t = SiteTelemetry {
        busy: vec![(1, 0, 0.25), (1, 1, 0.5)],
        obs: None,
    };
    let m = protocol::telemetry(&t);
    assert_eq!(m.tag, protocol::TAG_TELEMETRY);
    assert_eq!(protocol::decode_telemetry(&m.payload).unwrap(), t);

    // HH_REPORT: a site's heavy-hitter sketch summary.
    let report = HotReport {
        rows: 100,
        hitters: vec![(vec![Value::Int(1)], 42), (vec![Value::Int(2)], 17)],
    };
    let m = protocol::hh_report(1, &report);
    assert_eq!(m.tag, protocol::TAG_HH_REPORT);
    assert_eq!(protocol::decode_hh_report(&m.payload).unwrap(), (1, report));

    // LOAN / LOAN_TASK / LOAN_RESULT: the work-loaning triangle.
    let m = protocol::loan(2, &segments());
    assert_eq!(m.tag, protocol::TAG_LOAN);
    let (stage, segs) = protocol::decode_loan(&m.payload).unwrap();
    assert_eq!(stage, 2);
    assert_eq!(segs, segments());

    let m = protocol::loan_task(2, 1, &rel(), &segments());
    assert_eq!(m.tag, protocol::TAG_LOAN_TASK);
    let (stage, donor, base, segs) = protocol::decode_loan_task(&m.payload).unwrap();
    assert_eq!((stage, donor, base), (2, 1, rel()));
    assert_eq!(segs, segments());

    let m = protocol::loan_result(2, 1, &segments());
    assert_eq!(m.tag, protocol::TAG_LOAN_RESULT);
    let (stage, donor, segs) = protocol::decode_loan_result(&m.payload).unwrap();
    assert_eq!((stage, donor), (2, 1));
    assert_eq!(segs, segments());
}
