//! Cross-crate correctness: distributed evaluation must equal centralized
//! evaluation (the oracle) for every optimization combination, every
//! partitioning strategy, and both generated datasets — Theorems 1 and 3
//! of the paper, exercised end-to-end through the real threaded runtime.

use skalla::core::{plan::Planner, Cluster, OptFlags};
use skalla::datagen::flow::{generate_flows, FlowConfig};
use skalla::datagen::partition::{
    observe_int_ranges, partition_by_hash, partition_by_int_ranges, partition_by_value_sets,
    partition_round_robin, Partition,
};
use skalla::datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla::gmdj::eval::EvalOptions;
use skalla::gmdj::prelude::*;
use skalla::relation::Relation;

fn all_flag_combos() -> Vec<OptFlags> {
    (0..16u32)
        .map(|bits| OptFlags {
            coalesce: bits & 1 != 0,
            group_reduction_site: bits & 2 != 0,
            group_reduction_coord: bits & 4 != 0,
            sync_reduction: bits & 8 != 0,
        })
        .collect()
}

/// Run `expr` on `cluster` under every flag combination and compare each
/// result with the centralized oracle.
fn assert_all_combos_match(cluster: &Cluster, expr: &GmdjExpr, context: &str) {
    let oracle = expr
        .eval_centralized(&cluster.global_catalog(), EvalOptions::default())
        .unwrap_or_else(|e| panic!("{context}: oracle failed: {e}"));
    let planner = Planner::new(cluster.distribution());
    for flags in all_flag_combos() {
        let plan = planner.optimize(expr, flags);
        let out = cluster
            .execute(&plan)
            .unwrap_or_else(|e| panic!("{context} {flags:?}: {e}\n{}", plan.explain()));
        assert!(
            out.relation.same_bag(&oracle),
            "{context} {flags:?}: wrong result\n{}",
            plan.explain()
        );
    }
}

/// Paper Example 1 over the flow data.
fn example1_flows() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("flow", &["source_as", "dest_as"])
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as", "dest_as"]).build(),
            vec![AggSpec::count("cnt1"), AggSpec::sum("num_bytes", "sum1")],
        ))
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as", "dest_as"])
                .and_detail_ge_base_expr("num_bytes", "sum1 / cnt1")
                .build(),
            vec![AggSpec::count("cnt2")],
        ))
        .build()
}

/// A three-operator chain with every aggregate kind and a non-equi block.
fn kitchen_sink_flows() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("flow", &["source_as"])
        .gmdj(
            Gmdj::new("flow")
                .block(
                    ThetaBuilder::group_by(&["source_as"]).build(),
                    vec![
                        AggSpec::count("flows"),
                        AggSpec::sum("num_bytes", "bytes"),
                        AggSpec::min("num_packets", "min_p"),
                        AggSpec::max("num_packets", "max_p"),
                        AggSpec::avg("num_bytes", "avg_b"),
                    ],
                )
                .block(
                    ThetaBuilder::group_by(&["source_as"])
                        .and(Expr::dcol("dest_port").in_list(vec![
                            Value::Int(80),
                            Value::Int(443),
                            Value::Int(8080),
                        ]))
                        .build(),
                    vec![AggSpec::count("web_flows")],
                ),
        )
        .gmdj(Gmdj::new("flow").block(
            ThetaBuilder::group_by(&["source_as"])
                .and(Expr::dcol("num_bytes").ge(Expr::bcol("avg_b")))
                .build(),
            vec![
                AggSpec::count("big"),
                AggSpec::over_expr(
                    AggFunc::Sum,
                    Expr::dcol("num_bytes").mul(Expr::lit(8i64)),
                    "big_bits",
                ),
            ],
        ))
        .gmdj(Gmdj::new("flow").block(
            // Non-equi correlated block: flows larger than this group's max
            // packet count × 100 (overlapping ranges across groups).
            Expr::dcol("num_bytes").ge(Expr::bcol("max_p").mul(Expr::lit(100i64))),
            vec![AggSpec::count("heavier_anywhere")],
        ))
        .build()
}

fn flow_partitions(n: usize) -> Vec<(String, Vec<Partition>)> {
    let flows = generate_flows(&FlowConfig {
        flows: 1500,
        routers: n,
        source_as: 24,
        dest_as: 10,
        skew: 0.9,
        seed: 11,
    });
    vec![
        (
            "range(source_as)".to_string(),
            partition_by_int_ranges(&flows, "source_as", n),
        ),
        (
            "hash(source_as)".to_string(),
            partition_by_hash(&flows, "source_as", n),
        ),
        (
            "value_sets(dest_as)".to_string(),
            partition_by_value_sets(&flows, "dest_as", n),
        ),
        ("round_robin".to_string(), partition_round_robin(&flows, n)),
    ]
}

#[test]
fn example1_matches_oracle_everywhere() {
    for n in [1usize, 2, 4, 8] {
        for (name, parts) in flow_partitions(n) {
            let cluster = Cluster::from_partitions("flow", parts);
            assert_all_combos_match(&cluster, &example1_flows(), &format!("{n} sites {name}"));
        }
    }
}

#[test]
fn kitchen_sink_matches_oracle_everywhere() {
    for (name, parts) in flow_partitions(4) {
        let cluster = Cluster::from_partitions("flow", parts);
        assert_all_combos_match(&cluster, &kitchen_sink_flows(), &format!("4 sites {name}"));
    }
}

#[test]
fn tpcr_nation_partitioning_matches_oracle() {
    let tpcr = generate_tpcr(&TpcrConfig {
        rows: 3000,
        // 512 customers over 8 nations = 64 per nation; cust_group blocks
        // of 32 align with nation boundaries, so both cust_key and
        // cust_group are partition attributes.
        customers: 512,
        nations: 8,
        suppliers: 15,
        parts: 50,
        skew: 0.4,
        seed: 5,
    });
    let mut parts = partition_by_int_ranges(&tpcr, "nation_key", 4);
    observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
    let cluster = Cluster::from_partitions("tpcr", parts);
    // cust_key and cust_group are partition attributes under contiguous
    // nation assignment.
    assert!(cluster.distribution().is_partition_attribute("tpcr", "cust_key"));
    assert!(cluster.distribution().is_partition_attribute("tpcr", "cust_group"));

    let per_customer = GmdjExprBuilder::distinct_base("tpcr", &["cust_key"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_key"]).build(),
            vec![AggSpec::count("lines"), AggSpec::avg("extended_price", "avg_p")],
        ))
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_key"])
                .and(Expr::dcol("extended_price").ge(Expr::bcol("avg_p")))
                .build(),
            vec![AggSpec::count("pricey")],
        ))
        .build();
    assert_all_combos_match(&cluster, &per_customer, "tpcr per-customer");

    let per_group = GmdjExprBuilder::distinct_base("tpcr", &["cust_group"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_group"]).build(),
            vec![AggSpec::count("lines"), AggSpec::sum("quantity", "qty")],
        ))
        .build();
    assert_all_combos_match(&cluster, &per_group, "tpcr per-group");
}

#[test]
fn empty_and_degenerate_inputs() {
    // A site with an empty fragment.
    let flows = generate_flows(&FlowConfig::small(9));
    let schema = flows.schema().clone();
    let empty = Relation::empty(schema);
    let mut parts = partition_by_int_ranges(&flows, "source_as", 3);
    parts[1].relation = empty;
    let cluster = Cluster::from_partitions("flow", parts);
    assert_all_combos_match(&cluster, &example1_flows(), "one empty site");

    // Entirely empty warehouse.
    let empty_parts: Vec<Partition> =
        partition_by_int_ranges(&Relation::empty(flows.schema().clone()), "source_as", 2);
    let cluster = Cluster::from_partitions("flow", empty_parts);
    let plan = Planner::new(cluster.distribution()).optimize(&example1_flows(), OptFlags::all());
    let out = cluster.execute(&plan).unwrap();
    assert!(out.relation.is_empty());
}

#[test]
fn single_site_cluster_equals_centralized() {
    let flows = generate_flows(&FlowConfig::small(21));
    let parts = partition_round_robin(&flows, 1);
    let cluster = Cluster::from_partitions("flow", parts);
    assert_all_combos_match(&cluster, &kitchen_sink_flows(), "single site");
}

#[test]
fn nested_loop_and_hash_paths_agree_distributed() {
    let flows = generate_flows(&FlowConfig::small(33));
    let expr = example1_flows();
    let mk = |hash: bool| {
        let mut c = Cluster::from_partitions(
            "flow",
            partition_by_int_ranges(&flows, "source_as", 3),
        );
        c.configure(&skalla::core::EngineConfig {
            eval: EvalOptions {
                hash_path: hash,
                ..EvalOptions::default()
            },
            ..skalla::core::EngineConfig::default()
        });
        let plan = Planner::new(c.distribution()).optimize(&expr, OptFlags::all());
        c.execute(&plan).unwrap().relation
    };
    assert!(mk(true).same_bag(&mk(false)));
}
