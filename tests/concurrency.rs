//! Concurrent multi-query execution: N distinct queries submitted at
//! once through the [`Skalla`] scheduler — over both the in-process
//! channel transport and loopback TCP — must return bit-identical
//! results AND byte-for-byte identical per-query [`RoundStats`] to the
//! same queries run one at a time on a serial [`Cluster`]. Admission
//! control must reject overload with clean, descriptive errors rather
//! than deadlocks or panics.

use skalla::core::{Cluster, OptFlags, Planner, SiteServer, Skalla};
use skalla::datagen::partition::{observe_int_ranges, partition_by_int_ranges, Partition};
use skalla::datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla::gmdj::prelude::*;
use skalla::net::TcpConfig;
use skalla::relation::Relation;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const N_SITES: usize = 4;

fn fig2_partitions() -> Vec<Partition> {
    let tpcr = generate_tpcr(&TpcrConfig::new(6_000, 17));
    let mut parts = partition_by_int_ranges(&tpcr, "nation_key", N_SITES);
    observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
    parts
}

/// Four *different* queries — distinct grouping attributes, operator
/// counts, and round structures — so the multiplexer has to keep genuinely
/// different per-query state apart, not just four copies of one plan.
/// Each is paired with the column to canonicalize its result on.
fn workload() -> Vec<(GmdjExpr, &'static str)> {
    let correlated = GmdjExprBuilder::distinct_base("tpcr", &["cust_group"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_group"]).build(),
            vec![
                AggSpec::count("cnt1"),
                AggSpec::avg("extended_price", "avg1"),
            ],
        ))
        .gmdj(
            Gmdj::new("tpcr").block(
                ThetaBuilder::group_by(&["cust_group"])
                    .and(Expr::dcol("extended_price").ge(Expr::bcol("avg1")))
                    .build(),
                vec![AggSpec::count("cnt2")],
            ),
        )
        .build();
    let by_nation = GmdjExprBuilder::distinct_base("tpcr", &["nation_key"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["nation_key"]).build(),
            vec![AggSpec::count("lines"), AggSpec::avg("quantity", "avg_qty")],
        ))
        .build();
    let by_group = GmdjExprBuilder::distinct_base("tpcr", &["cust_group"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_group"]).build(),
            vec![AggSpec::sum("quantity", "qty")],
        ))
        .build();
    // supp_key is not a partition attribute, so this one takes the
    // general multi-round path.
    let by_supplier = GmdjExprBuilder::distinct_base("tpcr", &["supp_key"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["supp_key"]).build(),
            vec![
                AggSpec::count("lines"),
                AggSpec::max("extended_price", "max_price"),
            ],
        ))
        .build();
    vec![
        (correlated, "cust_group"),
        (by_nation, "nation_key"),
        (by_group, "cust_group"),
        (by_supplier, "supp_key"),
    ]
}

fn canonical(rel: &Relation, key: &str) -> Relation {
    rel.sorted_by(&[key]).unwrap()
}

/// Serial reference: each query on a fresh one-query-at-a-time cluster.
fn serial_reference(parts: &[Partition]) -> Vec<skalla::core::QueryResult> {
    let cluster = Cluster::from_partitions("tpcr", parts.to_vec());
    workload()
        .iter()
        .map(|(expr, _)| {
            let plan = Planner::new(cluster.distribution()).optimize(expr, OptFlags::all());
            cluster.execute(&plan).unwrap()
        })
        .collect()
}

/// Run the whole workload concurrently on `engine` and compare each
/// query's relation (canonicalized) and `RoundStats` against the serial
/// reference.
fn assert_concurrent_matches_serial(engine: &Skalla, parts: &[Partition]) {
    let want = serial_reference(parts);
    let queries = workload();
    let outs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|(expr, _)| {
                scope.spawn(|| {
                    let plan =
                        Planner::new(engine.distribution()).optimize(expr, OptFlags::all());
                    engine.execute(&plan).unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect()
    });
    for (i, ((_, key), (got, want))) in queries.iter().zip(outs.iter().zip(&want)).enumerate() {
        assert_eq!(
            canonical(&got.relation, key),
            canonical(&want.relation, key),
            "query {i}: concurrent result differs from serial"
        );
        assert_eq!(
            got.stats.net, want.stats.net,
            "query {i}: per-query traffic accounting differs from serial"
        );
        assert_eq!(
            got.stats.stages.len(),
            want.stats.stages.len(),
            "query {i}: round structure differs from serial"
        );
    }
}

#[test]
fn concurrent_queries_match_serial_over_channels() {
    let parts = fig2_partitions();
    let engine = Skalla::builder()
        .partitions("tpcr", parts.clone())
        .max_concurrent(workload().len())
        .build()
        .unwrap();
    assert_concurrent_matches_serial(&engine, &parts);
}

#[test]
fn concurrent_queries_match_serial_over_tcp() {
    let parts = fig2_partitions();
    let mut addrs = Vec::new();
    for part in &parts {
        let catalog = HashMap::from([("tpcr".to_string(), Arc::new(part.relation.clone()))]);
        let domains = HashMap::from([("tpcr".to_string(), part.domains.clone())]);
        let server =
            SiteServer::bind("127.0.0.1:0", catalog, domains, TcpConfig::default()).unwrap();
        addrs.push(server.local_addr().unwrap().to_string());
        std::thread::spawn(move || {
            let _ = server.serve_once();
        });
    }
    let engine = Skalla::builder()
        .remote(&addrs, TcpConfig::default())
        .max_concurrent(workload().len())
        .build()
        .unwrap();
    assert_concurrent_matches_serial(&engine, &parts);
}

/// Repeated concurrent batches over one engine: the persistent sessions
/// and query-id assignment must stay coherent across batches. The
/// semantic cache is pinned off — this test asserts every batch pays the
/// full serial traffic, which a cache hit would (correctly) zero out.
#[test]
fn repeated_concurrent_batches_reuse_the_sessions() {
    let parts = fig2_partitions();
    let engine = Skalla::builder()
        .partitions("tpcr", parts.clone())
        .max_concurrent(workload().len())
        .eval_options(skalla::gmdj::EvalOptions {
            cache: false,
            ..skalla::gmdj::EvalOptions::default()
        })
        .build()
        .unwrap();
    for _ in 0..3 {
        assert_concurrent_matches_serial(&engine, &parts);
    }
}

#[test]
fn overload_is_rejected_with_a_clean_queue_full_error() {
    let parts = fig2_partitions();
    let engine = Skalla::builder()
        .partitions("tpcr", parts)
        .max_concurrent(1)
        .queue_capacity(0)
        .build()
        .unwrap();
    let (expr, _) = workload().remove(0);
    let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());
    // Occupy the only slot, then submit: the queue has no capacity, so
    // the submission must be rejected immediately and descriptively.
    let permit = engine.scheduler().admit().unwrap();
    let err = engine.execute(&plan).unwrap_err().to_string();
    assert!(
        err.contains("admission queue full"),
        "expected a queue-full rejection, got: {err}"
    );
    drop(permit);
    // With the slot free again the same engine still works.
    engine.execute(&plan).unwrap();
}

#[test]
fn queue_timeout_surfaces_as_a_clean_error() {
    let parts = fig2_partitions();
    let engine = Skalla::builder()
        .partitions("tpcr", parts)
        .max_concurrent(1)
        .queue_capacity(4)
        .queue_timeout(Duration::from_millis(50))
        .build()
        .unwrap();
    let (expr, _) = workload().remove(0);
    let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());
    let _permit = engine.scheduler().admit().unwrap();
    let err = engine.execute(&plan).unwrap_err().to_string();
    assert!(
        err.contains("timed out in the admission queue"),
        "expected a queue-timeout error, got: {err}"
    );
}
