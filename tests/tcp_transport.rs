//! Transport equivalence: the TCP transport must be indistinguishable
//! from the in-process channel transport at the logical layer.
//!
//! The coordinator algorithm is shared between [`Cluster`] and
//! [`RemoteCluster`], and traffic is accounted in payload bytes at the
//! protocol layer (never wire framing), so a loopback multi-process run
//! of the paper's Fig. 2 workload must produce the same result relation
//! AND byte-for-byte identical [`RoundStats`] — same rounds, same
//! per-site byte/message counts — as the threaded in-process run. These
//! tests pin that invariant, plus the failure mode: a site dying
//! mid-round surfaces as a clean disconnect error, not a hang.

use skalla::core::{protocol, Cluster, OptFlags, Planner, RemoteCluster, SiteServer};
use skalla::datagen::partition::{observe_int_ranges, partition_by_int_ranges, Partition};
use skalla::datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla::gmdj::prelude::*;
use skalla::net::{SiteTransport, TcpConfig, TcpSiteListener};
use skalla::relation::Relation;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const N_SITES: usize = 4;

/// Nation-partitioned TPCR fragments with observed `cust_key` /
/// `cust_group` domains — the Fig. 2 experimental setup at test scale.
fn fig2_partitions() -> Vec<Partition> {
    let tpcr = generate_tpcr(&TpcrConfig::new(8_000, 42));
    let mut parts = partition_by_int_ranges(&tpcr, "nation_key", N_SITES);
    observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
    parts
}

/// The Fig. 2 group-reduction query: two correlated GMDJs grouped on the
/// partition-aligned attribute, COUNT + AVG each; θ₂ references `avg1`,
/// which prevents coalescing.
fn fig2_query() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("tpcr", &["cust_group"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_group"]).build(),
            vec![
                AggSpec::count("cnt1"),
                AggSpec::avg("extended_price", "avg1"),
            ],
        ))
        .gmdj(
            Gmdj::new("tpcr").block(
                ThetaBuilder::group_by(&["cust_group"])
                    .and(Expr::dcol("extended_price").ge(Expr::bcol("avg1")))
                    .build(),
                vec![AggSpec::count("cnt2"), AggSpec::avg("quantity", "avg2")],
            ),
        )
        .build()
}

/// Spawn one `SiteServer` thread per fragment; returns their addresses.
fn spawn_sites(parts: &[Partition]) -> Vec<String> {
    let mut addrs = Vec::new();
    for part in parts {
        let catalog = HashMap::from([("tpcr".to_string(), Arc::new(part.relation.clone()))]);
        let domains = HashMap::from([("tpcr".to_string(), part.domains.clone())]);
        let server =
            SiteServer::bind("127.0.0.1:0", catalog, domains, TcpConfig::default()).unwrap();
        addrs.push(server.local_addr().unwrap().to_string());
        std::thread::spawn(move || {
            let _ = server.serve_once();
        });
    }
    addrs
}

fn canonical(rel: &Relation) -> Relation {
    rel.sorted_by(&["cust_group"]).unwrap()
}

#[test]
fn loopback_tcp_matches_channel_transport_exactly() {
    let parts = fig2_partitions();
    let expr = fig2_query();

    let local = Cluster::from_partitions("tpcr", parts.clone());
    let plan = Planner::new(local.distribution()).optimize(&expr, OptFlags::all());
    let local_out = local.execute(&plan).unwrap();

    let addrs = spawn_sites(&parts);
    let remote = RemoteCluster::connect(&addrs, &TcpConfig::default()).unwrap();
    // The catalog handshake must reconstruct the coordinator's φ
    // knowledge exactly: the remote plan is the same plan.
    let remote_plan = Planner::new(remote.distribution()).optimize(&expr, OptFlags::all());
    assert_eq!(remote_plan.explain(), plan.explain());
    let remote_out = remote.execute(&remote_plan).unwrap();

    // Same answer (row order is arrival-dependent on both transports, so
    // compare in key order)…
    assert_eq!(
        canonical(&remote_out.relation),
        canonical(&local_out.relation)
    );
    // …and identical logical traffic: same rounds, same per-site payload
    // byte and message counts. RoundStats equality is exact — any wire
    // framing leaking into the accounting would fail here.
    assert_eq!(remote_out.stats.net, local_out.stats.net);
    assert_eq!(
        remote_out.stats.stages.len(),
        local_out.stats.stages.len(),
        "round structure must match"
    );
}

#[test]
fn loopback_tcp_matches_channel_transport_with_row_blocking() {
    let parts = fig2_partitions();
    let expr = fig2_query();
    let chunked = skalla::core::EngineConfig {
        chunk_rows: Some(64),
        ..skalla::core::EngineConfig::default()
    };

    let mut local = Cluster::from_partitions("tpcr", parts.clone());
    local.configure(&chunked);
    let plan = Planner::new(local.distribution()).optimize(&expr, OptFlags::all());
    let local_out = local.execute(&plan).unwrap();

    let addrs = spawn_sites(&parts);
    let mut remote = RemoteCluster::connect(&addrs, &TcpConfig::default()).unwrap();
    remote.configure(&chunked);
    let remote_out = remote.execute(&plan).unwrap();

    assert_eq!(
        canonical(&remote_out.relation),
        canonical(&local_out.relation)
    );
    // The chunk size travels inside the plan message, so chunk counts —
    // and hence message counts — agree too.
    assert_eq!(remote_out.stats.net, local_out.stats.net);
}

/// A site that completes the handshake, accepts the plan and the first
/// stage, then dies. The coordinator must abort the round with a clean
/// per-site disconnect diagnostic — not hang waiting for the dead site.
#[test]
fn site_death_mid_round_aborts_with_disconnect_error() {
    let parts = fig2_partitions();
    let expr = fig2_query();

    let mut addrs = spawn_sites(&parts[..N_SITES - 1]);

    // The rogue last site: real listener, real handshake, then silence.
    let rel = parts[N_SITES - 1].relation.clone();
    let dom = parts[N_SITES - 1].domains.clone();
    let listener = TcpSiteListener::bind("127.0.0.1:0").unwrap();
    addrs.push(listener.local_addr().unwrap().to_string());
    let rogue = std::thread::spawn(move || {
        let site = listener.accept(&TcpConfig::default()).unwrap();
        let req = site.recv().unwrap();
        assert_eq!(req.tag, protocol::TAG_CATALOG_REQ);
        site.send(protocol::catalog(&[protocol::SiteCatalogEntry {
            table: "tpcr".to_string(),
            schema: rel.schema().clone(),
            domains: dom,
            rows: rel.len() as u64,
        }]))
        .unwrap();
        let plan_msg = site.recv().unwrap();
        assert_eq!(plan_msg.tag, protocol::TAG_PLAN);
        let stage = site.recv().unwrap();
        assert_eq!(stage.tag, protocol::TAG_RUN_STAGE);
        // Drop the connection mid-round without replying.
        drop(site);
    });

    let cfg = TcpConfig {
        read_timeout: Some(Duration::from_secs(30)),
        ..TcpConfig::default()
    };
    let remote = RemoteCluster::connect(&addrs, &cfg).unwrap();
    let plan = Planner::new(remote.distribution()).optimize(&expr, OptFlags::all());
    let err = remote.execute(&plan).unwrap_err().to_string();
    assert!(
        err.contains("disconnected"),
        "expected a clean disconnect diagnostic, got: {err}"
    );
    assert!(
        err.contains(&format!("site {}", N_SITES - 1)),
        "diagnostic should name the dead site, got: {err}"
    );
    rogue.join().unwrap();
}

/// Regression: a client that connects and drops mid-handshake (or sends
/// a truncated frame) must not wedge `serve_forever` — the handshake
/// read is deadline-bounded and a failed session returns the server to
/// its accept loop, so the next genuine coordinator still gets served.
#[test]
fn mid_handshake_disconnect_does_not_wedge_serve_forever() {
    let parts = fig2_partitions();
    let part = &parts[0];
    let catalog = HashMap::from([("tpcr".to_string(), Arc::new(part.relation.clone()))]);
    let domains = HashMap::from([("tpcr".to_string(), part.domains.clone())]);
    let cfg = TcpConfig {
        read_timeout: Some(Duration::from_secs(5)),
        ..TcpConfig::default()
    };
    let server = SiteServer::bind("127.0.0.1:0", catalog, domains, cfg.clone()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = server.serve_forever();
    });

    // Rude client 1: connect, say nothing, hang up.
    drop(std::net::TcpStream::connect(&addr).unwrap());
    // Rude client 2: connect, send a truncated frame header, hang up.
    {
        use std::io::Write as _;
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(&[protocol::TAG_CATALOG_REQ, 0x01]).unwrap();
        drop(s);
    }

    // A genuine coordinator session must still be served to completion.
    let remote = RemoteCluster::connect(std::slice::from_ref(&addr), &cfg).unwrap();
    let expr = fig2_query();
    let plan = Planner::new(remote.distribution()).optimize(&expr, OptFlags::all());
    let out = remote.execute(&plan).unwrap();

    let local = Cluster::from_partitions("tpcr", vec![part.clone()]);
    let local_plan = Planner::new(local.distribution()).optimize(&expr, OptFlags::all());
    let want = local.execute(&local_plan).unwrap();
    assert_eq!(canonical(&out.relation), canonical(&want.relation));
}

/// `DomainMap` must survive the catalog round-trip exactly — losing the
/// observed `cust_key`/`cust_group` ranges would silently disable group
/// reduction on the remote path.
#[test]
fn handshake_preserves_distribution_knowledge() {
    let parts = fig2_partitions();
    let local = Cluster::from_partitions("tpcr", parts.clone());
    let addrs = spawn_sites(&parts);
    let remote = RemoteCluster::connect(&addrs, &TcpConfig::default()).unwrap();
    for col in ["nation_key", "cust_key", "cust_group"] {
        assert_eq!(
            remote.distribution().is_partition_attribute("tpcr", col),
            local.distribution().is_partition_attribute("tpcr", col),
            "partition-attribute status of {col} must survive the handshake"
        );
    }
}
