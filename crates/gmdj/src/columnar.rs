//! The vectorized (columnar) GMDJ kernel.
//!
//! The row kernel in [`crate::eval`] walks `Row`s and folds every matching
//! detail tuple into `Vec<Value>` accumulators through [`AggSpec::update`]
//! — one enum dispatch plus one possible clone per (tuple, aggregate).
//! This module rebuilds that hot path on the relation's columnar layout
//! ([`Columns`]): per morsel it first runs the **probe/θ pass**, producing
//! a selection of matching `(detail row, base position)` pairs, and then
//! runs one **typed inner loop per aggregate** over `&[i64]` / `&[f64]`
//! column slices into typed accumulator arrays (`Vec<i64>`, `Vec<f64>`,
//! `Vec<bool>` has-flags) — no `Value` is materialized per row.
//!
//! **Canonical-key probing.** Equi-key blocks probe a hash index built on
//! *canonical keys*: each key value collapses to a `(tag, word)` pair such
//! that two values are [`Value`]-equal iff their pairs are equal
//! ([`canon_i64`] / [`canon_f64`]; `NULL` is [`CANON_NULL`]). String keys
//! use the column's dictionary codes directly as words — base-side strings
//! are interned through the same per-key-column table — so probing never
//! hashes or compares a string, an `Int`, or any other [`Value`] enum
//! row-by-row.
//!
//! **Bit identity.** The kernel runs under the same shared morsel driver
//! (`eval::drive`) as the row kernel: same morsel decomposition,
//! fresh accumulators per morsel, merge in morsel order. Within a morsel
//! the selection is built in exactly the row kernel's iteration order
//! (detail-row-outer for keyed blocks, base-position-outer for nested
//! loops), so each accumulator slot sees the identical sequence of
//! floating-point operations and the output bits match the row kernel's
//! for every thread count. Aggregates the typed loops cannot express
//! (computed input expressions, mixed-type columns, string MIN/MAX) fall
//! back to [`AggSpec::update`] per selected pair — same semantics, still
//! columnar input access.

use crate::agg::{AccLayout, AggFunc, AggSpec};
use crate::eval::{drive, EvalOptions, MorselKernel, MorselState, PreparedBlock};
use crate::operator::Gmdj;
use skalla_obs::Obs;
use skalla_relation::columns::{canon_f64, canon_i64, CANON_NULL, CANON_STR_TAG};
use skalla_relation::{Bitmap, BoundExpr, Column, Columns, Relation, Result, Side, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-key-column string interner: maps each distinct string to one `u32`
/// code, shared between the detail and base sides of one equi-key pair so
/// equal strings always canonicalize to equal words.
#[derive(Debug)]
pub(crate) struct StrCodes {
    map: HashMap<Arc<str>, u32>,
}

impl StrCodes {
    pub(crate) fn new() -> StrCodes {
        StrCodes {
            map: HashMap::new(),
        }
    }

    /// Seeded with a column dictionary: code `i` ↦ `dict[i]`.
    fn from_dict(dict: &[Arc<str>]) -> StrCodes {
        let mut map = HashMap::with_capacity(dict.len());
        for (i, s) in dict.iter().enumerate() {
            map.insert(Arc::clone(s), i as u32);
        }
        StrCodes { map }
    }

    fn code(&mut self, s: &Arc<str>) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(Arc::clone(s)).or_insert(next)
    }
}

/// The canonical `(tag, word)` of one value, interning strings.
pub(crate) fn canon_value(v: &Value, codes: &mut StrCodes) -> (u8, u64) {
    match v {
        Value::Null => CANON_NULL,
        Value::Int(i) => canon_i64(*i),
        Value::Double(d) => canon_f64(*d),
        Value::Str(s) => (CANON_STR_TAG, codes.code(s) as u64),
    }
}

/// Canonicalize one detail column for key probing. Dictionary-encoded
/// string columns turn their codes into words directly (one pass over
/// `u32`s, no hashing); other layouts canonicalize element-wise.
fn canon_detail_column(col: &Column, len: usize) -> (Vec<u8>, Vec<u64>, StrCodes) {
    let mut tags = vec![0u8; len];
    let mut words = vec![0u64; len];
    let mut codes = StrCodes::new();
    match col {
        Column::Int { data, valid } => {
            for i in 0..len {
                if valid.as_ref().is_none_or(|b| b.get(i)) {
                    let (t, w) = canon_i64(data[i]);
                    tags[i] = t;
                    words[i] = w;
                }
            }
        }
        Column::Double { data, valid } => {
            for i in 0..len {
                if valid.as_ref().is_none_or(|b| b.get(i)) {
                    let (t, w) = canon_f64(data[i]);
                    tags[i] = t;
                    words[i] = w;
                }
            }
        }
        Column::Str {
            codes: col_codes,
            dict,
            valid,
        } => {
            codes = StrCodes::from_dict(dict);
            for i in 0..len {
                if valid.as_ref().is_none_or(|b| b.get(i)) {
                    tags[i] = CANON_STR_TAG;
                    words[i] = col_codes[i] as u64;
                }
            }
        }
        Column::Mixed(vs) => {
            for i in 0..len {
                let (t, w) = canon_value(&vs[i], &mut codes);
                tags[i] = t;
                words[i] = w;
            }
        }
    }
    (tags, words, codes)
}

/// Mix one canonical component into a running hash (a 64-bit multiply-
/// xorshift; the index only needs consistency between its build and probe
/// sides, not SipHash strength).
#[inline]
fn mix64(mut h: u64, v: u64) -> u64 {
    h ^= v;
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 29)
}

#[inline]
fn canon_hash(tags: &[Vec<u8>], words: &[Vec<u64>], i: usize) -> u64 {
    let mut h = 0x51CA_11A0_C0FF_EE00u64;
    for (t, w) in tags.iter().zip(words) {
        h = mix64(h, t[i] as u64);
        h = mix64(h, w[i]);
    }
    h
}

/// One equi-key pair's canonical columns plus the hash index over base
/// positions (bucket heads + per-row chain, exactly the shape of the row
/// kernel's `KeyIndex`). Blocks sharing `(base_keys, detail_keys)` share
/// one entry.
struct CanonPair {
    /// Per key column: canonical tags/words for every detail row.
    dtags: Vec<Vec<u8>>,
    dwords: Vec<Vec<u64>>,
    /// Same for base rows.
    btags: Vec<Vec<u8>>,
    bwords: Vec<Vec<u64>>,
    /// Bucket → first chained base position + 1 (0 = empty).
    heads: Vec<u32>,
    /// Base position → next position + 1 in the same bucket.
    next: Vec<u32>,
    /// Precomputed canonical hash per base position.
    hashes: Vec<u64>,
}

impl CanonPair {
    fn build(base: &Relation, detail: &Columns, base_keys: &[usize], detail_keys: &[usize]) -> CanonPair {
        let dlen = detail.len();
        let mut dtags = Vec::with_capacity(detail_keys.len());
        let mut dwords = Vec::with_capacity(detail_keys.len());
        let mut btags = Vec::with_capacity(base_keys.len());
        let mut bwords = Vec::with_capacity(base_keys.len());
        for (&bk, &dk) in base_keys.iter().zip(detail_keys) {
            let (dt, dw, mut codes) = canon_detail_column(detail.col(dk), dlen);
            let mut bt = vec![0u8; base.len()];
            let mut bw = vec![0u64; base.len()];
            for (pos, row) in base.iter().enumerate() {
                let (t, w) = canon_value(row.get(bk), &mut codes);
                bt[pos] = t;
                bw[pos] = w;
            }
            dtags.push(dt);
            dwords.push(dw);
            btags.push(bt);
            bwords.push(bw);
        }
        let n = base.len();
        assert!(n < u32::MAX as usize, "base relation too large to index");
        let cap = (n.max(1) * 2).next_power_of_two();
        let mut heads = vec![0u32; cap];
        let mut next = vec![0u32; n];
        let mut hashes = vec![0u64; n];
        for pos in 0..n {
            let h = canon_hash(&btags, &bwords, pos);
            hashes[pos] = h;
            let b = (h as usize) & (cap - 1);
            next[pos] = heads[b];
            heads[b] = pos as u32 + 1;
        }
        CanonPair {
            dtags,
            dwords,
            btags,
            bwords,
            heads,
            next,
            hashes,
        }
    }

    /// Exact canonical key equality between base position `pos` and detail
    /// row `i` (called after a hash match).
    #[inline]
    fn keys_equal(&self, pos: usize, i: usize) -> bool {
        self.btags
            .iter()
            .zip(&self.bwords)
            .zip(self.dtags.iter().zip(&self.dwords))
            .all(|((bt, bw), (dt, dw))| bt[pos] == dt[i] && bw[pos] == dw[i])
    }
}

/// How one aggregate is computed over the selection: a typed inner loop
/// over a column slice, or the row-semantics fallback.
enum ColAgg<'a> {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(col)` — counts valid (non-`NULL`) rows of any column layout.
    CountCol(usize),
    /// `SUM(col)` over an `Int` column (wrapping, like `eval_arith`).
    SumInt(usize),
    /// `SUM(col)` over a `Double` column.
    SumF64(usize),
    /// `MIN`/`MAX` over an `Int` column (`max` = true for MAX).
    MinMaxInt { col: usize, max: bool },
    /// `MIN`/`MAX` over a `Double` column (total order, NaN greatest).
    MinMaxF64 { col: usize, max: bool },
    /// `AVG(col)` over an `Int` column: wrapping Int sum + count.
    AvgInt(usize),
    /// `AVG(col)` over a `Double` column: f64 sum + count.
    AvgF64(usize),
    /// `VAR`/`STDDEV` over an `Int` column (`x as f64`, like `as_f64`).
    VarInt(usize),
    /// `VAR`/`STDDEV` over a `Double` column.
    VarF64(usize),
    /// Everything else (computed expressions, `Mixed` columns, string
    /// MIN/MAX): per-pair [`AggSpec::update`] with the input fetched
    /// through [`BoundExpr::eval_cols`].
    Fallback {
        spec: &'a AggSpec,
        input: Option<&'a BoundExpr>,
    },
}

fn classify<'a>(spec: &'a AggSpec, input: Option<&'a BoundExpr>, detail: &Columns) -> ColAgg<'a> {
    let fallback = ColAgg::Fallback { spec, input };
    let col = match input {
        None => {
            return if spec.func == AggFunc::Count {
                ColAgg::CountStar
            } else {
                fallback
            }
        }
        Some(BoundExpr::Col(Side::Detail, c)) => *c,
        Some(_) => return fallback,
    };
    if spec.func == AggFunc::Count {
        return ColAgg::CountCol(col);
    }
    match detail.col(col) {
        Column::Int { .. } => match spec.func {
            AggFunc::Sum => ColAgg::SumInt(col),
            AggFunc::Min => ColAgg::MinMaxInt { col, max: false },
            AggFunc::Max => ColAgg::MinMaxInt { col, max: true },
            AggFunc::Avg => ColAgg::AvgInt(col),
            AggFunc::Var | AggFunc::StdDev => ColAgg::VarInt(col),
            AggFunc::Count => unreachable!("handled above"),
        },
        Column::Double { .. } => match spec.func {
            AggFunc::Sum => ColAgg::SumF64(col),
            AggFunc::Min => ColAgg::MinMaxF64 { col, max: false },
            AggFunc::Max => ColAgg::MinMaxF64 { col, max: true },
            AggFunc::Avg => ColAgg::AvgF64(col),
            AggFunc::Var | AggFunc::StdDev => ColAgg::VarF64(col),
            AggFunc::Count => unreachable!("handled above"),
        },
        // String MIN/MAX and mixed-type columns keep row semantics.
        Column::Str { .. } | Column::Mixed(_) => fallback,
    }
}

/// Typed accumulator arrays, one slot per base position. `has` flags
/// mirror the row kernel's `Null` accumulator states: a slot's stored
/// number is meaningful only where `has` is set, and the first value
/// *assigns* rather than adds (so `-0.0` and NaN payloads survive exactly
/// as they do through `add_into`).
enum AggState {
    /// `COUNT` slots.
    Count(Vec<i64>),
    /// Int SUM (also the sum half of Int AVG).
    SumI { s: Vec<i64>, has: Vec<bool> },
    /// Double SUM.
    SumF { s: Vec<f64>, has: Vec<bool> },
    /// Int MIN/MAX.
    MinMaxI { m: Vec<i64>, has: Vec<bool> },
    /// Double MIN/MAX (total order, NaN greatest).
    MinMaxF { m: Vec<f64>, has: Vec<bool> },
    /// Int AVG: wrapping sum + count (count > 0 ⇔ sum present).
    AvgI { s: Vec<i64>, cnt: Vec<i64> },
    /// Double AVG.
    AvgF { s: Vec<f64>, cnt: Vec<i64> },
    /// VAR/STDDEV: sum, sum of squares, count — all start at zero and
    /// accumulate unconditionally, like `add_f64`.
    Var {
        s: Vec<f64>,
        sq: Vec<f64>,
        cnt: Vec<i64>,
    },
    /// Row-semantics accumulators for the fallback path.
    Fallback(Vec<Vec<Value>>),
}

impl AggState {
    fn init(agg: &ColAgg<'_>, n: usize) -> AggState {
        match agg {
            ColAgg::CountStar | ColAgg::CountCol(_) => AggState::Count(vec![0; n]),
            ColAgg::SumInt(_) => AggState::SumI {
                s: vec![0; n],
                has: vec![false; n],
            },
            ColAgg::SumF64(_) => AggState::SumF {
                s: vec![0.0; n],
                has: vec![false; n],
            },
            ColAgg::MinMaxInt { .. } => AggState::MinMaxI {
                m: vec![0; n],
                has: vec![false; n],
            },
            ColAgg::MinMaxF64 { .. } => AggState::MinMaxF {
                m: vec![0.0; n],
                has: vec![false; n],
            },
            ColAgg::AvgInt(_) => AggState::AvgI {
                s: vec![0; n],
                cnt: vec![0; n],
            },
            ColAgg::AvgF64(_) => AggState::AvgF {
                s: vec![0.0; n],
                cnt: vec![0; n],
            },
            ColAgg::VarInt(_) | ColAgg::VarF64(_) => AggState::Var {
                s: vec![0.0; n],
                sq: vec![0.0; n],
                cnt: vec![0; n],
            },
            ColAgg::Fallback { spec, .. } => AggState::Fallback(
                (0..n)
                    .map(|_| {
                        let mut acc = Vec::with_capacity(spec.acc_width());
                        spec.init_acc(&mut acc);
                        acc
                    })
                    .collect(),
            ),
        }
    }

    fn reset(&mut self, spec: &AggSpec) {
        match self {
            AggState::Count(c) => c.fill(0),
            AggState::SumI { has, .. }
            | AggState::SumF { has, .. }
            | AggState::MinMaxI { has, .. }
            | AggState::MinMaxF { has, .. } => has.fill(false),
            AggState::AvgI { cnt, .. } | AggState::AvgF { cnt, .. } => cnt.fill(0),
            AggState::Var { s, sq, cnt } => {
                s.fill(0.0);
                sq.fill(0.0);
                cnt.fill(0);
            }
            AggState::Fallback(accs) => {
                for acc in accs {
                    acc.clear();
                    spec.init_acc(acc);
                }
            }
        }
    }

    /// Merge a later morsel's state into this one — the typed mirror of
    /// [`AggSpec::merge`], slot by slot.
    fn merge(&mut self, src: &AggState, spec: &AggSpec) -> Result<()> {
        match (self, src) {
            (AggState::Count(d), AggState::Count(s)) => {
                for (d, s) in d.iter_mut().zip(s) {
                    *d += *s;
                }
            }
            (
                AggState::SumI { s: ds, has: dh },
                AggState::SumI { s: ss, has: sh },
            ) => {
                for p in 0..ds.len() {
                    if sh[p] {
                        ds[p] = if dh[p] { ds[p].wrapping_add(ss[p]) } else { ss[p] };
                        dh[p] = true;
                    }
                }
            }
            (
                AggState::SumF { s: ds, has: dh },
                AggState::SumF { s: ss, has: sh },
            ) => {
                for p in 0..ds.len() {
                    if sh[p] {
                        ds[p] = if dh[p] { ds[p] + ss[p] } else { ss[p] };
                        dh[p] = true;
                    }
                }
            }
            (
                AggState::MinMaxI { m: dm, has: dh },
                AggState::MinMaxI { m: sm, has: sh },
            ) => {
                // `max` is recoverable from the spec; both directions share
                // the "replace if strictly better or absent" shape.
                let max = spec.func == AggFunc::Max;
                for p in 0..dm.len() {
                    if sh[p] && (!dh[p] || better_i(sm[p], dm[p], max)) {
                        dm[p] = sm[p];
                        dh[p] = true;
                    }
                }
            }
            (
                AggState::MinMaxF { m: dm, has: dh },
                AggState::MinMaxF { m: sm, has: sh },
            ) => {
                let max = spec.func == AggFunc::Max;
                for p in 0..dm.len() {
                    if sh[p] && (!dh[p] || better_f(sm[p], dm[p], max)) {
                        dm[p] = sm[p];
                        dh[p] = true;
                    }
                }
            }
            (
                AggState::AvgI { s: ds, cnt: dc },
                AggState::AvgI { s: ss, cnt: sc },
            ) => {
                for p in 0..ds.len() {
                    if sc[p] > 0 {
                        ds[p] = if dc[p] > 0 { ds[p].wrapping_add(ss[p]) } else { ss[p] };
                    }
                    dc[p] += sc[p];
                }
            }
            (
                AggState::AvgF { s: ds, cnt: dc },
                AggState::AvgF { s: ss, cnt: sc },
            ) => {
                for p in 0..ds.len() {
                    if sc[p] > 0 {
                        ds[p] = if dc[p] > 0 { ds[p] + ss[p] } else { ss[p] };
                    }
                    dc[p] += sc[p];
                }
            }
            (
                AggState::Var { s: ds, sq: dq, cnt: dc },
                AggState::Var { s: ss, sq: sq2, cnt: sc },
            ) => {
                for p in 0..ds.len() {
                    ds[p] += ss[p];
                    dq[p] += sq2[p];
                    dc[p] += sc[p];
                }
            }
            (AggState::Fallback(d), AggState::Fallback(s)) => {
                for (d, s) in d.iter_mut().zip(s) {
                    spec.merge(d, s)?;
                }
            }
            _ => unreachable!("morsel states share one classification"),
        }
        Ok(())
    }

    /// Append this aggregate's physical slot values for base position
    /// `pos` — exactly what the row kernel's `Vec<Value>` accumulator
    /// holds after the same updates.
    fn push_values(&self, pos: usize, out: &mut Vec<Value>) {
        match self {
            AggState::Count(c) => out.push(Value::Int(c[pos])),
            AggState::SumI { s, has } => out.push(if has[pos] {
                Value::Int(s[pos])
            } else {
                Value::Null
            }),
            AggState::SumF { s, has } => out.push(if has[pos] {
                Value::Double(s[pos])
            } else {
                Value::Null
            }),
            AggState::MinMaxI { m, has } => out.push(if has[pos] {
                Value::Int(m[pos])
            } else {
                Value::Null
            }),
            AggState::MinMaxF { m, has } => out.push(if has[pos] {
                Value::Double(m[pos])
            } else {
                Value::Null
            }),
            AggState::AvgI { s, cnt } => {
                out.push(if cnt[pos] > 0 {
                    Value::Int(s[pos])
                } else {
                    Value::Null
                });
                out.push(Value::Int(cnt[pos]));
            }
            AggState::AvgF { s, cnt } => {
                out.push(if cnt[pos] > 0 {
                    Value::Double(s[pos])
                } else {
                    Value::Null
                });
                out.push(Value::Int(cnt[pos]));
            }
            AggState::Var { s, sq, cnt } => {
                out.push(Value::Double(s[pos]));
                out.push(Value::Double(sq[pos]));
                out.push(Value::Int(cnt[pos]));
            }
            AggState::Fallback(accs) => out.extend(accs[pos].iter().cloned()),
        }
    }
}

/// Strictly better under the Int MIN/MAX order.
#[inline]
fn better_i(candidate: i64, current: i64, max: bool) -> bool {
    if max {
        candidate > current
    } else {
        candidate < current
    }
}

/// Strictly better under the Double total order (NaN greatest) — the same
/// order [`Value`]'s `Ord` gives `MIN`/`MAX` in the row kernel.
#[inline]
fn better_f(candidate: f64, current: f64, max: bool) -> bool {
    use std::cmp::Ordering;
    let ord = match (candidate.is_nan(), current.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => candidate.partial_cmp(&current).expect("non-NaN"),
    };
    ord == if max { Ordering::Greater } else { Ordering::Less }
}

/// One block, lowered for columnar evaluation.
struct ColBlock<'a> {
    /// Index into the shared [`CanonPair`] cache (`None` ⇒ nested loop).
    pair: Option<usize>,
    /// Residual θ (`None` when trivially true).
    residual: Option<&'a BoundExpr>,
    /// This block's aggregates with their global indexes into
    /// `ColState::aggs`.
    aggs: Vec<(usize, ColAgg<'a>)>,
}

/// Per-morsel accumulation state: one typed array per aggregate plus the
/// match flags, and the reusable selection buffers of the probe pass.
struct ColState {
    aggs: Vec<AggState>,
    matched: Vec<bool>,
    /// Selected detail rows / base positions of the current block (scratch
    /// of `run_morsel_into`; excluded from merges).
    sel_rows: Vec<u32>,
    sel_poss: Vec<u32>,
}

/// The immutable columnar evaluation context shared across the pool.
struct ColKernel<'a> {
    base: &'a Relation,
    detail: &'a Columns,
    layout: &'a AccLayout,
    blocks: Vec<ColBlock<'a>>,
    pairs: Vec<CanonPair>,
    opts: EvalOptions,
    morsel_rows: usize,
    n_morsels: usize,
}

impl ColKernel<'_> {
    /// The spec of global aggregate `gi` (layout entries share the global
    /// aggregate order).
    fn spec(&self, gi: usize) -> &AggSpec {
        &self.layout.entries()[gi].1
    }
}

impl MorselKernel for ColKernel<'_> {
    type State = ColState;

    fn n_morsels(&self) -> usize {
        self.n_morsels
    }

    fn morsel_rows_in(&self, m: usize) -> usize {
        ((m + 1) * self.morsel_rows).min(self.detail.len()) - m * self.morsel_rows
    }

    fn init_state(&self) -> ColState {
        let n = self.base.len();
        let aggs = self
            .blocks
            .iter()
            .flat_map(|b| b.aggs.iter().map(|(_, a)| AggState::init(a, n)))
            .collect();
        ColState {
            aggs,
            matched: vec![false; n],
            sel_rows: Vec::new(),
            sel_poss: Vec::new(),
        }
    }

    fn reset_state(&self, state: &mut ColState) {
        for (gi, st) in state.aggs.iter_mut().enumerate() {
            st.reset(self.spec(gi));
        }
        state.matched.fill(false);
    }

    fn merge_state(&self, dst: &mut ColState, src: &ColState) -> Result<()> {
        for (gi, (d, s)) in dst.aggs.iter_mut().zip(&src.aggs).enumerate() {
            d.merge(s, self.spec(gi))?;
        }
        for (d, s) in dst.matched.iter_mut().zip(&src.matched) {
            *d |= *s;
        }
        Ok(())
    }

    fn run_morsel_into(&self, m: usize, state: &mut ColState) -> Result<()> {
        if self.opts.fault_panic_morsel == Some(m) {
            panic!("injected fault in morsel {m}");
        }
        let lo = m * self.morsel_rows;
        let hi = ((m + 1) * self.morsel_rows).min(self.detail.len());
        for cb in &self.blocks {
            // Probe/θ pass: fill the selection in the row kernel's
            // iteration order (see module docs — this is what makes the
            // two kernels bit-identical).
            state.sel_rows.clear();
            state.sel_poss.clear();
            match cb.pair {
                Some(pi) => {
                    let cp = &self.pairs[pi];
                    let mask = cp.heads.len() - 1;
                    for i in lo..hi {
                        let h = canon_hash(&cp.dtags, &cp.dwords, i);
                        let mut cur = cp.heads[(h as usize) & mask];
                        while cur != 0 {
                            let pos = (cur - 1) as usize;
                            cur = cp.next[pos];
                            if cp.hashes[pos] != h || !cp.keys_equal(pos, i) {
                                continue;
                            }
                            if let Some(res) = cb.residual {
                                let b = &self.base.rows()[pos];
                                if !res.eval_cols(b, self.detail, i)?.is_truthy() {
                                    continue;
                                }
                            }
                            state.matched[pos] = true;
                            state.sel_rows.push(i as u32);
                            state.sel_poss.push(pos as u32);
                        }
                    }
                }
                None => {
                    for (pos, b) in self.base.iter().enumerate() {
                        for i in lo..hi {
                            if let Some(res) = cb.residual {
                                if !res.eval_cols(b, self.detail, i)?.is_truthy() {
                                    continue;
                                }
                            }
                            state.matched[pos] = true;
                            state.sel_rows.push(i as u32);
                            state.sel_poss.push(pos as u32);
                        }
                    }
                }
            }
            // Aggregate pass: one typed loop per aggregate over the
            // selection. Split borrows: `aggs` mutably, selection shared.
            let aggs = &mut state.aggs;
            let (rows, poss) = (&state.sel_rows, &state.sel_poss);
            for (gi, agg) in &cb.aggs {
                update_agg(agg, &mut aggs[*gi], rows, poss, self.detail, self.base)?;
            }
        }
        Ok(())
    }
}

/// Run one aggregate's inner loop over the selected `(row, pos)` pairs.
fn update_agg(
    agg: &ColAgg<'_>,
    state: &mut AggState,
    rows: &[u32],
    poss: &[u32],
    detail: &Columns,
    base: &Relation,
) -> Result<()> {
    match (agg, state) {
        (ColAgg::CountStar, AggState::Count(c)) => {
            for &p in poss {
                c[p as usize] += 1;
            }
        }
        (ColAgg::CountCol(col), AggState::Count(c)) => {
            let column = detail.col(*col);
            match column {
                Column::Int { valid, .. }
                | Column::Double { valid, .. }
                | Column::Str { valid, .. } => match valid {
                    None => {
                        for &p in poss {
                            c[p as usize] += 1;
                        }
                    }
                    Some(vb) => {
                        for (&i, &p) in rows.iter().zip(poss) {
                            c[p as usize] += vb.get(i as usize) as i64;
                        }
                    }
                },
                Column::Mixed(vs) => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        c[p as usize] += !vs[i as usize].is_null() as i64;
                    }
                }
            }
        }
        (ColAgg::SumInt(col), AggState::SumI { s, has }) => {
            let (data, valid) = detail.col(*col).as_int().expect("classified Int");
            sum_loop(rows, poss, data, valid, |acc, v, h| {
                *acc = if h { acc.wrapping_add(v) } else { v };
            }, s, has);
        }
        (ColAgg::SumF64(col), AggState::SumF { s, has }) => {
            let (data, valid) = detail.col(*col).as_double().expect("classified Double");
            sum_loop(rows, poss, data, valid, |acc, v, h| {
                *acc = if h { *acc + v } else { v };
            }, s, has);
        }
        (ColAgg::MinMaxInt { col, max }, AggState::MinMaxI { m, has }) => {
            let (data, valid) = detail.col(*col).as_int().expect("classified Int");
            let max = *max;
            sum_loop(rows, poss, data, valid, move |acc, v, h| {
                if !h || better_i(v, *acc, max) {
                    *acc = v;
                }
            }, m, has);
        }
        (ColAgg::MinMaxF64 { col, max }, AggState::MinMaxF { m, has }) => {
            let (data, valid) = detail.col(*col).as_double().expect("classified Double");
            let max = *max;
            sum_loop(rows, poss, data, valid, move |acc, v, h| {
                if !h || better_f(v, *acc, max) {
                    *acc = v;
                }
            }, m, has);
        }
        (ColAgg::AvgInt(col), AggState::AvgI { s, cnt }) => {
            let (data, valid) = detail.col(*col).as_int().expect("classified Int");
            match valid {
                None => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        let (i, p) = (i as usize, p as usize);
                        let v = data[i];
                        s[p] = if cnt[p] > 0 { s[p].wrapping_add(v) } else { v };
                        cnt[p] += 1;
                    }
                }
                Some(vb) => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        let (i, p) = (i as usize, p as usize);
                        if vb.get(i) {
                            let v = data[i];
                            s[p] = if cnt[p] > 0 { s[p].wrapping_add(v) } else { v };
                            cnt[p] += 1;
                        }
                    }
                }
            }
        }
        (ColAgg::AvgF64(col), AggState::AvgF { s, cnt }) => {
            let (data, valid) = detail.col(*col).as_double().expect("classified Double");
            match valid {
                None => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        let (i, p) = (i as usize, p as usize);
                        let v = data[i];
                        s[p] = if cnt[p] > 0 { s[p] + v } else { v };
                        cnt[p] += 1;
                    }
                }
                Some(vb) => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        let (i, p) = (i as usize, p as usize);
                        if vb.get(i) {
                            let v = data[i];
                            s[p] = if cnt[p] > 0 { s[p] + v } else { v };
                            cnt[p] += 1;
                        }
                    }
                }
            }
        }
        (ColAgg::VarInt(col), AggState::Var { s, sq, cnt }) => {
            let (data, valid) = detail.col(*col).as_int().expect("classified Int");
            match valid {
                None => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        let (i, p) = (i as usize, p as usize);
                        let x = data[i] as f64;
                        s[p] += x;
                        sq[p] += x * x;
                        cnt[p] += 1;
                    }
                }
                Some(vb) => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        let (i, p) = (i as usize, p as usize);
                        if vb.get(i) {
                            let x = data[i] as f64;
                            s[p] += x;
                            sq[p] += x * x;
                            cnt[p] += 1;
                        }
                    }
                }
            }
        }
        (ColAgg::VarF64(col), AggState::Var { s, sq, cnt }) => {
            let (data, valid) = detail.col(*col).as_double().expect("classified Double");
            match valid {
                None => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        let (i, p) = (i as usize, p as usize);
                        let x = data[i];
                        s[p] += x;
                        sq[p] += x * x;
                        cnt[p] += 1;
                    }
                }
                Some(vb) => {
                    for (&i, &p) in rows.iter().zip(poss) {
                        let (i, p) = (i as usize, p as usize);
                        if vb.get(i) {
                            let x = data[i];
                            s[p] += x;
                            sq[p] += x * x;
                            cnt[p] += 1;
                        }
                    }
                }
            }
        }
        (ColAgg::Fallback { spec, input }, AggState::Fallback(accs)) => {
            for (&i, &p) in rows.iter().zip(poss) {
                let (i, p) = (i as usize, p as usize);
                match input {
                    Some(e) => {
                        let v = e.eval_cols(&base.rows()[p], detail, i)?;
                        spec.update(&mut accs[p], Some(&v))?;
                    }
                    None => spec.update(&mut accs[p], None)?,
                }
            }
        }
        _ => unreachable!("state shape follows classification"),
    }
    Ok(())
}

/// The shared shape of the null-skipping typed loops: apply `fold` to the
/// slot of every selected pair whose detail value is valid, then mark the
/// slot present.
#[inline]
fn sum_loop<T: Copy>(
    rows: &[u32],
    poss: &[u32],
    data: &[T],
    valid: Option<&Bitmap>,
    fold: impl Fn(&mut T, T, bool),
    acc: &mut [T],
    has: &mut [bool],
) {
    match valid {
        None => {
            for (&i, &p) in rows.iter().zip(poss) {
                let (i, p) = (i as usize, p as usize);
                fold(&mut acc[p], data[i], has[p]);
                has[p] = true;
            }
        }
        Some(vb) => {
            for (&i, &p) in rows.iter().zip(poss) {
                let (i, p) = (i as usize, p as usize);
                if vb.get(i) {
                    fold(&mut acc[p], data[i], has[p]);
                    has[p] = true;
                }
            }
        }
    }
}

/// Evaluate a GMDJ through the columnar kernel, returning the merged
/// morsel state in the row kernel's representation (the caller's
/// physical-row assembly is shared between kernels).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_columnar(
    base: &Relation,
    detail: &Relation,
    gmdj: &Gmdj,
    layout: &AccLayout,
    blocks: &[PreparedBlock],
    opts: EvalOptions,
    morsel_rows: usize,
    n_morsels: usize,
    obs: &Obs,
    site: usize,
) -> Result<MorselState> {
    assert!(detail.len() < u32::MAX as usize, "detail relation too large");
    let cols = detail.columns();

    // Lower blocks: share canonical pairs between blocks with identical
    // equi-keys (mirrors the row kernel's index cache), classify every
    // aggregate against the column layouts.
    let mut cache: HashMap<(Vec<usize>, Vec<usize>), usize> = HashMap::new();
    let mut pairs: Vec<CanonPair> = Vec::new();
    let mut cblocks = Vec::with_capacity(blocks.len());
    let mut gi = 0usize;
    for (bi, pb) in blocks.iter().enumerate() {
        let pair = if pb.index.is_some() {
            let key = (pb.base_keys.clone(), pb.detail_keys.clone());
            let slot = *cache.entry(key).or_insert_with(|| {
                pairs.push(CanonPair::build(base, cols, &pb.base_keys, &pb.detail_keys));
                pairs.len() - 1
            });
            Some(slot)
        } else {
            None
        };
        let residual = (!pb.trivial_condition).then_some(&pb.condition);
        let mut aggs = Vec::with_capacity(pb.aggs.len());
        for (spec, (input, _off)) in gmdj.blocks[bi].aggs.iter().zip(&pb.aggs) {
            aggs.push((gi, classify(spec, input.as_ref(), cols)));
            gi += 1;
        }
        cblocks.push(ColBlock {
            pair,
            residual,
            aggs,
        });
    }

    let kernel = ColKernel {
        base,
        detail: cols,
        layout,
        blocks: cblocks,
        pairs,
        opts,
        morsel_rows,
        n_morsels,
    };
    let merged = drive(&kernel, opts, obs, site)?;

    // Materialize into the row kernel's state shape: per base position,
    // the physical accumulator values in layout (global aggregate) order.
    let n = base.len();
    let mut accs = Vec::with_capacity(n);
    for pos in 0..n {
        let mut acc = Vec::with_capacity(layout.width());
        for st in &merged.aggs {
            st.push_values(pos, &mut acc);
        }
        accs.push(acc);
    }
    Ok(MorselState {
        accs,
        matched: merged.matched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::eval::{eval_full, eval_local, DEFAULT_MORSEL_ROWS};
    use crate::theta::ThetaBuilder;
    use skalla_relation::{row, DataType, Expr, Schema};

    fn opts_columnar() -> EvalOptions {
        EvalOptions {
            hash_path: true,
            parallelism: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            legacy_probe: false,
            columnar: true,
            skew_balance: true,
            cache: true,
            fault_panic_morsel: None,
        }
    }

    fn opts_row() -> EvalOptions {
        EvalOptions {
            columnar: false,
            ..opts_columnar()
        }
    }

    fn detail() -> Relation {
        Relation::new(
            Schema::of(&[
                ("g", DataType::Int),
                ("v", DataType::Int),
                ("x", DataType::Double),
                ("s", DataType::Str),
            ]),
            vec![
                row![1i64, 10i64, 1.5, "a"],
                row![1i64, 20i64, -0.0, "b"],
                row![2i64, 5i64, f64::NAN, "a"],
                row![2i64, 7i64, 2.5, Value::Null],
                row![2i64, Value::Null, 0.25, "c"],
            ],
        )
        .unwrap()
    }

    fn base() -> Relation {
        Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![2i64], row![3i64]],
        )
        .unwrap()
    }

    fn wide_gmdj() -> Gmdj {
        Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![
                AggSpec::count("cnt"),
                AggSpec::over_expr(AggFunc::Count, Expr::dcol("v"), "cnt_v"),
                AggSpec::sum("v", "sum_v"),
                AggSpec::sum("x", "sum_x"),
                AggSpec::min("v", "min_v"),
                AggSpec::max("x", "max_x"),
                AggSpec::avg("v", "avg_v"),
                AggSpec::avg("x", "avg_x"),
                AggSpec::var("x", "var_x"),
                AggSpec::min("s", "min_s"),
                AggSpec::over_expr(
                    AggFunc::Sum,
                    Expr::dcol("v").mul(Expr::lit(2i64)),
                    "sum_2v",
                ),
            ],
        )
    }

    /// Bitwise comparison of two local results (PartialEq on Double is
    /// not bitwise: -0.0 == 0.0 and NaN payloads compare equal).
    fn assert_bits_equal(a: &crate::eval::LocalGmdj, b: &crate::eval::LocalGmdj) {
        assert_eq!(a.matched, b.matched);
        assert_eq!(a.physical.len(), b.physical.len());
        for (ra, rb) in a.physical.iter().zip(b.physical.iter()) {
            for (va, vb) in ra.values().iter().zip(rb.values()) {
                match (va, vb) {
                    (Value::Double(x), Value::Double(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "double bits differ")
                    }
                    _ => assert_eq!(va, vb),
                }
            }
        }
    }

    #[test]
    fn columnar_matches_row_kernel_wide_aggregates() {
        let col = eval_local(&base(), &detail(), &wide_gmdj(), opts_columnar()).unwrap();
        let rowk = eval_local(&base(), &detail(), &wide_gmdj(), opts_row()).unwrap();
        assert_bits_equal(&col, &rowk);
    }

    #[test]
    fn columnar_matches_row_kernel_tiny_morsels_and_threads() {
        for morsel_rows in [1usize, 2, 3] {
            for p in [1usize, 2, 4] {
                let col = eval_local(
                    &base(),
                    &detail(),
                    &wide_gmdj(),
                    EvalOptions {
                        morsel_rows,
                        parallelism: p,
                        ..opts_columnar()
                    },
                )
                .unwrap();
                let rowk = eval_local(
                    &base(),
                    &detail(),
                    &wide_gmdj(),
                    EvalOptions {
                        morsel_rows,
                        ..opts_row()
                    },
                )
                .unwrap();
                assert_bits_equal(&col, &rowk);
            }
        }
    }

    #[test]
    fn columnar_nested_loop_and_residual() {
        // Non-equi θ forces the nested loop; a residual exercises
        // eval_cols against the columnar store.
        let b = Relation::new(
            Schema::of(&[("lo", DataType::Int)]),
            vec![row![0i64], row![8i64]],
        )
        .unwrap();
        let g = Gmdj::new("t").block(
            Expr::dcol("v").ge(Expr::bcol("lo")),
            vec![AggSpec::count("cnt"), AggSpec::sum("x", "sx")],
        );
        let col = eval_full(&b, &detail(), &g, opts_columnar()).unwrap();
        let rowk = eval_full(&b, &detail(), &g, opts_row()).unwrap();
        assert_eq!(col, rowk);
        // Group-by with an extra residual conjunct (hash path + residual).
        let g2 = Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").gt(Expr::lit(6i64)))
                .build(),
            vec![AggSpec::count("cnt"), AggSpec::max("v", "mx")],
        );
        let col = eval_full(&base(), &detail(), &g2, opts_columnar()).unwrap();
        let rowk = eval_full(&base(), &detail(), &g2, opts_row()).unwrap();
        assert_eq!(col, rowk);
    }

    #[test]
    fn columnar_string_keys_probe_dictionary_codes() {
        let b = Relation::new(
            Schema::of(&[("s", DataType::Str)]),
            vec![row!["a"], row!["c"], row!["zzz"]],
        )
        .unwrap();
        let g = Gmdj::new("t").block(
            ThetaBuilder::group_by(&["s"]).build(),
            vec![AggSpec::count("cnt"), AggSpec::sum("v", "sv")],
        );
        let col = eval_full(&b, &detail(), &g, opts_columnar()).unwrap();
        let rowk = eval_full(&b, &detail(), &g, opts_row()).unwrap();
        assert_eq!(col, rowk);
        // "zzz" appears nowhere in the detail dictionary.
        assert_eq!(col.rows()[2], row!["zzz", 0i64, Value::Null]);
    }

    #[test]
    fn columnar_mixed_type_key_column() {
        // A detail key column mixing Int and Str (legal: lazily typed)
        // falls back to Mixed and still matches by value equality.
        let d = Relation::new(
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
            vec![row![1i64, 10i64], row!["one", 20i64], row![1i64, 30i64]],
        )
        .unwrap();
        let b = Relation::new(
            Schema::of(&[("k", DataType::Int)]),
            vec![row![1i64], row!["one"], row![1.0]],
        )
        .unwrap();
        let g = Gmdj::new("t").block(
            ThetaBuilder::group_by(&["k"]).build(),
            vec![AggSpec::sum("v", "sv")],
        );
        let col = eval_full(&b, &d, &g, opts_columnar()).unwrap();
        let rowk = eval_full(&b, &d, &g, opts_row()).unwrap();
        assert_eq!(col, rowk);
        // Int(1) == Double(1.0) canonically.
        assert_eq!(col.rows()[2].get(1), &Value::Int(40));
    }

    #[test]
    fn columnar_streaming_serial_matches_parallel_bits() {
        // Satellite check: the workers==1 streaming merge produces the
        // same bits as the deferred parallel merge, morsel by morsel.
        let serial = eval_local(
            &base(),
            &detail(),
            &wide_gmdj(),
            EvalOptions {
                morsel_rows: 2,
                parallelism: 1,
                ..opts_columnar()
            },
        )
        .unwrap();
        let parallel = eval_local(
            &base(),
            &detail(),
            &wide_gmdj(),
            EvalOptions {
                morsel_rows: 2,
                parallelism: 4,
                ..opts_columnar()
            },
        )
        .unwrap();
        assert_bits_equal(&serial, &parallel);
    }

    #[test]
    fn columnar_worker_panic_surfaces_as_execution_error() {
        let err = eval_local(
            &base(),
            &detail(),
            &wide_gmdj(),
            EvalOptions {
                morsel_rows: 1,
                parallelism: 2,
                skew_balance: true,
                fault_panic_morsel: Some(1),
                ..opts_columnar()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("panicked in morsel 1"));
    }
}
