//! Heavy-hitter detection for skew-resilient distribution.
//!
//! [`SpaceSaving`] is the deterministic *space-saving* top-k sketch
//! (Metwally et al., ICDT 2005) over **canonical group keys**: every
//! offered key is folded to the columnar kernel's `(tag, word)`
//! canonical form (see [`crate::columnar`]), so `Int(2)` and
//! `Double(2.0)` — which the kernel treats as the same group key — also
//! count as the same heavy hitter, and strings intern to stable
//! per-sketch codes instead of hashing.
//!
//! A warehouse site runs one sketch pass over its detail partition's key
//! columns during round 1 and reports the top hitters to the
//! coordinator, which uses the counts to decide per-key routing (hash
//! partitioning for the light tail, explicit splitting for hot groups).
//! The sketch is a *load-balancing hint only*: the distributed results
//! stay bit-identical to the unbalanced plan whatever keys it reports,
//! so the classic space-saving overestimation error never affects
//! answers, only how well work spreads.

use crate::columnar::{canon_value, StrCodes};
use skalla_relation::Value;
use std::collections::HashMap;

/// One tracked entry: the canonical key's representative [`Value`] form
/// (the first offered representative) and its estimated count.
#[derive(Debug, Clone)]
struct Entry {
    repr: Vec<Value>,
    count: u64,
}

/// Deterministic space-saving sketch over canonical group keys.
///
/// Tracks at most `capacity` distinct keys. Offering a tracked key
/// increments its counter; offering an untracked key when full evicts
/// the minimum-count entry and inherits its count (+1) — the classic
/// space-saving guarantee: every key with true frequency above `N /
/// capacity` is tracked, and counts overestimate by at most the evicted
/// minimum. All tie-breaks are on canonical key order, so two sites
/// scanning the same rows produce the same report.
#[derive(Debug)]
pub struct SpaceSaving {
    capacity: usize,
    /// canonical key → index into `entries`.
    index: HashMap<Vec<(u8, u64)>, usize>,
    /// Reverse of `index`, parallel to `entries`.
    keys: Vec<Vec<(u8, u64)>>,
    entries: Vec<Entry>,
    codes: StrCodes,
    total: u64,
    /// Reusable canonicalization buffer so the hot `offer` path (one call
    /// per detail row) never allocates for already-tracked keys.
    scratch: Vec<(u8, u64)>,
}

impl SpaceSaving {
    /// A sketch tracking at most `capacity` keys (`capacity >= 1`).
    pub fn new(capacity: usize) -> SpaceSaving {
        assert!(capacity >= 1, "sketch capacity must be positive");
        SpaceSaving {
            capacity,
            index: HashMap::with_capacity(capacity),
            keys: Vec::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            codes: StrCodes::new(),
            total: 0,
            scratch: Vec::new(),
        }
    }

    /// Total number of offered keys (the stream length `N`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Offer one group key (the values of the key columns of one detail
    /// row, in key-column order).
    pub fn offer(&mut self, key: &[&Value]) {
        self.total += 1;
        self.scratch.clear();
        for v in key {
            let c = canon_value(v, &mut self.codes);
            self.scratch.push(c);
        }
        // Tracked keys (the common case on a skewed stream) are a pure
        // slice lookup — no allocation.
        if let Some(&i) = self.index.get(self.scratch.as_slice()) {
            self.entries[i].count += 1;
            return;
        }
        let canon = self.scratch.clone();
        let repr = || key.iter().map(|v| (*v).clone()).collect::<Vec<Value>>();
        if self.entries.len() < self.capacity {
            let i = self.entries.len();
            self.index.insert(canon.clone(), i);
            self.keys.push(canon);
            self.entries.push(Entry {
                repr: repr(),
                count: 1,
            });
            return;
        }
        // Evict the minimum-count entry (ties broken on canonical key
        // order for determinism) and inherit its count.
        let min = (0..self.entries.len())
            .min_by(|&a, &b| {
                self.entries[a]
                    .count
                    .cmp(&self.entries[b].count)
                    .then_with(|| self.keys[a].cmp(&self.keys[b]))
            })
            .expect("sketch is non-empty at capacity");
        let old = self.keys[min].clone();
        self.index.remove(&old);
        self.index.insert(canon.clone(), min);
        self.keys[min] = canon;
        self.entries[min] = Entry {
            repr: repr(),
            count: self.entries[min].count + 1,
        };
    }

    /// The top `k` hitters as `(representative key, estimated count)`,
    /// sorted by descending count (ties on canonical key order).
    pub fn top(&self, k: usize) -> Vec<(Vec<Value>, u64)> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            self.entries[b]
                .count
                .cmp(&self.entries[a].count)
                .then_with(|| self.keys[a].cmp(&self.keys[b]))
        });
        order
            .into_iter()
            .take(k)
            .map(|i| (self.entries[i].repr.clone(), self.entries[i].count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer_int(s: &mut SpaceSaving, k: i64) {
        let v = Value::Int(k);
        s.offer(&[&v]);
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for k in [1i64, 1, 1, 2, 2, 3] {
            offer_int(&mut s, k);
        }
        assert_eq!(s.total(), 6);
        let top = s.top(2);
        assert_eq!(top[0], (vec![Value::Int(1)], 3));
        assert_eq!(top[1], (vec![Value::Int(2)], 2));
    }

    #[test]
    fn heavy_hitter_survives_eviction_pressure() {
        // One key at ~50% frequency among many singletons: with capacity
        // well under the distinct count, the hot key must still be on top.
        let mut s = SpaceSaving::new(16);
        for i in 0..2000i64 {
            offer_int(&mut s, if i % 2 == 0 { 0 } else { 1000 + i });
        }
        let top = s.top(1);
        assert_eq!(top[0].0, vec![Value::Int(0)]);
        assert!(top[0].1 >= 1000, "hot count underestimated: {}", top[0].1);
    }

    #[test]
    fn cross_type_keys_count_as_one_group() {
        // Int(2) and Double(2.0) are one group key to the kernel, so the
        // sketch must fold them together too.
        let mut s = SpaceSaving::new(8);
        let a = Value::Int(2);
        let b = Value::Double(2.0);
        s.offer(&[&a]);
        s.offer(&[&b]);
        s.offer(&[&b]);
        let top = s.top(8);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].1, 3);
    }

    #[test]
    fn string_keys_intern_stably() {
        let mut s = SpaceSaving::new(4);
        let x = Value::Str("x".into());
        let y = Value::Str("y".into());
        s.offer(&[&x]);
        s.offer(&[&x]);
        s.offer(&[&y]);
        let top = s.top(4);
        assert_eq!(top[0], (vec![Value::Str("x".into())], 2));
        assert_eq!(top[1], (vec![Value::Str("y".into())], 1));
    }

    #[test]
    fn deterministic_across_runs() {
        let stream: Vec<i64> = (0..500).map(|i| (i * i) % 37).collect();
        let run = || {
            let mut s = SpaceSaving::new(8);
            for &k in &stream {
                offer_int(&mut s, k);
            }
            s.top(8)
        };
        assert_eq!(run(), run());
    }
}
