//! Centralized / per-site GMDJ evaluation.
//!
//! Conventional groupwise aggregation does not apply to GMDJs because the
//! ranges `RNG(b, R, θ)` of different base tuples may overlap. The engine
//! therefore evaluates each block `(θᵢ, lᵢ)` by one of two strategies,
//! chosen from the [θ analysis](crate::theta::analyze_theta):
//!
//! * **Hash path** — when θᵢ contains equi-key conjuncts `b.x = r.y`, base
//!   tuples are hash-indexed on their key columns and each detail tuple
//!   probes the index, applying the residual condition to the candidates.
//!   Cost `O(|B| + |R|·candidates)`. This mirrors the efficient centralized
//!   evaluation of [2, 7] cited by the paper. The index is a hash-to-bucket
//!   structure over row positions (precomputed u64 key hashes, bucket heads
//!   plus a per-row chain link), so probing a detail tuple clones no
//!   [`Value`]s and performs **zero heap allocations** per probe.
//! * **Nested loop** — the general fallback, `O(|B|·|R|)`, with trivially
//!   true residuals pre-bound out of the inner loop.
//!
//! **Morsel-driven parallelism.** The detail relation is split into
//! fixed-size morsels of [`EvalOptions::morsel_rows`] rows (Leis et al.,
//! SIGMOD 2014). Worker threads (a [`std::thread::scope`] pool of
//! [`EvalOptions::parallelism`] threads) claim morsels from an atomic
//! counter; every block's base-side index is built **once** and shared
//! immutably across the pool (blocks with identical equi-keys share one
//! index via a small cache). Each morsel accumulates into its own
//! `accs`/`matched` arrays, and morsel results are merged **in morsel
//! order** via [`AccLayout::merge`]. Because the morsel decomposition
//! depends only on the input size and `morsel_rows` — never on the thread
//! count — float aggregates are bit-identical across `parallelism` values.
//!
//! [`eval_local`] produces *physical* (sub-aggregate) accumulators plus a
//! per-group match flag — exactly what a warehouse site ships to the
//! coordinator; [`eval_full`] additionally finalizes, for single-machine
//! evaluation and as the test oracle.

use crate::agg::AccLayout;
use crate::operator::Gmdj;
use crate::theta::analyze_theta;
use skalla_obs::{Obs, Track};
use skalla_relation::{BoundExpr, Error, Relation, Result, Row, Schema, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default morsel size (rows of the detail relation per work unit).
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Evaluation knobs.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Use the hash fast path when θ has equi-key conjuncts (on by
    /// default; disable for the nested-loop ablation bench).
    pub hash_path: bool,
    /// Worker threads for the morsel-parallel kernel. `0` means "auto":
    /// use [`std::thread::available_parallelism`]. `1` runs the kernel
    /// serially (same morsel structure, same bits).
    pub parallelism: usize,
    /// Rows per morsel. Output bits depend on this (it fixes the
    /// accumulator merge structure) but **not** on `parallelism`.
    pub morsel_rows: usize,
    /// Use the legacy allocating `HashMap<Vec<Value>, Vec<usize>>` probe
    /// instead of the zero-allocation bucket index. Kept only for the
    /// `fig_kernel` ablation bench.
    pub legacy_probe: bool,
    /// Evaluate through the columnar (vectorized) kernel: typed aggregate
    /// accumulator arrays over the detail relation's columnar layout
    /// ([`skalla_relation::Columns`]), canonical-key probes on dictionary
    /// codes instead of per-row [`Value`] hashing. On by default. Like
    /// `legacy_probe`, this is an ablation knob (env `SKALLA_COLUMNAR=0`,
    /// CLI `--no-columnar`) so fig benches can A/B the two kernels; both
    /// produce bit-identical results.
    pub columnar: bool,
    /// Skew-resilient distribution: sites report heavy-hitter group keys
    /// during round 1 and the coordinator re-routes hot groups away from
    /// overloaded sites (with a final merge leg for the split
    /// sub-aggregates). On by default; results are bit-identical either
    /// way, so this is an ablation knob (env `SKALLA_SKEW=0`, CLI
    /// `--no-skew-balance`) for the `fig_skew` bench and for operators
    /// diagnosing balancer behaviour.
    pub skew_balance: bool,
    /// Semantic result caching at the concurrent engine: repeated plans
    /// are answered from the coordinator's sub-aggregate cache (and
    /// in-flight duplicates coalesce) instead of re-contacting the
    /// sites, and `query::cube` rolls coarse grouping sets up from the
    /// finest level locally. On by default; a served result is the
    /// bit-identical relation the sites produced, so this is an ablation
    /// knob (env `SKALLA_CACHE=0`, CLI `--no-cache`) for the `fig_cache`
    /// bench and for reproducing pre-cache traffic byte-for-byte.
    pub cache: bool,
    /// Fault injection for robustness tests: panic when a worker starts
    /// the morsel with this index. `None` in production.
    pub fault_panic_morsel: Option<usize>,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn env_flag(name: &str) -> Option<bool> {
    std::env::var(name)
        .ok()
        .map(|v| v != "0" && !v.eq_ignore_ascii_case("false"))
}

impl Default for EvalOptions {
    /// Defaults honour the `SKALLA_*` environment: every knob has an env
    /// override (`SKALLA_THREADS`, `SKALLA_MORSEL_ROWS`,
    /// `SKALLA_COLUMNAR`, `SKALLA_SKEW`, `SKALLA_CACHE`,
    /// `SKALLA_HASH_PATH`, `SKALLA_LEGACY_PROBE`,
    /// `SKALLA_FAULT_MORSEL`), used by `ci.sh` to run the whole suite at
    /// several thread counts, under both kernels, with the skew balancer
    /// on and off, and with the semantic cache on and off. Fallbacks:
    /// auto parallelism, [`DEFAULT_MORSEL_ROWS`], the hash path and
    /// columnar kernel on, skew balancing on, semantic caching on, no
    /// fault injection. The `knob-wiring` lint enforces that this list
    /// stays complete.
    fn default() -> Self {
        EvalOptions {
            hash_path: env_flag("SKALLA_HASH_PATH").unwrap_or(true),
            parallelism: env_usize("SKALLA_THREADS").unwrap_or(0),
            morsel_rows: env_usize("SKALLA_MORSEL_ROWS")
                .unwrap_or(DEFAULT_MORSEL_ROWS)
                .max(1),
            legacy_probe: env_flag("SKALLA_LEGACY_PROBE").unwrap_or(false),
            columnar: env_flag("SKALLA_COLUMNAR").unwrap_or(true),
            skew_balance: env_flag("SKALLA_SKEW").unwrap_or(true),
            cache: env_flag("SKALLA_CACHE").unwrap_or(true),
            fault_panic_morsel: env_usize("SKALLA_FAULT_MORSEL"),
        }
    }
}

impl EvalOptions {
    /// Default options with an explicit worker count (`0` = auto).
    pub fn with_parallelism(parallelism: usize) -> EvalOptions {
        EvalOptions {
            parallelism,
            ..EvalOptions::default()
        }
    }

    /// The resolved worker count: `parallelism`, or the machine's
    /// available cores when `0`.
    pub fn effective_parallelism(&self) -> usize {
        if self.parallelism > 0 {
            self.parallelism
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The result of evaluating a GMDJ at one site.
#[derive(Debug, Clone)]
pub struct LocalGmdj {
    /// Base columns ⊕ physical accumulator columns, one row per base tuple
    /// (same order as the input base relation).
    pub physical: Relation,
    /// Per base tuple: did any detail tuple at this site match any θᵢ?
    /// (`|RNG(b, Rᵢ, θ₁ ∨ … ∨ θ_m)| > 0` — the distribution-independent
    /// group-reduction test of Proposition 1.)
    pub matched: Vec<bool>,
}

impl LocalGmdj {
    /// The physical rows whose group matched at least one detail tuple —
    /// what a site ships when distribution-independent group reduction is
    /// enabled.
    pub fn reduced(&self) -> Relation {
        let rows = self
            .physical
            .rows()
            .iter()
            .zip(&self.matched)
            .filter(|(_, m)| **m)
            .map(|(r, _)| r.clone())
            .collect();
        Relation::from_shared(self.physical.schema_ref(), rows)
    }
}

/// Hash the values of `row` at `cols` with the deterministic (zero-keyed)
/// SipHash behind [`DefaultHasher`]. Uses [`Value`]'s own `Hash` impl, so
/// `Int(2)` and `Double(2.0)` — which compare equal — hash equally. No
/// allocation.
fn key_hash(row: &Row, cols: &[usize]) -> u64 {
    let mut h = DefaultHasher::new();
    for &c in cols {
        row.get(c).hash(&mut h);
    }
    h.finish()
}

/// A zero-allocation multimap from key hashes to base-row positions:
/// power-of-two bucket heads plus a per-row chain link (the "open" table
/// is keyed by row position, so duplicate base keys cost one link each).
/// Probes compare precomputed u64 hashes first and leave `Value` equality
/// to the caller — no `Vec<Value>` key is ever materialized.
struct KeyIndex {
    /// Bucket → first chained row position + 1 (0 = empty bucket).
    heads: Vec<u32>,
    /// Row position → next position + 1 in the same bucket.
    next: Vec<u32>,
    /// Precomputed key hash per base row.
    hashes: Vec<u64>,
}

impl KeyIndex {
    fn build(base: &Relation, keys: &[usize]) -> KeyIndex {
        let n = base.len();
        assert!(n < u32::MAX as usize, "base relation too large to index");
        let cap = (n.max(1) * 2).next_power_of_two();
        let mut heads = vec![0u32; cap];
        let mut next = vec![0u32; n];
        let mut hashes = vec![0u64; n];
        for (pos, row) in base.iter().enumerate() {
            let h = key_hash(row, keys);
            hashes[pos] = h;
            let b = (h as usize) & (cap - 1);
            next[pos] = heads[b];
            heads[b] = pos as u32 + 1;
        }
        KeyIndex {
            heads,
            next,
            hashes,
        }
    }

    /// Base-row positions whose key hash equals `hash` (callers verify
    /// actual key equality — hash collisions are possible).
    fn candidates(&self, hash: u64) -> Candidates<'_> {
        let bucket = (hash as usize) & (self.heads.len() - 1);
        Candidates {
            index: self,
            cur: self.heads[bucket],
            hash,
        }
    }
}

struct Candidates<'a> {
    index: &'a KeyIndex,
    cur: u32,
    hash: u64,
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.cur != 0 {
            let pos = (self.cur - 1) as usize;
            self.cur = self.index.next[pos];
            if self.index.hashes[pos] == self.hash {
                return Some(pos);
            }
        }
        None
    }
}

/// One block's base-side index: the zero-allocation bucket index, or the
/// legacy allocating map (ablation only).
enum BaseIndex {
    Fast(KeyIndex),
    Legacy(HashMap<Vec<Value>, Vec<usize>>),
}

pub(crate) struct PreparedBlock {
    /// Base-side positions of equi-key columns (empty ⇒ nested loop).
    pub(crate) base_keys: Vec<usize>,
    /// Detail-side positions of equi-key columns.
    pub(crate) detail_keys: Vec<usize>,
    /// Bound residual (or the full θ for the nested-loop path).
    pub(crate) condition: BoundExpr,
    /// `true` when `condition` is a trivially true literal — pre-bound out
    /// of the inner loops on both the hash and nested-loop paths.
    pub(crate) trivial_condition: bool,
    /// Slot in the shared index cache (`Some` ⇒ hash path; blocks with
    /// identical `base_keys` share one slot).
    pub(crate) index: Option<usize>,
    /// Bound aggregate inputs (`None` for `COUNT(*)`), with the slot
    /// offset of each aggregate.
    pub(crate) aggs: Vec<(Option<BoundExpr>, usize)>,
}

pub(crate) fn prepare_blocks(
    gmdj: &Gmdj,
    base: &Schema,
    detail: &Schema,
    opts: EvalOptions,
) -> Result<(AccLayout, Vec<PreparedBlock>)> {
    let layout = gmdj.layout();
    // Map each (block, agg) to its slot offset.
    let mut offsets_per_block: Vec<Vec<usize>> = vec![Vec::new(); gmdj.blocks.len()];
    for (bi, agg, off) in layout.entries() {
        let _ = agg;
        offsets_per_block[*bi].push(*off);
    }
    let mut blocks = Vec::with_capacity(gmdj.blocks.len());
    for (bi, block) in gmdj.blocks.iter().enumerate() {
        let analysis = analyze_theta(&block.theta);
        let use_hash = opts.hash_path && !analysis.equi.is_empty();
        let (base_keys, detail_keys, condition) = if use_hash {
            let mut bk = Vec::with_capacity(analysis.equi.len());
            let mut dk = Vec::with_capacity(analysis.equi.len());
            for (b, d) in &analysis.equi {
                bk.push(base.index_of(b)?);
                dk.push(detail.index_of(d)?);
            }
            (bk, dk, analysis.residual.bind(base, Some(detail))?)
        } else {
            (
                Vec::new(),
                Vec::new(),
                block.theta.bind(base, Some(detail))?,
            )
        };
        let mut aggs = Vec::with_capacity(block.aggs.len());
        for (a, off) in block.aggs.iter().zip(&offsets_per_block[bi]) {
            let bound = match &a.input {
                Some(e) => Some(e.bind(base, Some(detail))?),
                None => None,
            };
            aggs.push((bound, *off));
        }
        let trivial_condition =
            matches!(condition, BoundExpr::Lit(ref v) if v.is_truthy());
        blocks.push(PreparedBlock {
            base_keys,
            detail_keys,
            condition,
            trivial_condition,
            index: use_hash.then_some(usize::MAX), // patched by build_indexes
            aggs,
        });
    }
    Ok((layout, blocks))
}

/// Build each hash block's base-side index **once**, deduplicating blocks
/// that share identical `base_keys` through a small cache.
fn build_indexes(
    base: &Relation,
    blocks: &mut [PreparedBlock],
    opts: EvalOptions,
) -> Vec<BaseIndex> {
    let mut cache: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut indexes: Vec<BaseIndex> = Vec::new();
    for pb in blocks.iter_mut() {
        if pb.index.is_none() {
            continue;
        }
        let slot = *cache.entry(pb.base_keys.clone()).or_insert_with(|| {
            let idx = if opts.legacy_probe {
                let mut map: HashMap<Vec<Value>, Vec<usize>> =
                    HashMap::with_capacity(base.len());
                for (pos, row) in base.iter().enumerate() {
                    map.entry(row.key(&pb.base_keys)).or_default().push(pos);
                }
                BaseIndex::Legacy(map)
            } else {
                BaseIndex::Fast(KeyIndex::build(base, &pb.base_keys))
            };
            indexes.push(idx);
            indexes.len() - 1
        });
        pb.index = Some(slot);
    }
    indexes
}

/// Per-morsel accumulation state: one accumulator vector and one match
/// flag per base row. Also the shape both kernels (row and columnar)
/// deliver their merged result in.
pub(crate) struct MorselState {
    pub(crate) accs: Vec<Vec<Value>>,
    pub(crate) matched: Vec<bool>,
}

/// A morsel-at-a-time kernel the shared [`drive`] loop can run: both the
/// row kernel below and the columnar kernel in [`crate::columnar`]
/// implement it. Results must be a pure function of (input, morsel
/// structure): a fresh state per morsel plus an in-morsel-order merge.
pub(crate) trait MorselKernel: Sync {
    /// Per-morsel accumulation state.
    type State: Send;
    /// Number of morsels the detail relation splits into (≥ 1).
    fn n_morsels(&self) -> usize;
    /// Number of detail rows in morsel `m` (span attribute only).
    fn morsel_rows_in(&self, m: usize) -> usize;
    /// A fresh (empty) accumulation state.
    fn init_state(&self) -> Self::State;
    /// Reset a state to exactly [`MorselKernel::init_state`] in place,
    /// reusing its allocations (serial streaming path).
    fn reset_state(&self, state: &mut Self::State);
    /// Evaluate morsel `m` into `state` (which is freshly init/reset).
    fn run_morsel_into(&self, m: usize, state: &mut Self::State) -> Result<()>;
    /// Merge `src` (a later morsel) into `dst`, in morsel order.
    fn merge_state(&self, dst: &mut Self::State, src: &Self::State) -> Result<()>;
}

/// Run one morsel behind a panic barrier, recording a span on the
/// worker's own track (span nesting is per-track, so concurrent workers
/// must not share one).
fn run_caught<K: MorselKernel>(
    kernel: &K,
    m: usize,
    state: &mut K::State,
    worker: usize,
    obs: &Obs,
    site: usize,
) -> Result<()> {
    let mut span = if obs.is_recording() {
        Some(
            obs.span(Track::Worker(site, worker), "morsel")
                .with("morsel", m)
                .with("rows", kernel.morsel_rows_in(m)),
        )
    } else {
        None
    };
    // lint: allow(wall-clock) feeds only the diagnostic morsel-latency histogram, never busy accounting
    let t = std::time::Instant::now();
    let out = catch_unwind(AssertUnwindSafe(|| kernel.run_morsel_into(m, state)))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            Err(Error::Execution(format!(
                "worker panicked in morsel {m}: {msg}"
            )))
        });
    if let Some(span) = span.take() {
        obs.hist("kernel.morsel_us", t.elapsed().as_micros() as f64);
        obs.counter_add("kernel.morsels", 1.0);
        span.finish();
    }
    out
}

/// The shared morsel driver: claim morsels, evaluate each into a fresh
/// state, merge **in morsel order**. Because the decomposition and merge
/// structure depend only on (input, `morsel_rows`), bits never depend on
/// the worker count.
///
/// With one effective worker the driver streams: it keeps a running
/// merged state plus one scratch state that is reset (not reallocated)
/// per morsel, and merges each morsel immediately — no per-morsel state
/// vector, no deferred merge pass. The operation sequence (fresh state,
/// merge in order) is identical to the parallel path's, so the bits are
/// the same by construction; only the bookkeeping disappears.
pub(crate) fn drive<K: MorselKernel>(
    kernel: &K,
    opts: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<K::State> {
    let n_morsels = kernel.n_morsels();
    let workers = opts.effective_parallelism().clamp(1, n_morsels);

    if workers == 1 {
        let mut merged = kernel.init_state();
        run_caught(kernel, 0, &mut merged, 0, obs, site)?;
        if n_morsels > 1 {
            let mut scratch = kernel.init_state();
            for m in 1..n_morsels {
                if m > 1 {
                    kernel.reset_state(&mut scratch);
                }
                run_caught(kernel, m, &mut scratch, 0, obs, site)?;
                kernel.merge_state(&mut merged, &scratch)?;
            }
        }
        return Ok(merged);
    }

    // Parallel path: workers claim morsels from an atomic counter; every
    // morsel gets fresh accumulators, merged afterwards in morsel order.
    let next = AtomicUsize::new(0);
    let mut states: Vec<Option<Result<K::State>>> = (0..n_morsels).map(|_| None).collect();
    let worker_outs: Vec<Vec<(usize, Result<K::State>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let m = next.fetch_add(1, Ordering::Relaxed);
                        if m >= n_morsels {
                            break;
                        }
                        let mut state = kernel.init_state();
                        let r = run_caught(kernel, m, &mut state, w, obs, site)
                            .map(|()| state);
                        out.push((m, r));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught"))
            .collect()
    });
    for (m, result) in worker_outs.into_iter().flatten() {
        states[m] = Some(result);
    }

    // Merge in morsel order (deterministic). Errors surface for the
    // smallest failing morsel index, independent of worker scheduling.
    let mut merged: Option<K::State> = None;
    for state in states {
        let state = state.expect("every morsel was claimed")?;
        match &mut merged {
            None => merged = Some(state),
            Some(acc) => kernel.merge_state(acc, &state)?,
        }
    }
    Ok(merged.expect("at least one morsel"))
}

/// The immutable evaluation context shared across the worker pool.
struct Kernel<'a> {
    base: &'a Relation,
    detail: &'a Relation,
    gmdj: &'a Gmdj,
    layout: &'a AccLayout,
    blocks: &'a [PreparedBlock],
    indexes: &'a [BaseIndex],
    opts: EvalOptions,
    morsel_rows: usize,
    n_morsels: usize,
}

impl MorselKernel for Kernel<'_> {
    type State = MorselState;

    fn n_morsels(&self) -> usize {
        self.n_morsels
    }

    fn morsel_rows_in(&self, m: usize) -> usize {
        ((m + 1) * self.morsel_rows).min(self.detail.len()) - m * self.morsel_rows
    }

    fn init_state(&self) -> MorselState {
        MorselState {
            accs: (0..self.base.len()).map(|_| self.layout.init()).collect(),
            matched: vec![false; self.base.len()],
        }
    }

    fn reset_state(&self, state: &mut MorselState) {
        for acc in &mut state.accs {
            self.layout.init_into(acc);
        }
        state.matched.fill(false);
    }

    fn merge_state(&self, dst: &mut MorselState, src: &MorselState) -> Result<()> {
        for (d, s) in dst.accs.iter_mut().zip(&src.accs) {
            self.layout.merge(d, s)?;
        }
        for (d, s) in dst.matched.iter_mut().zip(&src.matched) {
            *d |= *s;
        }
        Ok(())
    }

    /// Evaluate one morsel of the detail relation against every block.
    fn run_morsel_into(&self, m: usize, state: &mut MorselState) -> Result<()> {
        if self.opts.fault_panic_morsel == Some(m) {
            panic!("injected fault in morsel {m}");
        }
        let lo = m * self.morsel_rows;
        let hi = ((m + 1) * self.morsel_rows).min(self.detail.len());
        let morsel = &self.detail.rows()[lo..hi];
        for (bi, pb) in self.blocks.iter().enumerate() {
            let block = &self.gmdj.blocks[bi];
            match pb.index.map(|i| &self.indexes[i]) {
                Some(BaseIndex::Fast(index)) => {
                    // Hash path: probe without materializing a key.
                    for r in morsel {
                        let h = key_hash(r, &pb.detail_keys);
                        for pos in index.candidates(h) {
                            let b = &self.base.rows()[pos];
                            if !keys_equal(b, &pb.base_keys, r, &pb.detail_keys) {
                                continue;
                            }
                            if !pb.trivial_condition
                                && !pb.condition.eval(b, r)?.is_truthy()
                            {
                                continue;
                            }
                            state.matched[pos] = true;
                            update_aggs(block, pb, &mut state.accs[pos], b, r)?;
                        }
                    }
                }
                Some(BaseIndex::Legacy(index)) => {
                    // Ablation-only: the old allocating probe.
                    for r in morsel {
                        let Some(cands) = index.get(&r.key(&pb.detail_keys)) else {
                            continue;
                        };
                        for &pos in cands {
                            let b = &self.base.rows()[pos];
                            if !pb.trivial_condition
                                && !pb.condition.eval(b, r)?.is_truthy()
                            {
                                continue;
                            }
                            state.matched[pos] = true;
                            update_aggs(block, pb, &mut state.accs[pos], b, r)?;
                        }
                    }
                }
                None => {
                    // Nested loop: evaluate θ for every (b, r) pair.
                    for (pos, b) in self.base.iter().enumerate() {
                        let acc = &mut state.accs[pos];
                        for r in morsel {
                            if !pb.trivial_condition
                                && !pb.condition.eval(b, r)?.is_truthy()
                            {
                                continue;
                            }
                            state.matched[pos] = true;
                            update_aggs(block, pb, acc, b, r)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Column-wise key equality between a base and a detail row — compares
/// `&Value`s in place, cloning nothing.
fn keys_equal(b: &Row, base_keys: &[usize], r: &Row, detail_keys: &[usize]) -> bool {
    base_keys
        .iter()
        .zip(detail_keys)
        .all(|(&bk, &dk)| b.get(bk) == r.get(dk))
}

/// Evaluate a GMDJ at one site: sub-aggregates only.
pub fn eval_local(
    base: &Relation,
    detail: &Relation,
    gmdj: &Gmdj,
    opts: EvalOptions,
) -> Result<LocalGmdj> {
    eval_local_traced(base, detail, gmdj, opts, &Obs::disabled(), 0)
}

/// [`eval_local`] with observability: per-morsel spans are recorded on
/// [`Track::Worker`]`(site, worker)` tracks, with `kernel.morsel_us`
/// histogram and `kernel.morsels` counter updates.
pub fn eval_local_traced(
    base: &Relation,
    detail: &Relation,
    gmdj: &Gmdj,
    opts: EvalOptions,
    obs: &Obs,
    site: usize,
) -> Result<LocalGmdj> {
    gmdj.validate(base.schema(), detail.schema())?;
    let (layout, mut blocks) = prepare_blocks(gmdj, base.schema(), detail.schema(), opts)?;

    let morsel_rows = opts.morsel_rows.max(1);
    let n_morsels = detail.len().div_ceil(morsel_rows).max(1);

    // Both kernels run the same morsel decomposition and merge structure
    // through `drive`, so their bits agree with each other and across
    // worker counts.
    let merged: MorselState = if opts.columnar {
        crate::columnar::eval_columnar(
            base,
            detail,
            gmdj,
            &layout,
            &blocks,
            opts,
            morsel_rows,
            n_morsels,
            obs,
            site,
        )?
    } else {
        let indexes = build_indexes(base, &mut blocks, opts);
        let kernel = Kernel {
            base,
            detail,
            gmdj,
            layout: &layout,
            blocks: &blocks,
            indexes: &indexes,
            opts,
            morsel_rows,
            n_morsels,
        };
        drive(&kernel, opts, obs, site)?
    };

    let phys_schema = gmdj.physical_schema(base.schema(), detail.schema())?;
    let rows: Vec<Row> = base
        .iter()
        .zip(merged.accs)
        .map(|(b, acc)| b.extend(&acc))
        .collect();
    Ok(LocalGmdj {
        physical: Relation::new(phys_schema, rows)?,
        matched: merged.matched,
    })
}

fn update_aggs(
    block: &crate::operator::GmdjBlock,
    pb: &PreparedBlock,
    acc: &mut [Value],
    b: &Row,
    r: &Row,
) -> Result<()> {
    for (a, (input, off)) in block.aggs.iter().zip(&pb.aggs) {
        let w = a.acc_width();
        match input {
            Some(e) => {
                let v = e.eval(b, r)?;
                a.update(&mut acc[*off..off + w], Some(&v))?;
            }
            None => a.update(&mut acc[*off..off + w], None)?,
        }
    }
    Ok(())
}

/// Finalize a physical (accumulator) relation into the logical output.
///
/// `base_arity` is the number of leading base columns; `detail` supplies
/// types for the logical aggregate fields.
pub fn finalize_physical(
    physical: &Relation,
    base_arity: usize,
    gmdj: &Gmdj,
    detail: &Schema,
) -> Result<Relation> {
    let layout = gmdj.layout();
    let base_schema = physical
        .schema()
        .project(&(0..base_arity).collect::<Vec<_>>())?;
    let out_schema = gmdj.output_schema(&base_schema, detail)?;
    let mut rows = Vec::with_capacity(physical.len());
    for row in physical {
        let (base_part, acc_part) = row.values().split_at(base_arity);
        let logical = layout.finalize(acc_part)?;
        let mut vs = Vec::with_capacity(base_arity + logical.len());
        vs.extend_from_slice(base_part);
        vs.extend(logical);
        rows.push(Row::new(vs));
    }
    Relation::new(out_schema, rows)
}

/// Evaluate a GMDJ to its logical output on one machine (the oracle and
/// the single-site fast path).
pub fn eval_full(
    base: &Relation,
    detail: &Relation,
    gmdj: &Gmdj,
    opts: EvalOptions,
) -> Result<Relation> {
    let local = eval_local(base, detail, gmdj, opts)?;
    finalize_physical(&local.physical, base.schema().len(), gmdj, detail.schema())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::theta::ThetaBuilder;
    use skalla_relation::{row, DataType, Expr};

    fn detail() -> Relation {
        Relation::new(
            Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
            vec![
                row![1i64, 10i64],
                row![1i64, 20i64],
                row![2i64, 5i64],
                row![2i64, 7i64],
                row![2i64, 9i64],
            ],
        )
        .unwrap()
    }

    fn base() -> Relation {
        Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![2i64], row![3i64]],
        )
        .unwrap()
    }

    fn simple_gmdj() -> Gmdj {
        Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
        )
    }

    /// Environment-independent options for deterministic tests. The row
    /// kernel is selected explicitly — these tests exercise its internals;
    /// columnar/row agreement is covered by dedicated tests below and by
    /// the property suite.
    fn opts() -> EvalOptions {
        EvalOptions {
            hash_path: true,
            parallelism: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            legacy_probe: false,
            columnar: false,
            skew_balance: true,
            cache: true,
            fault_panic_morsel: None,
        }
    }

    #[test]
    fn grouped_count_and_avg() {
        let out = eval_full(&base(), &detail(), &simple_gmdj(), opts()).unwrap();
        assert_eq!(out.schema().column_names(), ["g", "cnt", "avg"]);
        assert_eq!(out.rows()[0], row![1i64, 2i64, 15.0]);
        assert_eq!(out.rows()[1], row![2i64, 3i64, 7.0]);
        // Group 3 has no detail tuples: COUNT 0, AVG NULL.
        assert_eq!(
            out.rows()[2],
            Row::new(vec![Value::Int(3), Value::Int(0), Value::Null])
        );
    }

    #[test]
    fn hash_and_nested_loop_agree() {
        let hash = eval_full(&base(), &detail(), &simple_gmdj(), opts()).unwrap();
        let nl = eval_full(
            &base(),
            &detail(),
            &simple_gmdj(),
            EvalOptions {
                hash_path: false,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(hash, nl);
    }

    #[test]
    fn legacy_probe_matches_bucket_index() {
        let fast = eval_local(&base(), &detail(), &simple_gmdj(), opts()).unwrap();
        let legacy = eval_local(
            &base(),
            &detail(),
            &simple_gmdj(),
            EvalOptions {
                legacy_probe: true,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(fast.physical, legacy.physical);
        assert_eq!(fast.matched, legacy.matched);
    }

    #[test]
    fn morsel_decomposition_is_thread_count_invariant() {
        // Tiny morsels force many of them; every parallelism level must
        // produce identical physical accumulators and flags.
        let reference = eval_local(
            &base(),
            &detail(),
            &simple_gmdj(),
            EvalOptions {
                morsel_rows: 2,
                ..opts()
            },
        )
        .unwrap();
        for p in [2usize, 3, 8] {
            let out = eval_local(
                &base(),
                &detail(),
                &simple_gmdj(),
                EvalOptions {
                    morsel_rows: 2,
                    parallelism: p,
                    ..opts()
                },
            )
            .unwrap();
            assert_eq!(out.physical, reference.physical, "parallelism {p}");
            assert_eq!(out.matched, reference.matched, "parallelism {p}");
        }
    }

    #[test]
    fn worker_panic_surfaces_as_execution_error() {
        let err = eval_local(
            &base(),
            &detail(),
            &simple_gmdj(),
            EvalOptions {
                morsel_rows: 1,
                parallelism: 2,
                fault_panic_morsel: Some(1),
                ..opts()
            },
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("panicked in morsel 1"), "unexpected: {msg}");
    }

    #[test]
    fn duplicate_base_keys_all_probe_candidates() {
        // Duplicate base tuples share a bucket chain; each must receive
        // its own accumulators through the position-keyed index.
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![2i64], row![2i64], row![1i64]],
        )
        .unwrap();
        let out = eval_full(&b, &detail(), &simple_gmdj(), opts()).unwrap();
        assert_eq!(out.rows()[0], row![2i64, 3i64, 7.0]);
        assert_eq!(out.rows()[0], out.rows()[1]);
        assert_eq!(out.rows()[2], row![1i64, 2i64, 15.0]);
    }

    #[test]
    fn overlapping_ranges_nested_loop() {
        // θ: r.v >= b.lo — ranges overlap across base tuples (not a group-by).
        let base = Relation::new(
            Schema::of(&[("lo", DataType::Int)]),
            vec![row![0i64], row![8i64]],
        )
        .unwrap();
        let g = Gmdj::new("t").block(
            Expr::dcol("v").ge(Expr::bcol("lo")),
            vec![AggSpec::count("cnt")],
        );
        let out = eval_full(&base, &detail(), &g, opts()).unwrap();
        // lo=0 matches all 5; lo=8 matches v ∈ {10, 20, 9}.
        assert_eq!(out.rows()[0], row![0i64, 5i64]);
        assert_eq!(out.rows()[1], row![8i64, 3i64]);
    }

    #[test]
    fn correlated_second_block_uses_first_outputs() {
        // Two-step: first compute avg per group, then count tuples above it
        // (paper Example 1 collapsed to one partition).
        let b1 = eval_full(&base(), &detail(), &simple_gmdj(), opts()).unwrap();
        let g2 = Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").ge(Expr::bcol("avg")))
                .build(),
            vec![AggSpec::count("cnt2")],
        );
        let out = eval_full(&b1, &detail(), &g2, opts()).unwrap();
        // Group 1: avg 15, v ∈ {20} above-or-equal → wait, v ∈ {10, 20}; 20 >= 15 → 1.
        assert_eq!(out.rows()[0], row![1i64, 2i64, 15.0, 1i64]);
        // Group 2: avg 7, v ∈ {7, 9} ≥ 7 → 2.
        assert_eq!(out.rows()[1], row![2i64, 3i64, 7.0, 2i64]);
        // Group 3: no tuples.
        assert_eq!(out.rows()[2].get(3), &Value::Int(0));
    }

    #[test]
    fn local_eval_matched_flags_and_reduction() {
        let local = eval_local(&base(), &detail(), &simple_gmdj(), opts()).unwrap();
        assert_eq!(local.matched, vec![true, true, false]);
        let reduced = local.reduced();
        assert_eq!(reduced.len(), 2);
        // Physical schema carries the AVG decomposition.
        assert_eq!(
            local.physical.schema().column_names(),
            ["g", "cnt", "avg__sum", "avg__cnt"]
        );
    }

    #[test]
    fn sub_super_aggregation_matches_direct() {
        // Split detail into two partitions, evaluate locally, merge, and
        // compare against direct evaluation (Theorem 1).
        let d = detail();
        let p1 = Relation::from_shared(d.schema_ref(), d.rows()[..2].to_vec());
        let p2 = Relation::from_shared(d.schema_ref(), d.rows()[2..].to_vec());
        let g = simple_gmdj();
        let l1 = eval_local(&base(), &p1, &g, opts()).unwrap();
        let l2 = eval_local(&base(), &p2, &g, opts()).unwrap();

        let layout = g.layout();
        let base_arity = base().schema().len();
        let mut merged = l1.physical.clone();
        for (dst, src) in merged
            .rows_mut()
            .iter_mut()
            .zip(l2.physical.rows())
        {
            let mut dvals = dst.values().to_vec();
            layout
                .merge(&mut dvals[base_arity..], &src.values()[base_arity..])
                .unwrap();
            *dst = Row::new(dvals);
        }
        let merged_final =
            finalize_physical(&merged, base_arity, &g, d.schema()).unwrap();
        let direct = eval_full(&base(), &d, &g, opts()).unwrap();
        assert_eq!(merged_final, direct);
    }

    #[test]
    fn empty_detail_relation() {
        let d = Relation::empty(detail().schema().clone());
        let out = eval_full(&base(), &d, &simple_gmdj(), opts()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0].get(1), &Value::Int(0));
        assert!(out.rows()[0].get(2).is_null());
    }

    #[test]
    fn empty_base_relation() {
        let b = Relation::empty(base().schema().clone());
        let out = eval_full(&b, &detail(), &simple_gmdj(), opts()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema().column_names(), ["g", "cnt", "avg"]);
    }

    #[test]
    fn multi_block_different_thetas() {
        let g = Gmdj::new("t")
            .block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("all_cnt")],
            )
            .block(
                ThetaBuilder::group_by(&["g"])
                    .and(Expr::dcol("v").gt(Expr::lit(8i64)))
                    .build(),
                vec![AggSpec::count("big_cnt"), AggSpec::max("v", "big_max")],
            );
        let out = eval_full(&base(), &detail(), &g, opts()).unwrap();
        assert_eq!(out.rows()[0], row![1i64, 2i64, 2i64, 20i64]);
        assert_eq!(out.rows()[1], row![2i64, 3i64, 1i64, 9i64]);
    }

    #[test]
    fn duplicate_base_tuples_each_get_aggregates() {
        // Definition 1 allows duplicate base tuples; each contributes an
        // output tuple.
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![1i64]],
        )
        .unwrap();
        let out = eval_full(&b, &detail(), &simple_gmdj(), opts()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], out.rows()[1]);
    }

    #[test]
    fn morsel_spans_are_recorded_per_worker() {
        let obs = Obs::recording();
        eval_local_traced(
            &base(),
            &detail(),
            &simple_gmdj(),
            EvalOptions {
                morsel_rows: 2,
                parallelism: 2,
                ..opts()
            },
            &obs,
            7,
        )
        .unwrap();
        let rec = obs.recorder().unwrap();
        let spans = rec.spans();
        let morsels: Vec<_> = spans.iter().filter(|s| s.name == "morsel").collect();
        assert_eq!(morsels.len(), 3, "5 rows / 2-row morsels");
        assert!(morsels
            .iter()
            .all(|s| matches!(s.track, Track::Worker(7, _)) && s.dur_us.is_some()));
        assert_eq!(rec.histograms()["kernel.morsel_us"].count(), 3);
    }
}
