//! Centralized / per-site GMDJ evaluation.
//!
//! Conventional groupwise aggregation does not apply to GMDJs because the
//! ranges `RNG(b, R, θ)` of different base tuples may overlap. The engine
//! therefore evaluates each block `(θᵢ, lᵢ)` by one of two strategies,
//! chosen from the [θ analysis](crate::theta::analyze_theta):
//!
//! * **Hash path** — when θᵢ contains equi-key conjuncts `b.x = r.y`, base
//!   tuples are hash-indexed on their key columns and each detail tuple
//!   probes the index, applying the residual condition to the candidates.
//!   Cost `O(|B| + |R|·candidates)`. This mirrors the efficient centralized
//!   evaluation of [2, 7] cited by the paper.
//! * **Nested loop** — the general fallback, `O(|B|·|R|)`.
//!
//! [`eval_local`] produces *physical* (sub-aggregate) accumulators plus a
//! per-group match flag — exactly what a warehouse site ships to the
//! coordinator; [`eval_full`] additionally finalizes, for single-machine
//! evaluation and as the test oracle.

use crate::agg::AccLayout;
use crate::operator::Gmdj;
use crate::theta::analyze_theta;
use skalla_relation::{BoundExpr, Relation, Result, Row, Schema, Value};
use std::collections::HashMap;

/// Evaluation knobs.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Use the hash fast path when θ has equi-key conjuncts (on by
    /// default; disable for the nested-loop ablation bench).
    pub hash_path: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { hash_path: true }
    }
}

/// The result of evaluating a GMDJ at one site.
#[derive(Debug, Clone)]
pub struct LocalGmdj {
    /// Base columns ⊕ physical accumulator columns, one row per base tuple
    /// (same order as the input base relation).
    pub physical: Relation,
    /// Per base tuple: did any detail tuple at this site match any θᵢ?
    /// (`|RNG(b, Rᵢ, θ₁ ∨ … ∨ θ_m)| > 0` — the distribution-independent
    /// group-reduction test of Proposition 1.)
    pub matched: Vec<bool>,
}

impl LocalGmdj {
    /// The physical rows whose group matched at least one detail tuple —
    /// what a site ships when distribution-independent group reduction is
    /// enabled.
    pub fn reduced(&self) -> Relation {
        let rows = self
            .physical
            .rows()
            .iter()
            .zip(&self.matched)
            .filter(|(_, m)| **m)
            .map(|(r, _)| r.clone())
            .collect();
        Relation::from_shared(self.physical.schema_ref(), rows)
    }
}

struct PreparedBlock {
    /// Base-side positions of equi-key columns (empty ⇒ nested loop).
    base_keys: Vec<usize>,
    /// Detail-side positions of equi-key columns.
    detail_keys: Vec<usize>,
    /// Bound residual (or the full θ for the nested-loop path).
    condition: BoundExpr,
    /// `true` when `condition` is only the residual of an equi split.
    hash: bool,
    /// Bound aggregate inputs (`None` for `COUNT(*)`), with the slot
    /// offset of each aggregate.
    aggs: Vec<(Option<BoundExpr>, usize)>,
}

fn prepare_blocks(
    gmdj: &Gmdj,
    base: &Schema,
    detail: &Schema,
    opts: EvalOptions,
) -> Result<(AccLayout, Vec<PreparedBlock>)> {
    let layout = gmdj.layout();
    // Map each (block, agg) to its slot offset.
    let mut offsets_per_block: Vec<Vec<usize>> = vec![Vec::new(); gmdj.blocks.len()];
    for (bi, agg, off) in layout.entries() {
        let _ = agg;
        offsets_per_block[*bi].push(*off);
    }
    let mut blocks = Vec::with_capacity(gmdj.blocks.len());
    for (bi, block) in gmdj.blocks.iter().enumerate() {
        let analysis = analyze_theta(&block.theta);
        let use_hash = opts.hash_path && !analysis.equi.is_empty();
        let (base_keys, detail_keys, condition) = if use_hash {
            let mut bk = Vec::with_capacity(analysis.equi.len());
            let mut dk = Vec::with_capacity(analysis.equi.len());
            for (b, d) in &analysis.equi {
                bk.push(base.index_of(b)?);
                dk.push(detail.index_of(d)?);
            }
            (bk, dk, analysis.residual.bind(base, Some(detail))?)
        } else {
            (
                Vec::new(),
                Vec::new(),
                block.theta.bind(base, Some(detail))?,
            )
        };
        let mut aggs = Vec::with_capacity(block.aggs.len());
        for (a, off) in block.aggs.iter().zip(&offsets_per_block[bi]) {
            let bound = match &a.input {
                Some(e) => Some(e.bind(base, Some(detail))?),
                None => None,
            };
            aggs.push((bound, *off));
        }
        blocks.push(PreparedBlock {
            base_keys,
            detail_keys,
            condition,
            hash: use_hash,
            aggs,
        });
    }
    Ok((layout, blocks))
}

/// Evaluate a GMDJ at one site: sub-aggregates only.
pub fn eval_local(
    base: &Relation,
    detail: &Relation,
    gmdj: &Gmdj,
    opts: EvalOptions,
) -> Result<LocalGmdj> {
    gmdj.validate(base.schema(), detail.schema())?;
    let (layout, blocks) = prepare_blocks(gmdj, base.schema(), detail.schema(), opts)?;

    let mut accs: Vec<Vec<Value>> = (0..base.len()).map(|_| layout.init()).collect();
    let mut matched = vec![false; base.len()];

    for (bi, pb) in blocks.iter().enumerate() {
        let block = &gmdj.blocks[bi];
        if pb.hash {
            // Hash path: index base tuples on their equi-key columns.
            let mut index: HashMap<Vec<Value>, Vec<usize>> =
                HashMap::with_capacity(base.len());
            for (pos, row) in base.iter().enumerate() {
                index.entry(row.key(&pb.base_keys)).or_default().push(pos);
            }
            let is_trivial_residual =
                matches!(pb.condition, BoundExpr::Lit(ref v) if v.is_truthy());
            for r in detail {
                let Some(cands) = index.get(&r.key(&pb.detail_keys)) else {
                    continue;
                };
                for &pos in cands {
                    let b = &base.rows()[pos];
                    if !is_trivial_residual && !pb.condition.eval(b, r)?.is_truthy() {
                        continue;
                    }
                    matched[pos] = true;
                    update_aggs(block, pb, &mut accs[pos], b, r)?;
                }
            }
        } else {
            // Nested loop: evaluate θ for every (b, r) pair.
            for (pos, b) in base.iter().enumerate() {
                let acc = &mut accs[pos];
                for r in detail {
                    if pb.condition.eval(b, r)?.is_truthy() {
                        matched[pos] = true;
                        update_aggs(block, pb, acc, b, r)?;
                    }
                }
            }
        }
    }

    let phys_schema = gmdj.physical_schema(base.schema(), detail.schema())?;
    let rows: Vec<Row> = base
        .iter()
        .zip(accs)
        .map(|(b, acc)| b.extend(&acc))
        .collect();
    Ok(LocalGmdj {
        physical: Relation::new(phys_schema, rows)?,
        matched,
    })
}

fn update_aggs(
    block: &crate::operator::GmdjBlock,
    pb: &PreparedBlock,
    acc: &mut [Value],
    b: &Row,
    r: &Row,
) -> Result<()> {
    for (a, (input, off)) in block.aggs.iter().zip(&pb.aggs) {
        let w = a.acc_width();
        match input {
            Some(e) => {
                let v = e.eval(b, r)?;
                a.update(&mut acc[*off..off + w], Some(&v))?;
            }
            None => a.update(&mut acc[*off..off + w], None)?,
        }
    }
    Ok(())
}

/// Finalize a physical (accumulator) relation into the logical output.
///
/// `base_arity` is the number of leading base columns; `detail` supplies
/// types for the logical aggregate fields.
pub fn finalize_physical(
    physical: &Relation,
    base_arity: usize,
    gmdj: &Gmdj,
    detail: &Schema,
) -> Result<Relation> {
    let layout = gmdj.layout();
    let base_schema = physical
        .schema()
        .project(&(0..base_arity).collect::<Vec<_>>())?;
    let out_schema = gmdj.output_schema(&base_schema, detail)?;
    let mut rows = Vec::with_capacity(physical.len());
    for row in physical {
        let (base_part, acc_part) = row.values().split_at(base_arity);
        let logical = layout.finalize(acc_part)?;
        let mut vs = Vec::with_capacity(base_arity + logical.len());
        vs.extend_from_slice(base_part);
        vs.extend(logical);
        rows.push(Row::new(vs));
    }
    Relation::new(out_schema, rows)
}

/// Evaluate a GMDJ to its logical output on one machine (the oracle and
/// the single-site fast path).
pub fn eval_full(
    base: &Relation,
    detail: &Relation,
    gmdj: &Gmdj,
    opts: EvalOptions,
) -> Result<Relation> {
    let local = eval_local(base, detail, gmdj, opts)?;
    finalize_physical(&local.physical, base.schema().len(), gmdj, detail.schema())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::theta::ThetaBuilder;
    use skalla_relation::{row, DataType, Expr};

    fn detail() -> Relation {
        Relation::new(
            Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
            vec![
                row![1i64, 10i64],
                row![1i64, 20i64],
                row![2i64, 5i64],
                row![2i64, 7i64],
                row![2i64, 9i64],
            ],
        )
        .unwrap()
    }

    fn base() -> Relation {
        Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![2i64], row![3i64]],
        )
        .unwrap()
    }

    fn simple_gmdj() -> Gmdj {
        Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("cnt"), AggSpec::avg("v", "avg")],
        )
    }

    #[test]
    fn grouped_count_and_avg() {
        let out = eval_full(&base(), &detail(), &simple_gmdj(), EvalOptions::default()).unwrap();
        assert_eq!(out.schema().column_names(), ["g", "cnt", "avg"]);
        assert_eq!(out.rows()[0], row![1i64, 2i64, 15.0]);
        assert_eq!(out.rows()[1], row![2i64, 3i64, 7.0]);
        // Group 3 has no detail tuples: COUNT 0, AVG NULL.
        assert_eq!(
            out.rows()[2],
            Row::new(vec![Value::Int(3), Value::Int(0), Value::Null])
        );
    }

    #[test]
    fn hash_and_nested_loop_agree() {
        let hash = eval_full(&base(), &detail(), &simple_gmdj(), EvalOptions { hash_path: true })
            .unwrap();
        let nl = eval_full(&base(), &detail(), &simple_gmdj(), EvalOptions { hash_path: false })
            .unwrap();
        assert_eq!(hash, nl);
    }

    #[test]
    fn overlapping_ranges_nested_loop() {
        // θ: r.v >= b.lo — ranges overlap across base tuples (not a group-by).
        let base = Relation::new(
            Schema::of(&[("lo", DataType::Int)]),
            vec![row![0i64], row![8i64]],
        )
        .unwrap();
        let g = Gmdj::new("t").block(
            Expr::dcol("v").ge(Expr::bcol("lo")),
            vec![AggSpec::count("cnt")],
        );
        let out = eval_full(&base, &detail(), &g, EvalOptions::default()).unwrap();
        // lo=0 matches all 5; lo=8 matches v ∈ {10, 20, 9}.
        assert_eq!(out.rows()[0], row![0i64, 5i64]);
        assert_eq!(out.rows()[1], row![8i64, 3i64]);
    }

    #[test]
    fn correlated_second_block_uses_first_outputs() {
        // Two-step: first compute avg per group, then count tuples above it
        // (paper Example 1 collapsed to one partition).
        let b1 = eval_full(&base(), &detail(), &simple_gmdj(), EvalOptions::default()).unwrap();
        let g2 = Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").ge(Expr::bcol("avg")))
                .build(),
            vec![AggSpec::count("cnt2")],
        );
        let out = eval_full(&b1, &detail(), &g2, EvalOptions::default()).unwrap();
        // Group 1: avg 15, v ∈ {20} above-or-equal → wait, v ∈ {10, 20}; 20 >= 15 → 1.
        assert_eq!(out.rows()[0], row![1i64, 2i64, 15.0, 1i64]);
        // Group 2: avg 7, v ∈ {7, 9} ≥ 7 → 2.
        assert_eq!(out.rows()[1], row![2i64, 3i64, 7.0, 2i64]);
        // Group 3: no tuples.
        assert_eq!(out.rows()[2].get(3), &Value::Int(0));
    }

    #[test]
    fn local_eval_matched_flags_and_reduction() {
        let local = eval_local(&base(), &detail(), &simple_gmdj(), EvalOptions::default())
            .unwrap();
        assert_eq!(local.matched, vec![true, true, false]);
        let reduced = local.reduced();
        assert_eq!(reduced.len(), 2);
        // Physical schema carries the AVG decomposition.
        assert_eq!(
            local.physical.schema().column_names(),
            ["g", "cnt", "avg__sum", "avg__cnt"]
        );
    }

    #[test]
    fn sub_super_aggregation_matches_direct() {
        // Split detail into two partitions, evaluate locally, merge, and
        // compare against direct evaluation (Theorem 1).
        let d = detail();
        let p1 = Relation::from_shared(d.schema_ref(), d.rows()[..2].to_vec());
        let p2 = Relation::from_shared(d.schema_ref(), d.rows()[2..].to_vec());
        let g = simple_gmdj();
        let l1 = eval_local(&base(), &p1, &g, EvalOptions::default()).unwrap();
        let l2 = eval_local(&base(), &p2, &g, EvalOptions::default()).unwrap();

        let layout = g.layout();
        let base_arity = base().schema().len();
        let mut merged = l1.physical.clone();
        for (dst, src) in merged
            .rows_mut()
            .iter_mut()
            .zip(l2.physical.rows())
        {
            let mut dvals = dst.values().to_vec();
            layout
                .merge(&mut dvals[base_arity..], &src.values()[base_arity..])
                .unwrap();
            *dst = Row::new(dvals);
        }
        let merged_final =
            finalize_physical(&merged, base_arity, &g, d.schema()).unwrap();
        let direct = eval_full(&base(), &d, &g, EvalOptions::default()).unwrap();
        assert_eq!(merged_final, direct);
    }

    #[test]
    fn empty_detail_relation() {
        let d = Relation::empty(detail().schema().clone());
        let out = eval_full(&base(), &d, &simple_gmdj(), EvalOptions::default()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0].get(1), &Value::Int(0));
        assert!(out.rows()[0].get(2).is_null());
    }

    #[test]
    fn empty_base_relation() {
        let b = Relation::empty(base().schema().clone());
        let out = eval_full(&b, &detail(), &simple_gmdj(), EvalOptions::default()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema().column_names(), ["g", "cnt", "avg"]);
    }

    #[test]
    fn multi_block_different_thetas() {
        let g = Gmdj::new("t")
            .block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("all_cnt")],
            )
            .block(
                ThetaBuilder::group_by(&["g"])
                    .and(Expr::dcol("v").gt(Expr::lit(8i64)))
                    .build(),
                vec![AggSpec::count("big_cnt"), AggSpec::max("v", "big_max")],
            );
        let out = eval_full(&base(), &detail(), &g, EvalOptions::default()).unwrap();
        assert_eq!(out.rows()[0], row![1i64, 2i64, 2i64, 20i64]);
        assert_eq!(out.rows()[1], row![2i64, 3i64, 1i64, 9i64]);
    }

    #[test]
    fn duplicate_base_tuples_each_get_aggregates() {
        // Definition 1 allows duplicate base tuples; each contributes an
        // output tuple.
        let b = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![1i64]],
        )
        .unwrap();
        let out = eval_full(&b, &detail(), &simple_gmdj(), EvalOptions::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], out.rows()[1]);
    }
}
