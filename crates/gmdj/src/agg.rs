//! Aggregate functions with sub-/super-aggregate decomposition.
//!
//! Following Gray et al. (the data cube paper), every aggregate the paper
//! uses is *distributive* (COUNT, SUM, MIN, MAX) or *algebraic* (AVG): a
//! site can compute a fixed-width **sub-aggregate** over its partition, the
//! coordinator **merges** sub-aggregates into a **super-aggregate**, and a
//! final **finalize** step produces the logical value. This decomposition is
//! what lets Skalla ship only aggregate structures (Theorem 1).
//!
//! Each [`AggSpec`] lowers to one or two *physical accumulator columns*
//! (AVG → SUM + COUNT). Shipped relations and the coordinator's working
//! base-result structure carry physical columns; finalization happens once,
//! when a GMDJ's rounds complete.

use skalla_relation::expr::eval_arith;
use skalla_relation::{ArithOp, DataType, Error, Expr, Field, Result, Schema, Side, Value};
use std::fmt;

/// The aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` (no input) or `COUNT(expr)` (counts non-null inputs).
    Count,
    /// `SUM(expr)`; `NULL` over an empty range.
    Sum,
    /// `MIN(expr)`; works on strings too.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`; algebraic — decomposes into SUM and COUNT.
    Avg,
    /// Population variance `VAR(expr)`; algebraic — decomposes into
    /// SUM, SUM of squares and COUNT.
    Var,
    /// Population standard deviation `STDDEV(expr)` (√VAR).
    StdDev,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
            AggFunc::Var => "VAR",
            AggFunc::StdDev => "STDDEV",
        };
        write!(f, "{s}")
    }
}

/// One aggregate to compute in a GMDJ block: a function, an optional
/// detail-side input expression, and the logical output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression over the detail tuple (`None` only for `COUNT(*)`).
    pub input: Option<Expr>,
    /// Logical output column name (must be unique within the query).
    pub name: String,
}

impl AggSpec {
    /// `COUNT(*) → name`.
    pub fn count(name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            input: None,
            name: name.into(),
        }
    }

    /// `SUM(column) → name`.
    pub fn sum(column: impl Into<String>, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Sum,
            input: Some(Expr::dcol(column)),
            name: name.into(),
        }
    }

    /// `AVG(column) → name`.
    pub fn avg(column: impl Into<String>, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Avg,
            input: Some(Expr::dcol(column)),
            name: name.into(),
        }
    }

    /// `MIN(column) → name`.
    pub fn min(column: impl Into<String>, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Min,
            input: Some(Expr::dcol(column)),
            name: name.into(),
        }
    }

    /// `MAX(column) → name`.
    pub fn max(column: impl Into<String>, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Max,
            input: Some(Expr::dcol(column)),
            name: name.into(),
        }
    }

    /// `VAR(column) → name` (population variance).
    pub fn var(column: impl Into<String>, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Var,
            input: Some(Expr::dcol(column)),
            name: name.into(),
        }
    }

    /// `STDDEV(column) → name` (population standard deviation).
    pub fn stddev(column: impl Into<String>, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::StdDev,
            input: Some(Expr::dcol(column)),
            name: name.into(),
        }
    }

    /// An aggregate over an arbitrary detail-side expression, e.g.
    /// `SUM(num_bytes * 8)`.
    pub fn over_expr(func: AggFunc, input: Expr, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func,
            input: Some(input),
            name: name.into(),
        }
    }

    /// Validate this spec against the detail schema: the input must be a
    /// detail-only expression of an aggregatable type.
    pub fn validate(&self, detail: &Schema) -> Result<()> {
        match (&self.func, &self.input) {
            (AggFunc::Count, _) => {}
            (_, None) => {
                return Err(Error::Plan(format!(
                    "{} aggregate {:?} requires an input expression",
                    self.func, self.name
                )))
            }
            (_, Some(e)) => {
                if e.references_side(Side::Base) {
                    return Err(Error::Plan(format!(
                        "aggregate {:?} input references the base side",
                        self.name
                    )));
                }
                let empty = Schema::of(&[]);
                let ty = e.infer_type(&empty, Some(detail))?;
                if matches!(
                    self.func,
                    AggFunc::Sum | AggFunc::Avg | AggFunc::Var | AggFunc::StdDev
                ) && ty == DataType::Str
                {
                    return Err(Error::TypeError(format!(
                        "{} over a string expression ({:?})",
                        self.func, self.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// The logical (finalized) output field.
    pub fn logical_field(&self, detail: &Schema) -> Result<Field> {
        let ty = match self.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg | AggFunc::Var | AggFunc::StdDev => DataType::Double,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                let e = self.input.as_ref().ok_or_else(|| {
                    Error::Plan(format!("{} without input", self.func))
                })?;
                let empty = Schema::of(&[]);
                e.infer_type(&empty, Some(detail))?
            }
        };
        Ok(Field::new(self.name.clone(), ty))
    }

    /// Number of physical accumulator slots (2 for AVG, else 1).
    pub fn acc_width(&self) -> usize {
        match self.func {
            AggFunc::Avg => 2,
            AggFunc::Var | AggFunc::StdDev => 3,
            _ => 1,
        }
    }

    /// The physical accumulator fields carried in shipped relations.
    pub fn physical_fields(&self, detail: &Schema) -> Result<Vec<Field>> {
        match self.func {
            AggFunc::Avg => {
                let e = self.input.as_ref().ok_or_else(|| {
                    Error::Plan("AVG without input".to_string())
                })?;
                let empty = Schema::of(&[]);
                let ty = e.infer_type(&empty, Some(detail))?;
                Ok(vec![
                    Field::new(format!("{}__sum", self.name), ty),
                    Field::new(format!("{}__cnt", self.name), DataType::Int),
                ])
            }
            AggFunc::Var | AggFunc::StdDev => Ok(vec![
                Field::new(format!("{}__sum", self.name), DataType::Double),
                Field::new(format!("{}__sumsq", self.name), DataType::Double),
                Field::new(format!("{}__cnt", self.name), DataType::Int),
            ]),
            _ => Ok(vec![self.logical_field(detail)?]),
        }
    }

    /// Initial accumulator values.
    pub fn init_acc(&self, out: &mut Vec<Value>) {
        match self.func {
            AggFunc::Count => out.push(Value::Int(0)),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => out.push(Value::Null),
            AggFunc::Avg => {
                out.push(Value::Null);
                out.push(Value::Int(0));
            }
            AggFunc::Var | AggFunc::StdDev => {
                out.push(Value::Double(0.0));
                out.push(Value::Double(0.0));
                out.push(Value::Int(0));
            }
        }
    }

    /// Fold one matching detail tuple's input value into the accumulator.
    /// `input` is `None` for `COUNT(*)`.
    pub fn update(&self, acc: &mut [Value], input: Option<&Value>) -> Result<()> {
        match self.func {
            AggFunc::Count => {
                // COUNT(expr) skips NULL inputs; COUNT(*) counts everything.
                if let Some(v) = input {
                    if v.is_null() {
                        return Ok(());
                    }
                }
                bump_count(&mut acc[0]);
            }
            AggFunc::Sum => {
                let v = input.expect("SUM has an input");
                if !v.is_null() {
                    add_into(&mut acc[0], v)?;
                }
            }
            AggFunc::Min => {
                let v = input.expect("MIN has an input");
                if !v.is_null() && (acc[0].is_null() || *v < acc[0]) {
                    acc[0] = v.clone();
                }
            }
            AggFunc::Max => {
                let v = input.expect("MAX has an input");
                if !v.is_null() && (acc[0].is_null() || *v > acc[0]) {
                    acc[0] = v.clone();
                }
            }
            AggFunc::Avg => {
                let v = input.expect("AVG has an input");
                if !v.is_null() {
                    add_into(&mut acc[0], v)?;
                    bump_count(&mut acc[1]);
                }
            }
            AggFunc::Var | AggFunc::StdDev => {
                let v = input.expect("VAR/STDDEV has an input");
                if let Some(x) = v.as_f64() {
                    add_f64(&mut acc[0], x);
                    add_f64(&mut acc[1], x * x);
                    bump_count(&mut acc[2]);
                } else if !v.is_null() {
                    return Err(Error::TypeError(format!(
                        "non-numeric input {v} for {}",
                        self.func
                    )));
                }
            }
        }
        Ok(())
    }

    /// Merge another sub-aggregate into this accumulator (the coordinator's
    /// super-aggregate step).
    pub fn merge(&self, acc: &mut [Value], other: &[Value]) -> Result<()> {
        match self.func {
            AggFunc::Count => add_counts(&mut acc[0], &other[0]),
            AggFunc::Sum => {
                if !other[0].is_null() {
                    add_into(&mut acc[0], &other[0])?;
                }
                Ok(())
            }
            AggFunc::Min => {
                if !other[0].is_null() && (acc[0].is_null() || other[0] < acc[0]) {
                    acc[0] = other[0].clone();
                }
                Ok(())
            }
            AggFunc::Max => {
                if !other[0].is_null() && (acc[0].is_null() || other[0] > acc[0]) {
                    acc[0] = other[0].clone();
                }
                Ok(())
            }
            AggFunc::Avg => {
                if !other[0].is_null() {
                    add_into(&mut acc[0], &other[0])?;
                }
                add_counts(&mut acc[1], &other[1])
            }
            AggFunc::Var | AggFunc::StdDev => {
                add_f64(&mut acc[0], other[0].as_f64().unwrap_or(0.0));
                add_f64(&mut acc[1], other[1].as_f64().unwrap_or(0.0));
                add_counts(&mut acc[2], &other[2])
            }
        }
    }

    /// Produce the logical value from a (fully merged) accumulator.
    pub fn finalize(&self, acc: &[Value]) -> Result<Value> {
        match self.func {
            AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max => Ok(acc[0].clone()),
            AggFunc::Avg => {
                let cnt = acc[1].as_i64().unwrap_or(0);
                if cnt == 0 {
                    return Ok(Value::Null);
                }
                let sum = acc[0].as_f64().ok_or_else(|| {
                    Error::TypeError(format!("AVG sum is non-numeric: {}", acc[0]))
                })?;
                Ok(Value::Double(sum / cnt as f64))
            }
            AggFunc::Var | AggFunc::StdDev => {
                let cnt = acc[2].as_i64().unwrap_or(0);
                if cnt == 0 {
                    return Ok(Value::Null);
                }
                let n = cnt as f64;
                let sum = acc[0].as_f64().unwrap_or(0.0);
                let sumsq = acc[1].as_f64().unwrap_or(0.0);
                // E[x²] − E[x]², clamped against rounding noise.
                let var = (sumsq / n - (sum / n) * (sum / n)).max(0.0);
                Ok(Value::Double(if self.func == AggFunc::StdDev {
                    var.sqrt()
                } else {
                    var
                }))
            }
        }
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            Some(e) => write!(f, "{}({e}) -> {}", self.func, self.name),
            None => write!(f, "{}(*) -> {}", self.func, self.name),
        }
    }
}

fn bump_count(acc: &mut Value) {
    if let Value::Int(n) = acc {
        *n += 1;
    } else {
        *acc = Value::Int(1);
    }
}

fn add_counts(acc: &mut Value, other: &Value) -> Result<()> {
    let a = acc.as_i64().unwrap_or(0);
    let b = other
        .as_i64()
        .ok_or_else(|| Error::TypeError(format!("count merge with non-int {other}")))?;
    *acc = Value::Int(a + b);
    Ok(())
}

fn add_f64(acc: &mut Value, x: f64) {
    let cur = acc.as_f64().unwrap_or(0.0);
    *acc = Value::Double(cur + x);
}

fn add_into(acc: &mut Value, v: &Value) -> Result<()> {
    if acc.is_null() {
        *acc = v.clone();
    } else {
        *acc = eval_arith(ArithOp::Add, acc, v)?;
    }
    Ok(())
}

/// The accumulator layout of a whole GMDJ: per-aggregate slot offsets.
///
/// Acc vectors are stored contiguously per base row, across all blocks.
#[derive(Debug, Clone)]
pub struct AccLayout {
    /// `(block index, agg)` pairs in output order with slot offsets.
    entries: Vec<(usize, AggSpec, usize)>,
    width: usize,
}

impl AccLayout {
    /// Compute the layout for blocks of aggregates.
    pub fn new(blocks: &[Vec<AggSpec>]) -> AccLayout {
        let mut entries = Vec::new();
        let mut off = 0;
        for (bi, aggs) in blocks.iter().enumerate() {
            for a in aggs {
                entries.push((bi, a.clone(), off));
                off += a.acc_width();
            }
        }
        AccLayout {
            entries,
            width: off,
        }
    }

    /// Total number of physical slots per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// All `(block, agg, offset)` entries, in output order.
    pub fn entries(&self) -> &[(usize, AggSpec, usize)] {
        &self.entries
    }

    /// A fresh accumulator vector.
    pub fn init(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.width);
        self.init_into(&mut out);
        out
    }

    /// Reset `out` to the initial accumulator values in place, reusing
    /// its allocation (the serial streaming path of the kernel driver).
    pub fn init_into(&self, out: &mut Vec<Value>) {
        out.clear();
        for (_, a, _) in &self.entries {
            a.init_acc(out);
        }
    }

    /// Merge `src` physical slots into `dst`.
    pub fn merge(&self, dst: &mut [Value], src: &[Value]) -> Result<()> {
        for (_, a, off) in &self.entries {
            let w = a.acc_width();
            a.merge(&mut dst[*off..off + w], &src[*off..off + w])?;
        }
        Ok(())
    }

    /// Finalize physical slots into logical values (output order).
    pub fn finalize(&self, acc: &[Value]) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(self.entries.len());
        for (_, a, off) in &self.entries {
            let w = a.acc_width();
            out.push(a.finalize(&acc[*off..off + w])?);
        }
        Ok(out)
    }

    /// Physical fields in slot order.
    pub fn physical_fields(&self, detail: &Schema) -> Result<Vec<Field>> {
        let mut out = Vec::with_capacity(self.width);
        for (_, a, _) in &self.entries {
            out.extend(a.physical_fields(detail)?);
        }
        Ok(out)
    }

    /// Logical fields in output order.
    pub fn logical_fields(&self, detail: &Schema) -> Result<Vec<Field>> {
        self.entries
            .iter()
            .map(|(_, a, _)| a.logical_field(detail))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detail_schema() -> Schema {
        Schema::of(&[("v", DataType::Int), ("x", DataType::Double), ("s", DataType::Str)])
    }

    #[test]
    fn count_update_and_merge() {
        let c = AggSpec::count("c");
        let mut acc = vec![Value::Int(0)];
        c.update(&mut acc, None).unwrap();
        c.update(&mut acc, None).unwrap();
        assert_eq!(acc[0], Value::Int(2));
        let other = vec![Value::Int(5)];
        c.merge(&mut acc, &other).unwrap();
        assert_eq!(c.finalize(&acc).unwrap(), Value::Int(7));
    }

    #[test]
    fn count_expr_skips_nulls() {
        let c = AggSpec::over_expr(AggFunc::Count, Expr::dcol("v"), "c");
        let mut acc = vec![Value::Int(0)];
        c.update(&mut acc, Some(&Value::Null)).unwrap();
        c.update(&mut acc, Some(&Value::Int(3))).unwrap();
        assert_eq!(acc[0], Value::Int(1));
    }

    #[test]
    fn sum_stays_int_for_int_inputs() {
        let s = AggSpec::sum("v", "s");
        let mut acc = vec![Value::Null];
        s.update(&mut acc, Some(&Value::Int(3))).unwrap();
        s.update(&mut acc, Some(&Value::Int(4))).unwrap();
        assert_eq!(s.finalize(&acc).unwrap(), Value::Int(7));
    }

    #[test]
    fn sum_empty_is_null() {
        let s = AggSpec::sum("v", "s");
        let acc = vec![Value::Null];
        assert_eq!(s.finalize(&acc).unwrap(), Value::Null);
    }

    #[test]
    fn min_max_work_on_strings() {
        let mn = AggSpec::min("s", "mn");
        let mx = AggSpec::max("s", "mx");
        let mut a1 = vec![Value::Null];
        let mut a2 = vec![Value::Null];
        for v in ["pear", "apple", "plum"] {
            mn.update(&mut a1, Some(&Value::str(v))).unwrap();
            mx.update(&mut a2, Some(&Value::str(v))).unwrap();
        }
        assert_eq!(mn.finalize(&a1).unwrap(), Value::str("apple"));
        assert_eq!(mx.finalize(&a2).unwrap(), Value::str("plum"));
    }

    #[test]
    fn avg_decomposes_into_sum_and_count() {
        let a = AggSpec::avg("v", "a");
        assert_eq!(a.acc_width(), 2);
        let fields = a.physical_fields(&detail_schema()).unwrap();
        assert_eq!(fields[0].name(), "a__sum");
        assert_eq!(fields[1].name(), "a__cnt");

        // Two "sites".
        let mut s1 = vec![Value::Null, Value::Int(0)];
        let mut s2 = vec![Value::Null, Value::Int(0)];
        for v in [1i64, 2, 3] {
            a.update(&mut s1, Some(&Value::Int(v))).unwrap();
        }
        a.update(&mut s2, Some(&Value::Int(10))).unwrap();
        // Coordinator merge: AVG over {1,2,3,10} = 4.
        a.merge(&mut s1, &s2).unwrap();
        assert_eq!(a.finalize(&s1).unwrap(), Value::Double(4.0));
    }

    #[test]
    fn avg_of_empty_is_null() {
        let a = AggSpec::avg("v", "a");
        let acc = vec![Value::Null, Value::Int(0)];
        assert_eq!(a.finalize(&acc).unwrap(), Value::Null);
    }

    #[test]
    fn var_and_stddev_merge_across_sites() {
        let v = AggSpec::var("v", "var");
        let s = AggSpec::stddev("v", "sd");
        assert_eq!(v.acc_width(), 3);
        let fields = v.physical_fields(&detail_schema()).unwrap();
        assert_eq!(
            fields.iter().map(|f| f.name().to_string()).collect::<Vec<_>>(),
            ["var__sum", "var__sumsq", "var__cnt"]
        );

        // Values {2, 4, 4, 4, 5, 5, 7, 9}: var = 4, stddev = 2. Split
        // across two "sites" and merge.
        let data = [2i64, 4, 4, 4, 5, 5, 7, 9];
        let mut a1 = vec![Value::Double(0.0), Value::Double(0.0), Value::Int(0)];
        let mut a2 = a1.clone();
        let mut b1 = a1.clone();
        let mut b2 = a1.clone();
        for (i, x) in data.iter().enumerate() {
            let (va, sa) = if i < 3 { (&mut a1, &mut b1) } else { (&mut a2, &mut b2) };
            v.update(va, Some(&Value::Int(*x))).unwrap();
            s.update(sa, Some(&Value::Int(*x))).unwrap();
        }
        v.merge(&mut a1, &a2).unwrap();
        s.merge(&mut b1, &b2).unwrap();
        assert_eq!(v.finalize(&a1).unwrap(), Value::Double(4.0));
        assert_eq!(s.finalize(&b1).unwrap(), Value::Double(2.0));
    }

    #[test]
    fn var_of_empty_is_null_and_strings_rejected() {
        let v = AggSpec::var("v", "var");
        let acc = vec![Value::Double(0.0), Value::Double(0.0), Value::Int(0)];
        assert_eq!(v.finalize(&acc).unwrap(), Value::Null);
        assert!(AggSpec::var("s", "x").validate(&detail_schema()).is_err());
        assert!(AggSpec::stddev("s", "x").validate(&detail_schema()).is_err());
        let mut acc = vec![Value::Double(0.0), Value::Double(0.0), Value::Int(0)];
        assert!(v.update(&mut acc, Some(&Value::str("x"))).is_err());
        // NULL inputs are skipped.
        v.update(&mut acc, Some(&Value::Null)).unwrap();
        assert_eq!(acc[2], Value::Int(0));
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let d = detail_schema();
        // SUM over strings.
        assert!(AggSpec::sum("s", "x").validate(&d).is_err());
        // Base-side reference in an input.
        let bad = AggSpec::over_expr(AggFunc::Sum, Expr::bcol("v"), "x");
        assert!(bad.validate(&d).is_err());
        // Missing input.
        let bad = AggSpec {
            func: AggFunc::Sum,
            input: None,
            name: "x".into(),
        };
        assert!(bad.validate(&d).is_err());
        // Unknown column.
        assert!(AggSpec::sum("zzz", "x").validate(&d).is_err());
        // Good ones.
        assert!(AggSpec::count("c").validate(&d).is_ok());
        assert!(AggSpec::min("s", "m").validate(&d).is_ok());
        assert!(AggSpec::over_expr(AggFunc::Sum, Expr::dcol("v").mul(Expr::lit(8i64)), "bits")
            .validate(&d)
            .is_ok());
    }

    #[test]
    fn layout_offsets_and_round_trip() {
        let blocks = vec![
            vec![AggSpec::count("c1"), AggSpec::avg("v", "a1")],
            vec![AggSpec::sum("v", "s2")],
        ];
        let layout = AccLayout::new(&blocks);
        assert_eq!(layout.width(), 4);
        let mut acc = layout.init();
        assert_eq!(acc.len(), 4);

        // Simulate: block 0 sees v=2 and v=4; block 1 sees v=10.
        let entries = layout.entries().to_vec();
        for (bi, a, off) in &entries {
            let w = a.acc_width();
            let slice = &mut acc[*off..off + w];
            match (bi, a.name.as_str()) {
                (0, "c1") => {
                    a.update(slice, None).unwrap();
                    a.update(slice, None).unwrap();
                }
                (0, "a1") => {
                    a.update(slice, Some(&Value::Int(2))).unwrap();
                    a.update(slice, Some(&Value::Int(4))).unwrap();
                }
                (1, "s2") => {
                    a.update(slice, Some(&Value::Int(10))).unwrap();
                }
                _ => unreachable!(),
            }
        }
        let logical = layout.finalize(&acc).unwrap();
        assert_eq!(
            logical,
            vec![Value::Int(2), Value::Double(3.0), Value::Int(10)]
        );

        // Merging a fresh accumulator is the identity.
        let fresh = layout.init();
        let mut merged = acc.clone();
        layout.merge(&mut merged, &fresh).unwrap();
        assert_eq!(merged, acc);
    }

    #[test]
    fn physical_and_logical_fields() {
        let blocks = vec![vec![AggSpec::count("c"), AggSpec::avg("x", "a")]];
        let layout = AccLayout::new(&blocks);
        let d = detail_schema();
        let phys = layout.physical_fields(&d).unwrap();
        assert_eq!(
            phys.iter().map(|f| f.name().to_string()).collect::<Vec<_>>(),
            ["c", "a__sum", "a__cnt"]
        );
        let logical = layout.logical_fields(&d).unwrap();
        assert_eq!(logical[1].name(), "a");
        assert_eq!(logical[1].data_type(), DataType::Double);
    }
}
