//! Binary codec for GMDJ algebra objects.
//!
//! Extends the `skalla-relation` codec to aggregate specs, operators and
//! complex GMDJ expressions, so distributed plans can travel in-band over
//! the accounted transport instead of being shared out-of-band.

use crate::agg::{AggFunc, AggSpec};
use crate::chain::{BaseQuery, GmdjExpr};
use crate::operator::{Gmdj, GmdjBlock};
use skalla_relation::codec::{Decoder, Encoder};
use skalla_relation::{Error, Result};

fn agg_func_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
        AggFunc::Var => 5,
        AggFunc::StdDev => 6,
    }
}

fn agg_func_from(tag: u8) -> Result<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        5 => AggFunc::Var,
        6 => AggFunc::StdDev,
        t => return Err(Error::Codec(format!("bad aggregate function tag {t}"))),
    })
}

/// Write an aggregate spec.
pub fn put_agg_spec(enc: &mut Encoder, a: &AggSpec) {
    enc.put_u8(agg_func_tag(a.func));
    match &a.input {
        Some(e) => {
            enc.put_u8(1);
            enc.put_expr(e);
        }
        None => enc.put_u8(0),
    }
    enc.put_str(&a.name);
}

/// Read an aggregate spec.
pub fn get_agg_spec(dec: &mut Decoder<'_>) -> Result<AggSpec> {
    let func = agg_func_from(dec.get_u8()?)?;
    let input = match dec.get_u8()? {
        0 => None,
        1 => Some(dec.get_expr()?),
        t => return Err(Error::Codec(format!("bad input flag {t}"))),
    };
    Ok(AggSpec {
        func,
        input,
        name: dec.get_str()?,
    })
}

/// Write a GMDJ operator.
pub fn put_gmdj(enc: &mut Encoder, op: &Gmdj) {
    enc.put_str(&op.detail);
    enc.put_u32(op.blocks.len() as u32);
    for b in &op.blocks {
        enc.put_expr(&b.theta);
        enc.put_u32(b.aggs.len() as u32);
        for a in &b.aggs {
            put_agg_spec(enc, a);
        }
    }
}

/// Read a GMDJ operator.
pub fn get_gmdj(dec: &mut Decoder<'_>) -> Result<Gmdj> {
    let detail = dec.get_str()?;
    let n_blocks = dec.get_u32()? as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let theta = dec.get_expr()?;
        let n_aggs = dec.get_u32()? as usize;
        let mut aggs = Vec::with_capacity(n_aggs);
        for _ in 0..n_aggs {
            aggs.push(get_agg_spec(dec)?);
        }
        blocks.push(GmdjBlock { theta, aggs });
    }
    Ok(Gmdj { detail, blocks })
}

/// Write a base query.
pub fn put_base_query(enc: &mut Encoder, b: &BaseQuery) {
    match b {
        BaseQuery::DistinctProject { table, columns } => {
            enc.put_u8(0);
            enc.put_str(table);
            enc.put_u32(columns.len() as u32);
            for c in columns {
                enc.put_str(c);
            }
        }
        BaseQuery::Literal(rel) => {
            enc.put_u8(1);
            enc.put_relation(rel);
        }
    }
}

/// Read a base query.
pub fn get_base_query(dec: &mut Decoder<'_>) -> Result<BaseQuery> {
    Ok(match dec.get_u8()? {
        0 => {
            let table = dec.get_str()?;
            let n = dec.get_u32()? as usize;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(dec.get_str()?);
            }
            BaseQuery::DistinctProject { table, columns }
        }
        1 => BaseQuery::Literal(dec.get_relation()?),
        t => return Err(Error::Codec(format!("bad base query tag {t}"))),
    })
}

/// Write a complex GMDJ expression.
pub fn put_gmdj_expr(enc: &mut Encoder, e: &GmdjExpr) {
    put_base_query(enc, &e.base);
    match &e.key {
        Some(key) => {
            enc.put_u8(1);
            enc.put_u32(key.len() as u32);
            for k in key {
                enc.put_str(k);
            }
        }
        None => enc.put_u8(0),
    }
    enc.put_u32(e.ops.len() as u32);
    for op in &e.ops {
        put_gmdj(enc, op);
    }
}

/// Read a complex GMDJ expression.
pub fn get_gmdj_expr(dec: &mut Decoder<'_>) -> Result<GmdjExpr> {
    let base = get_base_query(dec)?;
    let key = match dec.get_u8()? {
        0 => None,
        1 => {
            let n = dec.get_u32()? as usize;
            let mut key = Vec::with_capacity(n);
            for _ in 0..n {
                key.push(dec.get_str()?);
            }
            Some(key)
        }
        t => return Err(Error::Codec(format!("bad key flag {t}"))),
    };
    let n_ops = dec.get_u32()? as usize;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(get_gmdj(dec)?);
    }
    Ok(GmdjExpr { base, key, ops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::GmdjExprBuilder;
    use crate::theta::ThetaBuilder;
    use skalla_relation::{row, DataType, Expr, Relation, Schema};

    fn sample_expr() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("flow", &["sas", "das"])
            .key(&["sas", "das"])
            .gmdj(
                Gmdj::new("flow")
                    .block(
                        ThetaBuilder::group_by(&["sas", "das"]).build(),
                        vec![
                            AggSpec::count("cnt1"),
                            AggSpec::avg("nb", "avg1"),
                            AggSpec::var("nb", "var1"),
                        ],
                    )
                    .block(
                        ThetaBuilder::group_by(&["sas"])
                            .and(Expr::dcol("port").in_list(vec![80i64.into()]))
                            .build(),
                        vec![AggSpec::over_expr(
                            AggFunc::Sum,
                            Expr::dcol("nb").mul(Expr::lit(8i64)),
                            "bits",
                        )],
                    ),
            )
            .gmdj(Gmdj::new("flow").block(
                ThetaBuilder::group_by(&["sas", "das"])
                    .and_detail_ge_base_expr("nb", "avg1")
                    .build(),
                vec![AggSpec::count("cnt2")],
            ))
            .build()
    }

    #[test]
    fn gmdj_expr_round_trip() {
        let e = sample_expr();
        let mut enc = Encoder::new();
        put_gmdj_expr(&mut enc, &e);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(get_gmdj_expr(&mut dec).unwrap(), e);
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn literal_base_round_trip() {
        let base = Relation::new(
            Schema::of(&[("g", DataType::Int)]),
            vec![row![1i64], row![2i64]],
        )
        .unwrap();
        let e = GmdjExprBuilder::literal_base(base)
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::min("v", "m")],
            ))
            .build();
        let mut enc = Encoder::new();
        put_gmdj_expr(&mut enc, &e);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(get_gmdj_expr(&mut dec).unwrap(), e);
    }

    #[test]
    fn all_agg_funcs_round_trip() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::Var,
            AggFunc::StdDev,
        ] {
            let a = if f == AggFunc::Count {
                AggSpec::count("c")
            } else {
                AggSpec::over_expr(f, Expr::dcol("v"), "x")
            };
            let mut enc = Encoder::new();
            put_agg_spec(&mut enc, &a);
            let bytes = enc.finish();
            assert_eq!(get_agg_spec(&mut Decoder::new(&bytes)).unwrap(), a);
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(get_agg_spec(&mut Decoder::new(&[9])).is_err());
        assert!(get_base_query(&mut Decoder::new(&[7])).is_err());
        let mut enc = Encoder::new();
        put_gmdj_expr(&mut enc, &sample_expr());
        let bytes = enc.finish();
        assert!(get_gmdj_expr(&mut Decoder::new(&bytes[..bytes.len() - 1])).is_err());
    }
}
