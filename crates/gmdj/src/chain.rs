//! Complex GMDJ expressions: chains where each operator's result is the
//! next operator's base-values relation.
//!
//! The paper restricts complex expressions to this shape (Sect. 2.2): the
//! result of an inner GMDJ — which has exactly as many tuples as its base —
//! feeds the outer GMDJ. A [`GmdjExpr`] is therefore a base query plus an
//! ordered list of [`Gmdj`] operators; evaluating it uses `m + 1` rounds in
//! the distributed setting.

use crate::eval::{eval_full, EvalOptions};
use crate::operator::Gmdj;
use skalla_relation::{Error, Relation, Result, Schema};
use std::collections::HashMap;

/// A name → relation resolver. Warehouse sites implement this over their
/// local partitions; tests implement it over in-memory maps.
pub trait Catalog {
    /// Look up a table by name.
    fn table(&self, name: &str) -> Result<&Relation>;
}

impl Catalog for HashMap<String, Relation> {
    fn table(&self, name: &str) -> Result<&Relation> {
        self.get(name)
            .ok_or_else(|| Error::Plan(format!("unknown table {name:?}")))
    }
}

impl Catalog for HashMap<String, std::sync::Arc<Relation>> {
    fn table(&self, name: &str) -> Result<&Relation> {
        self.get(name)
            .map(|r| r.as_ref())
            .ok_or_else(|| Error::Plan(format!("unknown table {name:?}")))
    }
}

/// How the base-values relation B₀ is obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseQuery {
    /// `π^distinct_columns(table)` — the common case: groups are the
    /// distinct combinations of grouping attributes in the fact relation.
    DistinctProject {
        /// Fact relation name.
        table: String,
        /// Grouping columns.
        columns: Vec<String>,
    },
    /// An explicit relation supplied with the query (e.g. a dimension
    /// table or a literal list of groups held by the coordinator).
    Literal(Relation),
}

impl BaseQuery {
    /// The schema of B₀.
    pub fn schema(&self, catalog: &dyn Catalog) -> Result<Schema> {
        match self {
            BaseQuery::DistinctProject { table, columns } => {
                let t = catalog.table(table)?;
                let idx = t
                    .schema()
                    .indexes_of(&columns.iter().map(String::as_str).collect::<Vec<_>>())?;
                t.schema().project(&idx)
            }
            BaseQuery::Literal(rel) => Ok(rel.schema().clone()),
        }
    }

    /// Evaluate B₀ against a catalog (one site's partition, or the whole
    /// database when centralized).
    pub fn eval(&self, catalog: &dyn Catalog) -> Result<Relation> {
        match self {
            BaseQuery::DistinctProject { table, columns } => {
                let t = catalog.table(table)?;
                t.project_distinct(&columns.iter().map(String::as_str).collect::<Vec<_>>())
            }
            BaseQuery::Literal(rel) => Ok(rel.clone()),
        }
    }

    /// The fact relation this query reads, if any.
    pub fn table(&self) -> Option<&str> {
        match self {
            BaseQuery::DistinctProject { table, .. } => Some(table),
            BaseQuery::Literal(_) => None,
        }
    }
}

/// A complex GMDJ expression: base query + chain of GMDJ operators.
#[derive(Debug, Clone, PartialEq)]
pub struct GmdjExpr {
    /// How B₀ is computed.
    pub base: BaseQuery,
    /// Key attributes K of the base-values relation. `None` means all of
    /// B₀'s columns (always correct for a distinct projection).
    pub key: Option<Vec<String>>,
    /// The GMDJ operators, innermost first.
    pub ops: Vec<Gmdj>,
}

impl GmdjExpr {
    /// The key columns used for synchronization.
    pub fn key_columns(&self, catalog: &dyn Catalog) -> Result<Vec<String>> {
        match &self.key {
            Some(k) => Ok(k.clone()),
            None => Ok(self
                .base
                .schema(catalog)?
                .column_names()
                .into_iter()
                .map(str::to_string)
                .collect()),
        }
    }

    /// Validate the whole chain against a catalog, returning the schema of
    /// every intermediate result `B₀ … B_m` (so `schemas.last()` is the
    /// output schema).
    pub fn validate(&self, catalog: &dyn Catalog) -> Result<Vec<Schema>> {
        let mut schemas = vec![self.base.schema(catalog)?];
        if let Some(keys) = &self.key {
            let b0 = &schemas[0];
            for k in keys {
                b0.index_of(k)?;
            }
        }
        for op in &self.ops {
            let detail = catalog.table(&op.detail)?.schema().clone();
            let cur = schemas.last().expect("at least B0");
            op.validate(cur, &detail)?;
            schemas.push(op.output_schema(cur, &detail)?);
        }
        Ok(schemas)
    }

    /// The output schema of the full expression.
    pub fn output_schema(&self, catalog: &dyn Catalog) -> Result<Schema> {
        Ok(self
            .validate(catalog)?
            .pop()
            .expect("validate returns ≥ 1 schema"))
    }

    /// Evaluate the whole chain on one machine. This is the correctness
    /// oracle for distributed execution and the centralized baseline.
    pub fn eval_centralized(&self, catalog: &dyn Catalog, opts: EvalOptions) -> Result<Relation> {
        let mut b = self.base.eval(catalog)?;
        for op in &self.ops {
            let detail = catalog.table(&op.detail)?;
            b = eval_full(&b, detail, op, opts)?;
        }
        Ok(b)
    }
}

/// Builder for [`GmdjExpr`].
#[derive(Debug, Clone)]
pub struct GmdjExprBuilder {
    base: BaseQuery,
    key: Option<Vec<String>>,
    ops: Vec<Gmdj>,
}

impl GmdjExprBuilder {
    /// Base = distinct projection of grouping columns from a fact table.
    pub fn distinct_base(table: impl Into<String>, columns: &[&str]) -> GmdjExprBuilder {
        GmdjExprBuilder {
            base: BaseQuery::DistinctProject {
                table: table.into(),
                columns: columns.iter().map(|c| c.to_string()).collect(),
            },
            key: None,
            ops: Vec::new(),
        }
    }

    /// Base = an explicit relation.
    pub fn literal_base(rel: Relation) -> GmdjExprBuilder {
        GmdjExprBuilder {
            base: BaseQuery::Literal(rel),
            key: None,
            ops: Vec::new(),
        }
    }

    /// Override the key attributes K (defaults to all base columns).
    pub fn key(mut self, columns: &[&str]) -> GmdjExprBuilder {
        self.key = Some(columns.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Append a GMDJ operator.
    pub fn gmdj(mut self, op: Gmdj) -> GmdjExprBuilder {
        self.ops.push(op);
        self
    }

    /// Finish.
    pub fn build(self) -> GmdjExpr {
        GmdjExpr {
            base: self.base,
            key: self.key,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::theta::ThetaBuilder;
    use skalla_relation::{row, DataType, Expr, Value};

    fn catalog() -> HashMap<String, Relation> {
        let flow = Relation::new(
            Schema::of(&[
                ("sas", DataType::Int),
                ("das", DataType::Int),
                ("nb", DataType::Int),
            ]),
            vec![
                row![1i64, 10i64, 100i64],
                row![1i64, 10i64, 300i64],
                row![1i64, 20i64, 50i64],
                row![2i64, 10i64, 80i64],
                row![2i64, 10i64, 120i64],
            ],
        )
        .unwrap();
        HashMap::from([("flow".to_string(), flow)])
    }

    /// Paper Example 1: per (sas, das), total flows and flows with
    /// nb ≥ group average.
    fn example1() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("flow", &["sas", "das"])
            .gmdj(Gmdj::new("flow").block(
                ThetaBuilder::group_by(&["sas", "das"]).build(),
                vec![AggSpec::count("cnt1"), AggSpec::sum("nb", "sum1")],
            ))
            .gmdj(Gmdj::new("flow").block(
                ThetaBuilder::group_by(&["sas", "das"])
                    .and_detail_ge_base_expr("nb", "sum1 / cnt1")
                    .build(),
                vec![AggSpec::count("cnt2")],
            ))
            .build()
    }

    #[test]
    fn example1_centralized() {
        let cat = catalog();
        let out = example1()
            .eval_centralized(&cat, EvalOptions::default())
            .unwrap();
        assert_eq!(
            out.schema().column_names(),
            ["sas", "das", "cnt1", "sum1", "cnt2"]
        );
        let sorted = out.sorted_by(&["sas", "das"]).unwrap();
        // (1,10): nb {100,300}, avg 200 → one ≥.
        assert_eq!(sorted.rows()[0], row![1i64, 10i64, 2i64, 400i64, 1i64]);
        // (1,20): single tuple, it equals the avg.
        assert_eq!(sorted.rows()[1], row![1i64, 20i64, 1i64, 50i64, 1i64]);
        // (2,10): nb {80,120}, avg 100 → one ≥.
        assert_eq!(sorted.rows()[2], row![2i64, 10i64, 2i64, 200i64, 1i64]);
    }

    #[test]
    fn validate_reports_intermediate_schemas() {
        let cat = catalog();
        let schemas = example1().validate(&cat).unwrap();
        assert_eq!(schemas.len(), 3);
        assert_eq!(schemas[0].column_names(), ["sas", "das"]);
        assert_eq!(schemas[1].column_names(), ["sas", "das", "cnt1", "sum1"]);
        assert_eq!(
            schemas[2].column_names(),
            ["sas", "das", "cnt1", "sum1", "cnt2"]
        );
    }

    #[test]
    fn default_key_is_all_base_columns() {
        let cat = catalog();
        assert_eq!(example1().key_columns(&cat).unwrap(), ["sas", "das"]);
        let with_key = GmdjExprBuilder::distinct_base("flow", &["sas", "das"])
            .key(&["sas"])
            .build();
        assert_eq!(with_key.key_columns(&cat).unwrap(), ["sas"]);
    }

    #[test]
    fn unknown_table_and_key_rejected() {
        let cat = catalog();
        let bad = GmdjExprBuilder::distinct_base("nope", &["x"]).build();
        assert!(bad.validate(&cat).is_err());
        let bad_key = GmdjExprBuilder::distinct_base("flow", &["sas"])
            .key(&["das"])
            .build();
        assert!(bad_key.validate(&cat).is_err());
    }

    #[test]
    fn literal_base() {
        let cat = catalog();
        let groups = Relation::new(
            Schema::of(&[("sas", DataType::Int)]),
            vec![row![1i64], row![9i64]],
        )
        .unwrap();
        let expr = GmdjExprBuilder::literal_base(groups)
            .gmdj(Gmdj::new("flow").block(
                ThetaBuilder::group_by(&["sas"]).build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        let out = expr.eval_centralized(&cat, EvalOptions::default()).unwrap();
        assert_eq!(out.rows()[0], row![1i64, 3i64]);
        assert_eq!(out.rows()[1], row![9i64, 0i64]);
    }

    #[test]
    fn min_max_chain() {
        let cat = catalog();
        let expr = GmdjExprBuilder::distinct_base("flow", &["sas"])
            .gmdj(Gmdj::new("flow").block(
                ThetaBuilder::group_by(&["sas"]).build(),
                vec![AggSpec::min("nb", "mn"), AggSpec::max("nb", "mx")],
            ))
            .gmdj(Gmdj::new("flow").block(
                ThetaBuilder::group_by(&["sas"])
                    .and(Expr::dcol("nb").eq(Expr::bcol("mx")))
                    .build(),
                vec![AggSpec::count("n_at_max")],
            ))
            .build();
        let out = expr
            .eval_centralized(&cat, EvalOptions::default())
            .unwrap()
            .sorted_by(&["sas"])
            .unwrap();
        assert_eq!(out.rows()[0], row![1i64, 50i64, 300i64, 1i64]);
        assert_eq!(out.rows()[1], row![2i64, 80i64, 120i64, 1i64]);
        let _ = Value::Null;
    }
}
