//! The GMDJ operator.
//!
//! `MD(B, R, (l₁, …, l_m), (θ₁, …, θ_m))` extends each base tuple `b ∈ B`
//! with aggregates over `RNG(b, R, θᵢ) = { r ∈ R | θᵢ(b, r) }` for each
//! *block* `(θᵢ, lᵢ)` (Definition 1 of the paper). Unlike SQL GROUP BY, the
//! ranges of different base tuples may overlap, which is what makes the
//! operator expressive enough for correlated aggregates, data cubes and
//! multi-feature queries — and what makes its distributed evaluation
//! interesting.

use crate::agg::{AccLayout, AggSpec};
use skalla_relation::{Error, Expr, Field, Result, Schema, Side};
use std::collections::HashSet;
use std::fmt;

/// One `(θᵢ, lᵢ)` pair: a condition and the aggregates computed over the
/// tuples satisfying it.
#[derive(Debug, Clone, PartialEq)]
pub struct GmdjBlock {
    /// The range condition θᵢ(b, r).
    pub theta: Expr,
    /// The aggregate list lᵢ.
    pub aggs: Vec<AggSpec>,
}

/// A GMDJ operator: the detail relation name plus its blocks.
///
/// The base-values relation is supplied by the evaluation context (it is
/// the result of the previous operator in a [`crate::chain::GmdjExpr`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Gmdj {
    /// Name of the detail relation `R` in the catalog.
    pub detail: String,
    /// The `(θᵢ, lᵢ)` blocks.
    pub blocks: Vec<GmdjBlock>,
}

impl Gmdj {
    /// A GMDJ over the named detail relation, with no blocks yet.
    pub fn new(detail: impl Into<String>) -> Gmdj {
        Gmdj {
            detail: detail.into(),
            blocks: Vec::new(),
        }
    }

    /// Append a block (builder style).
    pub fn block(mut self, theta: Expr, aggs: Vec<AggSpec>) -> Gmdj {
        self.blocks.push(GmdjBlock { theta, aggs });
        self
    }

    /// All aggregates across blocks, in output order.
    pub fn all_aggs(&self) -> impl Iterator<Item = &AggSpec> {
        self.blocks.iter().flat_map(|b| b.aggs.iter())
    }

    /// The accumulator layout for this operator.
    pub fn layout(&self) -> AccLayout {
        AccLayout::new(
            &self
                .blocks
                .iter()
                .map(|b| b.aggs.clone())
                .collect::<Vec<_>>(),
        )
    }

    /// The names of the logical output columns this GMDJ adds.
    pub fn output_names(&self) -> Vec<&str> {
        self.all_aggs().map(|a| a.name.as_str()).collect()
    }

    /// The disjunction θ₁ ∨ … ∨ θ_m over all blocks (used by group
    /// reduction: a base tuple matters to a site iff some block matches).
    pub fn any_theta(&self) -> Expr {
        Expr::disjunction(self.blocks.iter().map(|b| b.theta.clone()).collect())
    }

    /// Validate against the base and detail schemas: θs bind, aggregate
    /// inputs are detail-only and well-typed, output names are fresh and
    /// mutually distinct.
    pub fn validate(&self, base: &Schema, detail: &Schema) -> Result<()> {
        if self.blocks.is_empty() {
            return Err(Error::Plan("GMDJ with no blocks".into()));
        }
        let mut names: HashSet<&str> = HashSet::new();
        for b in &self.blocks {
            b.theta.bind(base, Some(detail))?;
            if b.aggs.is_empty() {
                return Err(Error::Plan("GMDJ block with no aggregates".into()));
            }
            for a in &b.aggs {
                a.validate(detail)?;
                if base.contains(&a.name) {
                    return Err(Error::DuplicateColumn(format!(
                        "aggregate output {:?} collides with a base column",
                        a.name
                    )));
                }
                if !names.insert(&a.name) {
                    return Err(Error::DuplicateColumn(a.name.clone()));
                }
            }
        }
        Ok(())
    }

    /// The logical output schema: base columns followed by aggregates.
    pub fn output_schema(&self, base: &Schema, detail: &Schema) -> Result<Schema> {
        let fields: Vec<Field> = self
            .all_aggs()
            .map(|a| a.logical_field(detail))
            .collect::<Result<_>>()?;
        base.extend(&fields)
    }

    /// The physical (accumulator) schema: base columns followed by
    /// physical slots.
    pub fn physical_schema(&self, base: &Schema, detail: &Schema) -> Result<Schema> {
        let fields = self.layout().physical_fields(detail)?;
        base.extend(&fields)
    }

    /// Base-side columns referenced by any θ (these must be shipped to
    /// sites along with the key columns).
    pub fn base_columns_used(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        for b in &self.blocks {
            out.extend(b.theta.columns(Side::Base));
        }
        out
    }
}

impl fmt::Display for Gmdj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MD(detail={}", self.detail)?;
        for (i, b) in self.blocks.iter().enumerate() {
            write!(f, "  block {i}: θ = {}", b.theta)?;
            write!(f, "; aggs = [")?;
            for (j, a) in b.aggs.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaBuilder;
    use skalla_relation::DataType;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::of(&[("g", DataType::Int)]),
            Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
        )
    }

    fn op() -> Gmdj {
        Gmdj::new("t")
            .block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c"), AggSpec::avg("v", "a")],
            )
            .block(
                ThetaBuilder::group_by(&["g"])
                    .and(Expr::dcol("v").ge(Expr::lit(0i64)))
                    .build(),
                vec![AggSpec::sum("v", "s")],
            )
    }

    #[test]
    fn schemas_and_names() {
        let (b, d) = schemas();
        let g = op();
        g.validate(&b, &d).unwrap();
        assert_eq!(g.output_names(), ["c", "a", "s"]);
        let out = g.output_schema(&b, &d).unwrap();
        assert_eq!(out.column_names(), ["g", "c", "a", "s"]);
        let phys = g.physical_schema(&b, &d).unwrap();
        assert_eq!(
            phys.column_names(),
            ["g", "c", "a__sum", "a__cnt", "s"]
        );
    }

    #[test]
    fn validation_failures() {
        let (b, d) = schemas();
        // Duplicate output name.
        let g = Gmdj::new("t")
            .block(ThetaBuilder::group_by(&["g"]).build(), vec![AggSpec::count("c")])
            .block(ThetaBuilder::group_by(&["g"]).build(), vec![AggSpec::count("c")]);
        assert!(g.validate(&b, &d).is_err());
        // Collision with a base column.
        let g = Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("g")],
        );
        assert!(g.validate(&b, &d).is_err());
        // θ references a column the base schema lacks.
        let g = Gmdj::new("t").block(
            Expr::bcol("missing").eq(Expr::dcol("g")),
            vec![AggSpec::count("c")],
        );
        assert!(g.validate(&b, &d).is_err());
        // No blocks / no aggs.
        assert!(Gmdj::new("t").validate(&b, &d).is_err());
        let g = Gmdj::new("t").block(ThetaBuilder::group_by(&["g"]).build(), vec![]);
        assert!(g.validate(&b, &d).is_err());
    }

    #[test]
    fn any_theta_is_disjunction() {
        let g = op();
        assert!(matches!(g.any_theta(), Expr::Or(_, _)));
        let single = Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![AggSpec::count("c")],
        );
        // Single block: the disjunction is just that block's θ.
        assert_eq!(single.any_theta(), ThetaBuilder::group_by(&["g"]).build());
    }

    #[test]
    fn base_columns_used_unions_thetas() {
        let g = Gmdj::new("t")
            .block(ThetaBuilder::group_by(&["g"]).build(), vec![AggSpec::count("c")])
            .block(
                Expr::dcol("v").ge(Expr::bcol("lo")),
                vec![AggSpec::count("c2")],
            );
        let used = g.base_columns_used();
        assert!(used.contains("g") && used.contains("lo"));
        assert_eq!(used.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let s = op().to_string();
        assert!(s.contains("MD(detail=t"));
        assert!(s.contains("COUNT(*) -> c"));
    }
}
