//! # skalla-gmdj — the GMDJ operator algebra and centralized evaluator
//!
//! Implements the Generalized Multi-Dimensional Join of Akinde & Böhlen
//! (the OLAP operator underlying the Skalla system): the operator itself
//! ([`operator::Gmdj`]), aggregate functions with sub-/super-aggregate
//! decomposition ([`agg`]), condition analysis ([`theta`]), complex GMDJ
//! expressions ([`chain`]), coalescing rewrites ([`rewrite`]), and an
//! efficient centralized evaluator ([`eval`]) with hash and nested-loop
//! strategies, evaluated by default through the vectorized columnar
//! kernel ([`columnar`]).
//!
//! Distributed evaluation of these expressions lives in `skalla-core`.

// missing_docs is denied workspace-wide (see [workspace.lints]).

pub mod agg;
pub mod chain;
pub mod codec;
pub mod columnar;
pub mod eval;
pub mod operator;
pub mod patterns;
pub mod rewrite;
pub mod sketch;
pub mod theta;

pub use agg::{AccLayout, AggFunc, AggSpec};
pub use chain::{BaseQuery, Catalog, GmdjExpr, GmdjExprBuilder};
pub use eval::{
    eval_full, eval_local, eval_local_traced, finalize_physical, EvalOptions, LocalGmdj,
    DEFAULT_MORSEL_ROWS,
};
pub use operator::{Gmdj, GmdjBlock};
pub use rewrite::{can_coalesce, coalesce, coalesce_chain, CoalesceReport};
pub use sketch::SpaceSaving;
pub use theta::{analyze_theta, ThetaAnalysis, ThetaBuilder};

/// Convenience re-exports for building GMDJ queries.
pub mod prelude {
    pub use crate::agg::{AggFunc, AggSpec};
    pub use crate::chain::{BaseQuery, Catalog, GmdjExpr, GmdjExprBuilder};
    pub use crate::eval::EvalOptions;
    pub use crate::operator::{Gmdj, GmdjBlock};
    pub use crate::theta::ThetaBuilder;
    pub use skalla_relation::{Expr, Relation, Row, Schema, Value};
}
