//! Builders for the OLAP query patterns the paper cites as GMDJ targets
//! (Sect. 1–2): grouped aggregation, correlated aggregates, marginal
//! distributions (the unpivot pattern of Graefe et al.), and multi-feature
//! queries (Ross et al.).
//!
//! Each builder returns a plain [`GmdjExpr`]; the Egil planner and the
//! distributed runtime treat them like any hand-written expression.

use crate::agg::{AggFunc, AggSpec};
use crate::chain::{GmdjExpr, GmdjExprBuilder};
use crate::operator::Gmdj;
use crate::theta::ThetaBuilder;
use skalla_relation::{Expr, Value};

/// Plain grouped aggregation: `SELECT group, aggs FROM table GROUP BY
/// group` as a single-operator GMDJ expression.
pub fn group_by(table: &str, group: &[&str], aggs: Vec<AggSpec>) -> GmdjExpr {
    GmdjExprBuilder::distinct_base(table, group)
        .gmdj(Gmdj::new(table).block(ThetaBuilder::group_by(group).build(), aggs))
        .build()
}

/// The correlated-aggregate pattern of paper Example 1: compute per-group
/// aggregates, then count the detail tuples whose `value_col` is at least
/// the group's average of `avg_col`.
pub fn above_group_average(
    table: &str,
    group: &[&str],
    avg_col: &str,
    out_prefix: &str,
) -> GmdjExpr {
    let avg_name = format!("{out_prefix}_avg");
    let cnt_name = format!("{out_prefix}_cnt");
    let above_name = format!("{out_prefix}_above");
    GmdjExprBuilder::distinct_base(table, group)
        .gmdj(Gmdj::new(table).block(
            ThetaBuilder::group_by(group).build(),
            vec![
                AggSpec::count(cnt_name),
                AggSpec::avg(avg_col, avg_name.clone()),
            ],
        ))
        .gmdj(Gmdj::new(table).block(
            ThetaBuilder::group_by(group)
                .and(Expr::dcol(avg_col).ge(Expr::bcol(avg_name)))
                .build(),
            vec![AggSpec::count(above_name)],
        ))
        .build()
}

/// Marginal distributions (the unpivot pattern): one COUNT block per
/// `(label, predicate)` bucket, all over the same grouping — a single
/// GMDJ operator with one block per bucket, evaluated in one round.
///
/// `buckets` are detail-side predicates; each yields an output column
/// `<label>` counting the group's detail tuples in the bucket.
pub fn marginals(table: &str, group: &[&str], buckets: &[(&str, Expr)]) -> GmdjExpr {
    let mut op = Gmdj::new(table).block(
        ThetaBuilder::group_by(group).build(),
        vec![AggSpec::count("total")],
    );
    for (label, pred) in buckets {
        op = op.block(
            ThetaBuilder::group_by(group).and(pred.clone()).build(),
            vec![AggSpec::count(*label)],
        );
    }
    GmdjExprBuilder::distinct_base(table, group).gmdj(op).build()
}

/// A multi-feature query (Ross, Srivastava & Chatziantoniou): per group,
/// find the extremum of `feature_col` and then aggregate `measure` over
/// only the tuples attaining it — e.g. "for each customer, the total
/// quantity among their cheapest orders".
pub fn at_group_extremum(
    table: &str,
    group: &[&str],
    feature_col: &str,
    minimum: bool,
    measure: AggSpec,
) -> GmdjExpr {
    let ext_name = format!(
        "{}_{}",
        feature_col,
        if minimum { "min" } else { "max" }
    );
    let ext = if minimum {
        AggSpec::min(feature_col, ext_name.clone())
    } else {
        AggSpec::max(feature_col, ext_name.clone())
    };
    GmdjExprBuilder::distinct_base(table, group)
        .gmdj(Gmdj::new(table).block(ThetaBuilder::group_by(group).build(), vec![ext]))
        .gmdj(Gmdj::new(table).block(
            ThetaBuilder::group_by(group)
                .and(Expr::dcol(feature_col).eq(Expr::bcol(ext_name)))
                .build(),
            vec![measure],
        ))
        .build()
}

/// Hourly traffic fractions (the paper's opening example): per time
/// bucket of `time_col` (bucket width `bucket_seconds`), the total count
/// and the count matching `pred` — "on an hourly basis, what fraction of
/// flows is due to Web traffic?".
///
/// Requires a precomputed bucket column? No — the θ buckets on
/// `time_col / bucket` directly, so the base is supplied as a literal
/// bucket list by the caller or derived via a bucket column. This variant
/// groups on an existing bucket column `bucket_col`.
pub fn fraction_per_bucket(table: &str, bucket_col: &str, label: &str, pred: Expr) -> GmdjExpr {
    marginals(table, &[bucket_col], &[(label, pred)])
}

/// Count tuples within `percent`% of the group maximum of `col` — the
/// paper's "IP subnets whose total hourly traffic is within 10% of the
/// maximum" shape, at the tuple level.
pub fn near_group_maximum(table: &str, group: &[&str], col: &str, percent: i64) -> GmdjExpr {
    let max_name = format!("{col}_max");
    GmdjExprBuilder::distinct_base(table, group)
        .gmdj(Gmdj::new(table).block(
            ThetaBuilder::group_by(group).build(),
            vec![AggSpec::max(col, max_name.clone())],
        ))
        .gmdj(Gmdj::new(table).block(
            ThetaBuilder::group_by(group)
                .and(
                    Expr::dcol(col).mul(Expr::lit(100i64)).ge(
                        Expr::bcol(max_name)
                            .mul(Expr::lit(Value::Int(100 - percent))),
                    ),
                )
                .build(),
            vec![AggSpec::count("near_max"), AggSpec::over_expr(
                AggFunc::Sum,
                Expr::dcol(col),
                "near_max_total",
            )],
        ))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalOptions;
    use skalla_relation::{row, DataType, Relation, Schema};
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Relation> {
        let t = Relation::new(
            Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
            vec![
                row![1i64, 10i64],
                row![1i64, 20i64],
                row![1i64, 10i64],
                row![2i64, 5i64],
                row![2i64, 50i64],
            ],
        )
        .unwrap();
        HashMap::from([("t".to_string(), t)])
    }

    #[test]
    fn group_by_matches_manual() {
        let cat = catalog();
        let e = group_by("t", &["g"], vec![AggSpec::count("n"), AggSpec::sum("v", "s")]);
        let out = e
            .eval_centralized(&cat, EvalOptions::default())
            .unwrap()
            .sorted_by(&["g"])
            .unwrap();
        assert_eq!(out.rows()[0], row![1i64, 3i64, 40i64]);
        assert_eq!(out.rows()[1], row![2i64, 2i64, 55i64]);
    }

    #[test]
    fn above_average_pattern() {
        let cat = catalog();
        let e = above_group_average("t", &["g"], "v", "x");
        let out = e
            .eval_centralized(&cat, EvalOptions::default())
            .unwrap()
            .sorted_by(&["g"])
            .unwrap();
        assert_eq!(
            out.schema().column_names(),
            ["g", "x_cnt", "x_avg", "x_above"]
        );
        // g=1: avg 40/3 ≈ 13.3 → one tuple (20) above.
        assert_eq!(out.rows()[0].get(3), &Value::Int(1));
        // g=2: avg 27.5 → one tuple (50) above.
        assert_eq!(out.rows()[1].get(3), &Value::Int(1));
    }

    #[test]
    fn marginals_pattern_counts_buckets() {
        let cat = catalog();
        let e = marginals(
            "t",
            &["g"],
            &[
                ("small", Expr::dcol("v").lt(Expr::lit(15i64))),
                ("large", Expr::dcol("v").ge(Expr::lit(15i64))),
            ],
        );
        // One operator, three blocks → single round after optimization.
        assert_eq!(e.ops.len(), 1);
        assert_eq!(e.ops[0].blocks.len(), 3);
        let out = e
            .eval_centralized(&cat, EvalOptions::default())
            .unwrap()
            .sorted_by(&["g"])
            .unwrap();
        assert_eq!(out.rows()[0], row![1i64, 3i64, 2i64, 1i64]);
        assert_eq!(out.rows()[1], row![2i64, 2i64, 1i64, 1i64]);
    }

    #[test]
    fn multi_feature_extremum() {
        let cat = catalog();
        // Per group: count of tuples attaining the minimum of v.
        let e = at_group_extremum("t", &["g"], "v", true, AggSpec::count("n_at_min"));
        let out = e
            .eval_centralized(&cat, EvalOptions::default())
            .unwrap()
            .sorted_by(&["g"])
            .unwrap();
        assert_eq!(out.rows()[0], row![1i64, 10i64, 2i64]);
        assert_eq!(out.rows()[1], row![2i64, 5i64, 1i64]);
    }

    #[test]
    fn near_maximum_pattern() {
        let cat = catalog();
        let e = near_group_maximum("t", &["g"], "v", 50);
        let out = e
            .eval_centralized(&cat, EvalOptions::default())
            .unwrap()
            .sorted_by(&["g"])
            .unwrap();
        // g=1: max 20, within 50% ⇒ v ≥ 10: all three tuples, total 40.
        assert_eq!(out.rows()[0], row![1i64, 20i64, 3i64, 40i64]);
        // g=2: max 50 ⇒ v ≥ 25: one tuple, total 50.
        assert_eq!(out.rows()[1], row![2i64, 50i64, 1i64, 50i64]);
    }

    #[test]
    fn fraction_per_bucket_is_marginals() {
        let e = fraction_per_bucket("t", "g", "webbish", Expr::dcol("v").ge(Expr::lit(15i64)));
        assert_eq!(e.ops[0].blocks.len(), 2);
    }
}
