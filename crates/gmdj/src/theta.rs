//! Analysis and construction of GMDJ conditions θ(b, r).
//!
//! [`analyze_theta`] splits a condition into *equi-key pairs*
//! (`b.a = r.d` conjuncts) and a *residual*; the evaluator uses the pairs
//! to hash-partition detail tuples instead of running a nested loop, and
//! the planner uses them for group reduction (equality transfer of site
//! domains) and synchronization reduction (partition-attribute entailment,
//! Cor 1).

use skalla_relation::{parse_expr, CmpOp, Expr, Side};

/// The equi-key / residual decomposition of a θ condition.
#[derive(Debug, Clone, PartialEq)]
pub struct ThetaAnalysis {
    /// `(base column, detail column)` pairs from `b.x = r.y` conjuncts.
    pub equi: Vec<(String, String)>,
    /// Conjunction of the remaining conjuncts (`Expr::True` if none).
    pub residual: Expr,
}

impl ThetaAnalysis {
    /// True when θ is *exactly* a conjunction of equi-key tests.
    pub fn is_pure_equi(&self) -> bool {
        !self.equi.is_empty() && self.residual == Expr::True
    }

    /// Whether θ entails `b.col = r.col` for the given attribute — the
    /// entailment test used by Cor 1 (partition attributes) and Prop 2
    /// (θ entails θ_K). Syntactic: looks for the pair among equi conjuncts.
    pub fn entails_key_equality(&self, base_col: &str, detail_col: &str) -> bool {
        self.equi
            .iter()
            .any(|(b, d)| b == base_col && d == detail_col)
    }
}

/// Decompose θ into equi-key pairs and a residual condition.
///
/// Only *top-level* conjuncts of the form `b.x = r.y` (either orientation)
/// become pairs; everything else — including equalities nested under `OR` —
/// lands in the residual, which keeps the decomposition exact:
/// θ ≡ (⋀ equi) ∧ residual.
pub fn analyze_theta(theta: &Expr) -> ThetaAnalysis {
    let mut equi = Vec::new();
    let mut residual = Vec::new();
    for c in theta.conjuncts() {
        match c {
            Expr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(Side::Base, x), Expr::Col(Side::Detail, y)) => {
                    equi.push((x.clone(), y.clone()));
                }
                (Expr::Col(Side::Detail, y), Expr::Col(Side::Base, x)) => {
                    equi.push((x.clone(), y.clone()));
                }
                _ => residual.push(c.clone()),
            },
            other => residual.push(other.clone()),
        }
    }
    ThetaAnalysis {
        equi,
        residual: Expr::conjunction(residual),
    }
}

/// Fluent builder for θ conditions.
///
/// ```
/// use skalla_gmdj::theta::ThetaBuilder;
/// let theta = ThetaBuilder::keys(&[("source_as", "source_as"), ("dest_as", "dest_as")])
///     .and_detail_ge_base_expr("num_bytes", "sum1 / cnt1")
///     .build();
/// assert_eq!(
///     theta.to_string(),
///     "((b.source_as = r.source_as AND b.dest_as = r.dest_as) AND r.num_bytes >= (b.sum1 / b.cnt1))"
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThetaBuilder {
    conjuncts: Vec<Expr>,
}

impl ThetaBuilder {
    /// Start from a list of `(base column, detail column)` equality keys.
    pub fn keys(pairs: &[(&str, &str)]) -> ThetaBuilder {
        let conjuncts = pairs
            .iter()
            .map(|(b, d)| Expr::bcol(*b).eq(Expr::dcol(*d)))
            .collect();
        ThetaBuilder { conjuncts }
    }

    /// Start from grouping columns that share a name on both sides
    /// (the common `b.g = r.g` case).
    pub fn group_by(columns: &[&str]) -> ThetaBuilder {
        ThetaBuilder::keys(&columns.iter().map(|c| (*c, *c)).collect::<Vec<_>>())
    }

    /// An empty builder (θ = TRUE until conjuncts are added).
    pub fn new() -> ThetaBuilder {
        ThetaBuilder::default()
    }

    /// Add an arbitrary conjunct.
    pub fn and(mut self, expr: Expr) -> ThetaBuilder {
        self.conjuncts.push(expr);
        self
    }

    /// Add `r.<detail_col> >= <base expression>` where the expression text
    /// is parsed with unqualified names defaulting to the base side (e.g.
    /// `"sum1 / cnt1"` — the correlated-aggregate pattern of paper Ex. 1).
    ///
    /// # Panics
    /// Panics if the expression text does not parse; conditions are
    /// normally static query text, so failing fast is the useful behavior.
    pub fn and_detail_ge_base_expr(self, detail_col: &str, base_expr: &str) -> ThetaBuilder {
        let rhs = parse_expr(base_expr, Side::Base)
            .unwrap_or_else(|e| panic!("invalid base expression {base_expr:?}: {e}"));
        self.and(Expr::dcol(detail_col).ge(rhs))
    }

    /// Add a conjunct parsed from text (`b.`/`r.` qualifiers; unqualified
    /// names default to the detail side).
    ///
    /// # Panics
    /// Panics if the text does not parse.
    pub fn and_parsed(self, text: &str) -> ThetaBuilder {
        let e = parse_expr(text, Side::Detail)
            .unwrap_or_else(|err| panic!("invalid condition {text:?}: {err}"));
        self.and(e)
    }

    /// Build the θ expression (conjunction of all added parts).
    pub fn build(self) -> Expr {
        Expr::conjunction(self.conjuncts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_equi_detected() {
        let theta = ThetaBuilder::group_by(&["sas", "das"]).build();
        let a = analyze_theta(&theta);
        assert!(a.is_pure_equi());
        assert_eq!(
            a.equi,
            vec![
                ("sas".to_string(), "sas".to_string()),
                ("das".to_string(), "das".to_string())
            ]
        );
        assert!(a.entails_key_equality("sas", "sas"));
        assert!(!a.entails_key_equality("sas", "das"));
    }

    #[test]
    fn residual_split() {
        let theta = ThetaBuilder::keys(&[("g", "g")])
            .and(Expr::dcol("v").ge(Expr::bcol("avg")))
            .build();
        let a = analyze_theta(&theta);
        assert_eq!(a.equi.len(), 1);
        assert_eq!(a.residual.to_string(), "r.v >= b.avg");
        assert!(!a.is_pure_equi());
    }

    #[test]
    fn flipped_equality_normalized() {
        let theta = Expr::dcol("d").eq(Expr::bcol("b"));
        let a = analyze_theta(&theta);
        assert_eq!(a.equi, vec![("b".to_string(), "d".to_string())]);
        assert_eq!(a.residual, Expr::True);
    }

    #[test]
    fn equality_under_or_stays_residual() {
        let theta = Expr::bcol("a")
            .eq(Expr::dcol("a"))
            .or(Expr::bcol("b").eq(Expr::dcol("b")));
        let a = analyze_theta(&theta);
        assert!(a.equi.is_empty());
        assert_eq!(&a.residual, &theta);
    }

    #[test]
    fn base_to_base_equality_is_residual() {
        let theta = Expr::bcol("a").eq(Expr::bcol("b"));
        let a = analyze_theta(&theta);
        assert!(a.equi.is_empty());
    }

    #[test]
    fn builder_parsed_conditions() {
        let theta = ThetaBuilder::group_by(&["g"])
            .and_parsed("num_bytes > 100 AND b.lo <= num_bytes")
            .build();
        assert_eq!(
            theta.to_string(),
            "(b.g = r.g AND (r.num_bytes > 100 AND b.lo <= r.num_bytes))"
        );
    }

    #[test]
    #[should_panic(expected = "invalid base expression")]
    fn builder_panics_on_bad_expr() {
        ThetaBuilder::new().and_detail_ge_base_expr("v", "1 +");
    }
}
