//! Property-based tests for the GMDJ layer: Theorem 1 (sub/super
//! decomposition) over random data and partitionings, aggregate merge
//! laws, and codec round-trips for random expressions.

use proptest::prelude::*;
use skalla_gmdj::agg::{AggFunc, AggSpec};
use skalla_gmdj::codec::{get_gmdj_expr, put_gmdj_expr};
use skalla_gmdj::eval::{eval_local, eval_full, finalize_physical, EvalOptions};
use skalla_gmdj::prelude::*;
use skalla_relation::codec::{Decoder, Encoder};
use skalla_relation::{DataType, Relation, Row, Schema, Value};

fn arb_agg() -> impl Strategy<Value = (usize, AggFunc)> {
    // (index used to make the output name unique, function)
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Avg),
        Just(AggFunc::Var),
        Just(AggFunc::StdDev),
    ]
    .prop_map(|f| (0, f))
}

fn spec(i: usize, f: AggFunc) -> AggSpec {
    let name = format!("a{i}");
    match f {
        AggFunc::Count => AggSpec::count(name),
        _ => AggSpec::over_expr(f, Expr::dcol("v"), name),
    }
}

fn detail(rows: &[(i64, i64)]) -> Relation {
    Relation::new(
        Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
        rows.iter()
            .map(|(g, v)| Row::new(vec![Value::Int(*g), Value::Int(*v)]))
            .collect(),
    )
    .expect("static schema")
}

fn values_close(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: evaluating sub-aggregates per partition and merging at a
    /// "coordinator" equals direct evaluation, for every aggregate
    /// function and random partitionings (VAR/STDDEV compared with a
    /// floating-point tolerance — partition order changes summation
    /// order).
    #[test]
    fn sub_super_equals_direct(
        rows in proptest::collection::vec((-4i64..4, -50i64..50), 1..40),
        split in proptest::collection::vec(0usize..3, 1..40),
        aggs in proptest::collection::vec(arb_agg(), 1..4),
    ) {
        let d = detail(&rows);
        let specs: Vec<AggSpec> = aggs
            .iter()
            .enumerate()
            .map(|(i, (_, f))| spec(i, *f))
            .collect();
        let op = Gmdj::new("t").block(ThetaBuilder::group_by(&["g"]).build(), specs);
        let base = d.project_distinct(&["g"]).expect("projects");

        // Direct evaluation.
        let direct = eval_full(&base, &d, &op, EvalOptions::default()).expect("evaluates");

        // Partitioned evaluation: split rows into up to 3 fragments.
        let mut frags = vec![Vec::new(), Vec::new(), Vec::new()];
        for (i, row) in d.rows().iter().enumerate() {
            frags[split[i % split.len()]].push(row.clone());
        }
        let layout = op.layout();
        let base_arity = base.schema().len();
        let mut acc: Option<Relation> = None;
        for frag_rows in frags {
            let frag = Relation::from_shared(d.schema_ref(), frag_rows);
            let local = eval_local(&base, &frag, &op, EvalOptions::default())
                .expect("local evaluates");
            acc = Some(match acc {
                None => local.physical,
                Some(mut x) => {
                    for (dst, src) in x.rows_mut().iter_mut().zip(local.physical.rows()) {
                        let mut vals = dst.values().to_vec();
                        layout
                            .merge(&mut vals[base_arity..], &src.values()[base_arity..])
                            .expect("merges");
                        *dst = Row::new(vals);
                    }
                    x
                }
            });
        }
        let merged = finalize_physical(
            &acc.expect("at least one fragment"),
            base_arity,
            &op,
            d.schema(),
        )
        .expect("finalizes");

        prop_assert_eq!(direct.len(), merged.len());
        for (a, b) in direct.rows().iter().zip(merged.rows()) {
            for (x, y) in a.values().iter().zip(b.values()) {
                prop_assert!(values_close(x, y), "{a} vs {b}");
            }
        }
    }

    /// Merging is commutative for every aggregate (site arrival order must
    /// not matter).
    #[test]
    fn merge_is_commutative(
        (_, f) in arb_agg(),
        xs in proptest::collection::vec(-50i64..50, 0..10),
        ys in proptest::collection::vec(-50i64..50, 0..10),
    ) {
        let a = spec(0, f);
        let mut acc1 = Vec::new();
        a.init_acc(&mut acc1);
        let mut acc2 = acc1.clone();
        let mut sub_x = acc1.clone();
        let mut sub_y = acc1.clone();
        for x in &xs {
            a.update(&mut sub_x, Some(&Value::Int(*x))).expect("updates");
        }
        for y in &ys {
            a.update(&mut sub_y, Some(&Value::Int(*y))).expect("updates");
        }
        a.merge(&mut acc1, &sub_x).expect("merges");
        a.merge(&mut acc1, &sub_y).expect("merges");
        a.merge(&mut acc2, &sub_y).expect("merges");
        a.merge(&mut acc2, &sub_x).expect("merges");
        let f1 = a.finalize(&acc1).expect("finalizes");
        let f2 = a.finalize(&acc2).expect("finalizes");
        prop_assert!(values_close(&f1, &f2), "{f1} vs {f2}");
    }

    /// Merging a fresh (identity) accumulator changes nothing.
    #[test]
    fn merge_identity(
        (_, f) in arb_agg(),
        xs in proptest::collection::vec(-50i64..50, 0..10),
    ) {
        let a = spec(0, f);
        let mut acc = Vec::new();
        a.init_acc(&mut acc);
        for x in &xs {
            a.update(&mut acc, Some(&Value::Int(*x))).expect("updates");
        }
        let before = acc.clone();
        let mut fresh = Vec::new();
        a.init_acc(&mut fresh);
        a.merge(&mut acc, &fresh).expect("merges");
        let f1 = a.finalize(&before).expect("finalizes");
        let f2 = a.finalize(&acc).expect("finalizes");
        prop_assert!(values_close(&f1, &f2));
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::True),
        "[a-z]{1,6}".prop_map(Expr::bcol),
        "[a-z]{1,6}".prop_map(Expr::dcol),
        any::<i64>().prop_map(Expr::lit),
        (-1e9f64..1e9).prop_map(Expr::lit),
        "[a-z' ]{0,8}".prop_map(|s| Expr::Lit(Value::str(s))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.lt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.ge(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.div(b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
            (inner, proptest::collection::vec(any::<i64>(), 0..4))
                .prop_map(|(a, vs)| a.in_list(vs.into_iter().map(Value::Int).collect())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random expression trees survive the binary codec.
    #[test]
    fn expr_codec_round_trips(e in arb_expr()) {
        let mut enc = Encoder::new();
        enc.put_expr(&e);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.get_expr().expect("decodes"), e);
        prop_assert_eq!(dec.remaining(), 0);
    }

    /// Random single-op GMDJ expressions survive the codec.
    #[test]
    fn gmdj_expr_codec_round_trips(
        theta in arb_expr(),
        aggs in proptest::collection::vec(arb_agg(), 1..4),
    ) {
        let specs: Vec<AggSpec> = aggs
            .iter()
            .enumerate()
            .map(|(i, (_, f))| spec(i, *f))
            .collect();
        let expr = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(theta, specs))
            .build();
        let mut enc = Encoder::new();
        put_gmdj_expr(&mut enc, &expr);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(get_gmdj_expr(&mut dec).expect("decodes"), expr);
    }
}
