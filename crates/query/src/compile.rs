//! Compilation of parsed queries into GMDJ expressions, plus the
//! end-to-end conveniences (`run`, `explain`) that tie the front-end to
//! the Egil planner and the cluster runtime.

use crate::ast::Query;
use crate::parser::parse_query;
use skalla_core::{OptFlags, Planner, QueryResult, Warehouse};
use skalla_gmdj::{AggSpec, Gmdj, GmdjExpr, GmdjExprBuilder};
use skalla_relation::Result;

/// Translate a parsed [`Query`] into a [`GmdjExpr`].
pub fn compile(query: &Query) -> GmdjExpr {
    let mut b = GmdjExprBuilder::distinct_base(
        query.base.table.clone(),
        &query
            .base
            .columns
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    if let Some(key) = &query.base.key {
        b = b.key(&key.iter().map(String::as_str).collect::<Vec<_>>());
    }
    for md in &query.mds {
        let aggs = md
            .aggs
            .iter()
            .map(|a| AggSpec {
                func: a.func,
                input: a.input.clone(),
                name: a.name.clone(),
            })
            .collect();
        b = b.gmdj(Gmdj::new(md.table.clone()).block(md.theta.clone(), aggs));
    }
    b.build()
}

/// Parse and compile query text.
pub fn compile_text(text: &str) -> Result<GmdjExpr> {
    Ok(compile(&parse_query(text)?))
}

/// Parse, plan and execute query text against any [`Warehouse`] — an
/// in-process [`Cluster`](skalla_core::Cluster), a
/// [`RemoteCluster`](skalla_core::RemoteCluster), or the concurrent
/// [`Skalla`](skalla_core::Skalla) engine.
pub fn run(
    text: &str,
    warehouse: &(impl Warehouse + ?Sized),
    flags: OptFlags,
) -> Result<QueryResult> {
    let expr = compile_text(text)?;
    let plan = Planner::new(warehouse.distribution()).optimize(&expr, flags);
    warehouse.execute(&plan)
}

/// Parse, plan, and render the distributed plan (the `EXPLAIN` verb).
pub fn explain(
    text: &str,
    warehouse: &(impl Warehouse + ?Sized),
    flags: OptFlags,
) -> Result<String> {
    let expr = compile_text(text)?;
    let plan = Planner::new(warehouse.distribution()).optimize(&expr, flags);
    Ok(plan.explain())
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_core::Cluster;
    use skalla_relation::{row, DataType, Domain, DomainMap, Relation, Schema};

    const QUERY: &str = "
        BASE SELECT DISTINCT g FROM t;
        MD cnt1 = COUNT(*), avg1 = AVG(v) OVER t WHERE g = b.g;
        MD above = COUNT(*) OVER t WHERE g = b.g AND v >= b.avg1;
    ";

    fn cluster() -> Cluster {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let p0 = Relation::new(
            schema.clone(),
            vec![row![1i64, 10i64], row![1i64, 30i64]],
        )
        .unwrap();
        let p1 = Relation::new(schema, vec![row![2i64, 5i64], row![2i64, 15i64]]).unwrap();
        Cluster::from_partitions(
            "t",
            vec![
                (p0, DomainMap::new().with("g", Domain::IntRange(1, 1))),
                (p1, DomainMap::new().with("g", Domain::IntRange(2, 2))),
            ],
        )
    }

    #[test]
    fn compile_produces_two_ops() {
        let expr = compile_text(QUERY).unwrap();
        assert_eq!(expr.ops.len(), 2);
        assert_eq!(expr.ops[0].blocks[0].aggs.len(), 2);
        assert_eq!(expr.ops[1].output_names(), ["above"]);
    }

    #[test]
    fn run_end_to_end() {
        let c = cluster();
        let out = run(QUERY, &c, OptFlags::all()).unwrap();
        let sorted = out.relation.sorted_by(&["g"]).unwrap();
        assert_eq!(sorted.rows()[0], row![1i64, 2i64, 20.0, 1i64]);
        assert_eq!(sorted.rows()[1], row![2i64, 2i64, 10.0, 1i64]);
    }

    #[test]
    fn optimized_and_unoptimized_agree() {
        let c = cluster();
        let a = run(QUERY, &c, OptFlags::none()).unwrap();
        let b = run(QUERY, &c, OptFlags::all()).unwrap();
        assert!(a.relation.same_bag(&b.relation));
        assert!(b.stats.n_rounds() < a.stats.n_rounds());
    }

    #[test]
    fn explain_shows_plan() {
        let c = cluster();
        let text = explain(QUERY, &c, OptFlags::all()).unwrap();
        assert!(text.contains("round 0"), "{text}");
        assert!(text.contains("local chain"), "{text}");
    }

    #[test]
    fn key_clause_propagates() {
        let expr = compile_text(
            "BASE SELECT DISTINCT a, b FROM t KEY (a);
             MD c = COUNT(*) OVER t WHERE a = b.a;",
        )
        .unwrap();
        assert_eq!(expr.key, Some(vec!["a".to_string()]));
    }
}
