//! Abstract syntax of the Skalla OLAP query language.
//!
//! A query is a base-values declaration followed by a sequence of `MD`
//! statements — a textual form of the complex GMDJ expressions of
//! Sect. 2.2:
//!
//! ```text
//! BASE SELECT DISTINCT source_as, dest_as FROM flow;
//! MD cnt1 = COUNT(*), sum1 = SUM(num_bytes)
//!    OVER flow
//!    WHERE source_as = b.source_as AND dest_as = b.dest_as;
//! MD cnt2 = COUNT(*)
//!    OVER flow
//!    WHERE source_as = b.source_as AND dest_as = b.dest_as
//!          AND num_bytes >= b.sum1 / b.cnt1;
//! ```
//!
//! Inside `WHERE` and aggregate arguments, unqualified columns refer to the
//! detail relation (`r.`); base columns — including aggregates computed by
//! earlier `MD` statements — are written `b.name`.

use skalla_gmdj::AggFunc;
use skalla_relation::Expr;
use std::fmt;

/// The base-values declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseStmt {
    /// Grouping columns (DISTINCT projection).
    pub columns: Vec<String>,
    /// Fact relation name.
    pub table: String,
    /// Optional explicit key attributes (defaults to all columns).
    pub key: Option<Vec<String>>,
}

/// One aggregate definition `name = FUNC(arg)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggDef {
    /// Output column name.
    pub name: String,
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (`None` for `COUNT(*)`).
    pub input: Option<Expr>,
}

/// One `MD` statement: aggregates over a detail relation under a θ.
#[derive(Debug, Clone, PartialEq)]
pub struct MdStmt {
    /// Aggregates computed by this operator.
    pub aggs: Vec<AggDef>,
    /// Detail relation name.
    pub table: String,
    /// The range condition θ(b, r).
    pub theta: Expr,
}

/// A full query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The base declaration.
    pub base: BaseStmt,
    /// The `MD` chain, innermost first.
    pub mds: Vec<MdStmt>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BASE SELECT DISTINCT {} FROM {}",
            self.base.columns.join(", "),
            self.base.table
        )?;
        if let Some(k) = &self.base.key {
            write!(f, " KEY ({})", k.join(", "))?;
        }
        writeln!(f, ";")?;
        for md in &self.mds {
            write!(f, "MD ")?;
            for (i, a) in md.aggs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match &a.input {
                    Some(e) => write!(f, "{} = {}({e})", a.name, a.func)?,
                    None => write!(f, "{} = {}(*)", a.name, a.func)?,
                }
            }
            writeln!(f, " OVER {} WHERE {};", md.table, md.theta)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_query_shape() {
        let q = Query {
            base: BaseStmt {
                columns: vec!["g".into()],
                table: "t".into(),
                key: None,
            },
            mds: vec![MdStmt {
                aggs: vec![AggDef {
                    name: "c".into(),
                    func: AggFunc::Count,
                    input: None,
                }],
                table: "t".into(),
                theta: Expr::bcol("g").eq(Expr::dcol("g")),
            }],
        };
        let s = q.to_string();
        assert!(s.contains("BASE SELECT DISTINCT g FROM t;"));
        assert!(s.contains("MD c = COUNT(*) OVER t WHERE b.g = r.g;"));
    }
}
