//! # skalla-query — OLAP query language front-end
//!
//! A small textual language for complex GMDJ expressions: a `BASE`
//! declaration (the base-values relation) followed by `MD` statements
//! (GMDJ operators). The front-end parses ([`parser`]), compiles to the
//! algebra ([`compile()`]), and plugs into the Egil planner and the cluster
//! runtime for one-call execution and `EXPLAIN`.
//!
//! ```
//! use skalla_query::parse_query;
//! let q = parse_query("
//!     BASE SELECT DISTINCT source_as FROM flow;
//!     MD flows = COUNT(*), traffic = SUM(num_bytes)
//!        OVER flow WHERE source_as = b.source_as;
//! ").unwrap();
//! assert_eq!(q.mds.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod cube;
pub mod parser;
pub mod render;

pub use ast::{AggDef, BaseStmt, MdStmt, Query};
pub use compile::{compile, compile_text, explain, run};
pub use cube::{cube, cube_with_rollup, CubeLevel, CubeResult, LevelSource};
pub use parser::parse_query;
pub use render::{render, render_cube_levels};
