//! Distributed data cubes (Gray et al., the paper's reference \[12\])
//! served from the aggregation lattice.
//!
//! The paper lists data cubes among the OLAP queries GMDJ expressions
//! capture. A cube over dimensions `d₁…d_k` is the union of 2^k grouped
//! aggregations, one per grouping set, with `ALL` markers (here `NULL`)
//! on the rolled-up dimensions.
//!
//! Two serving strategies:
//!
//! * **Roll-up** (the default, [`cube`]): ONE distributed query computes
//!   the finest grouping set with its aggregates *decomposed into
//!   physical sub-aggregates* (AVG → SUM + COUNT, VAR/STDDEV → SUM +
//!   SUM² + COUNT — the same decomposition sites ship in Theorem 1).
//!   Every coarser grouping set, down to the grand total, is then derived
//!   locally by merging those sub-aggregates along the lattice with
//!   [`AggSpec::merge`]/[`AggSpec::finalize`] — zero additional site
//!   traffic, and deterministic: finest groups merge in sorted key
//!   order, so the derived bits never depend on arrival order.
//! * **Direct** ([`cube_with_rollup`] with `rollup = false`): every
//!   grouping set runs as its own distributed GMDJ plan, each enjoying
//!   the full optimization suite (and, behind a [`Skalla`] engine, the
//!   semantic cache).
//!
//! Each level of the result records its provenance ([`LevelSource`]):
//! whether it was computed by a distributed query, served from the
//! semantic result cache, or rolled up locally from the finest level.
//!
//! [`Skalla`]: skalla_core::Skalla

use skalla_core::{ExecStats, OptFlags, Planner, Warehouse};
use skalla_gmdj::patterns::group_by;
use skalla_gmdj::{AggFunc, AggSpec};
use skalla_relation::{Error, Expr, Field, Relation, Result, Row, Schema, Value};
use std::collections::HashMap;

/// How one grouping set of a cube was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelSource {
    /// A distributed GMDJ query ran against the sites.
    Computed,
    /// The distributed query was answered by the semantic result cache
    /// without contacting any site.
    CacheHit,
    /// Derived locally by merging the finest level's sub-aggregates —
    /// no distributed query at all.
    RolledUp,
}

impl std::fmt::Display for LevelSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LevelSource::Computed => "computed",
            LevelSource::CacheHit => "cache-hit",
            LevelSource::RolledUp => "rolled-up",
        })
    }
}

/// One grouping set of a cube result, with provenance.
#[derive(Debug, Clone)]
pub struct CubeLevel {
    /// The grouping-set dimensions (empty for the grand total).
    pub dims: Vec<String>,
    /// How this level was produced.
    pub source: LevelSource,
    /// Rows this level contributed to [`CubeResult::relation`].
    pub rows: usize,
    /// Execution statistics of the distributed query that produced this
    /// level; `None` for rolled-up levels (they cost no site traffic).
    pub stats: Option<ExecStats>,
}

/// The result of a cube computation.
#[derive(Debug, Clone)]
pub struct CubeResult {
    /// Dimension columns (in the requested order) followed by aggregate
    /// columns; rolled-up dimensions are `NULL`.
    pub relation: Relation,
    /// Per-grouping-set provenance and statistics, finest first,
    /// grand total last.
    pub levels: Vec<CubeLevel>,
}

impl CubeResult {
    /// Total bytes moved across all distributed queries.
    pub fn total_bytes(&self) -> u64 {
        self.levels
            .iter()
            .filter_map(|l| l.stats.as_ref())
            .map(ExecStats::total_bytes)
            .sum()
    }

    /// Total synchronization rounds across all distributed queries.
    pub fn total_rounds(&self) -> usize {
        self.levels
            .iter()
            .filter_map(|l| l.stats.as_ref())
            .map(ExecStats::n_rounds)
            .sum()
    }

    /// Number of grouping sets served without any distributed query.
    pub fn rolled_up_levels(&self) -> usize {
        self.levels
            .iter()
            .filter(|l| l.source == LevelSource::RolledUp)
            .count()
    }
}

/// All subsets of `dims`, from the full set down to the empty (grand
/// total) set, in decreasing-size order.
fn grouping_sets(dims: &[&str]) -> Vec<Vec<String>> {
    let k = dims.len();
    let mut sets: Vec<Vec<String>> = (0..(1u32 << k))
        .map(|mask| {
            dims.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, d)| d.to_string())
                .collect()
        })
        .collect();
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    sets
}

/// Compute `CUBE BY dims` of `aggs` over a distributed fact relation,
/// serving coarse grouping sets by local roll-up of the finest level
/// (see the module docs; use [`cube_with_rollup`] to ablate).
pub fn cube(
    warehouse: &(impl Warehouse + ?Sized),
    table: &str,
    dims: &[&str],
    aggs: &[AggSpec],
    flags: OptFlags,
) -> Result<CubeResult> {
    cube_with_rollup(warehouse, table, dims, aggs, flags, true)
}

/// [`cube`] with the roll-up strategy explicit: `rollup = true` derives
/// coarse grouping sets locally from the finest level's sub-aggregates;
/// `rollup = false` runs one distributed query per grouping set.
pub fn cube_with_rollup(
    warehouse: &(impl Warehouse + ?Sized),
    table: &str,
    dims: &[&str],
    aggs: &[AggSpec],
    flags: OptFlags,
    rollup: bool,
) -> Result<CubeResult> {
    if dims.is_empty() {
        return Err(Error::Plan("cube needs at least one dimension".into()));
    }
    if aggs.is_empty() {
        return Err(Error::Plan("cube needs at least one aggregate".into()));
    }

    // Output schema: dims (typed from the fact schema) ⊕ aggregates.
    let fact_schema = {
        let cat = warehouse.catalog();
        cat.get(table)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?
            .schema()
            .clone()
    };
    let mut fields: Vec<Field> = Vec::with_capacity(dims.len() + aggs.len());
    for d in dims {
        fields.push(fact_schema.field(fact_schema.index_of(d)?).clone());
    }
    for a in aggs {
        fields.push(a.logical_field(&fact_schema)?);
    }
    let out_schema = Schema::new(fields)?;

    if rollup {
        cube_rolled(warehouse, table, dims, aggs, flags, out_schema)
    } else {
        cube_direct(warehouse, table, dims, aggs, flags, out_schema)
    }
}

/// The provenance of one distributed query's result.
fn query_source(stats: &ExecStats) -> LevelSource {
    if stats.is_cache_hit() {
        LevelSource::CacheHit
    } else {
        LevelSource::Computed
    }
}

/// Decompose the requested aggregates into the *physical* sub-aggregate
/// specs the finest-level query computes — the same SUM/COUNT/SUM²
/// decomposition [`AggSpec::physical_fields`] ships between sites, so
/// the merged-and-finalized values carry the engine's exact bits.
fn decompose(aggs: &[AggSpec]) -> Result<Vec<AggSpec>> {
    let mut phys = Vec::new();
    for a in aggs {
        match a.func {
            AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max => phys.push(a.clone()),
            AggFunc::Avg => {
                let e = input_of(a)?;
                phys.push(AggSpec::over_expr(
                    AggFunc::Sum,
                    e.clone(),
                    format!("{}__sum", a.name),
                ));
                phys.push(AggSpec::over_expr(
                    AggFunc::Count,
                    e.clone(),
                    format!("{}__cnt", a.name),
                ));
            }
            AggFunc::Var | AggFunc::StdDev => {
                let e = input_of(a)?;
                phys.push(AggSpec::over_expr(
                    AggFunc::Sum,
                    e.clone(),
                    format!("{}__sum", a.name),
                ));
                phys.push(AggSpec::over_expr(
                    AggFunc::Sum,
                    e.clone().mul(e.clone()),
                    format!("{}__sumsq", a.name),
                ));
                phys.push(AggSpec::over_expr(
                    AggFunc::Count,
                    e.clone(),
                    format!("{}__cnt", a.name),
                ));
            }
        }
    }
    Ok(phys)
}

fn input_of(a: &AggSpec) -> Result<&Expr> {
    a.input
        .as_ref()
        .ok_or_else(|| Error::Plan(format!("{} aggregate {:?} has no input", a.func, a.name)))
}

/// Column indices of one aggregate's accumulator slots in the finest
/// (physical) result schema, in [`AggSpec::init_acc`] order.
fn acc_columns(a: &AggSpec, schema: &Schema) -> Result<Vec<usize>> {
    let names: Vec<String> = match a.func {
        AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max => vec![a.name.clone()],
        AggFunc::Avg => vec![format!("{}__sum", a.name), format!("{}__cnt", a.name)],
        AggFunc::Var | AggFunc::StdDev => vec![
            format!("{}__sum", a.name),
            format!("{}__sumsq", a.name),
            format!("{}__cnt", a.name),
        ],
    };
    names.iter().map(|n| schema.index_of(n)).collect()
}

/// Roll-up serving: one distributed query at the finest level, every
/// coarser grouping set merged locally along the lattice.
fn cube_rolled(
    warehouse: &(impl Warehouse + ?Sized),
    table: &str,
    dims: &[&str],
    aggs: &[AggSpec],
    flags: OptFlags,
    out_schema: Schema,
) -> Result<CubeResult> {
    let planner = Planner::new(warehouse.distribution());
    let phys_aggs = decompose(aggs)?;
    let expr = group_by(table, dims, phys_aggs);
    let plan = planner.optimize(&expr, flags);
    let out = warehouse.execute(&plan)?;
    let finest_source = query_source(&out.stats);

    // Sorted finest groups: the lattice merges below run in this order,
    // so every derived bit is independent of site arrival order.
    let finest = out.relation.sorted_by(dims)?;
    let fschema = finest.schema().clone();
    let dim_idx: Vec<usize> = dims
        .iter()
        .map(|d| fschema.index_of(d))
        .collect::<Result<_>>()?;
    let agg_cols: Vec<Vec<usize>> = aggs
        .iter()
        .map(|a| acc_columns(a, &fschema))
        .collect::<Result<_>>()?;

    let mut rows: Vec<Row> = Vec::new();
    let mut levels = Vec::new();
    for set in grouping_sets(dims) {
        let keep: Vec<usize> = (0..dims.len())
            .filter(|i| set.iter().any(|s| s == dims[*i]))
            .collect();
        let (level_rows, source, stats) = if keep.len() == dims.len() {
            // Finest level: finalize each group's accumulators directly.
            let mut out_rows = Vec::with_capacity(finest.len());
            for row in finest.rows() {
                out_rows.push(finalize_row(row, &dim_idx, &keep, dims, aggs, &agg_cols)?);
            }
            (out_rows, finest_source, Some(out.stats.clone()))
        } else {
            // Coarser level: merge finest accumulators group by group.
            (
                roll_up(&finest, &dim_idx, &keep, dims, aggs, &agg_cols)?,
                LevelSource::RolledUp,
                None,
            )
        };
        levels.push(CubeLevel {
            dims: set,
            source,
            rows: level_rows.len(),
            stats,
        });
        rows.extend(level_rows);
    }

    if let Some(cache) = warehouse.semantic_cache() {
        cache.tally_rollups(
            levels
                .iter()
                .filter(|l| l.source == LevelSource::RolledUp)
                .count() as u64,
        );
    }

    Ok(CubeResult {
        relation: Relation::new(out_schema, rows)?,
        levels,
    })
}

/// Finalize one finest-level row into an output row: kept dimensions
/// pass through, rolled-up dimensions become `NULL`, and each
/// aggregate's physical slots finalize to its logical value.
fn finalize_row(
    row: &Row,
    dim_idx: &[usize],
    keep: &[usize],
    dims: &[&str],
    aggs: &[AggSpec],
    agg_cols: &[Vec<usize>],
) -> Result<Row> {
    let mut vs = Vec::with_capacity(dims.len() + aggs.len());
    for (i, idx) in dim_idx.iter().enumerate() {
        if keep.contains(&i) {
            vs.push(row.get(*idx).clone());
        } else {
            vs.push(Value::Null);
        }
    }
    for (a, cols) in aggs.iter().zip(agg_cols) {
        let acc: Vec<Value> = cols.iter().map(|c| row.get(*c).clone()).collect();
        vs.push(a.finalize(&acc)?);
    }
    Ok(Row::new(vs))
}

/// Merge the finest level's sub-aggregates into one coarser grouping
/// set. Groups appear in first-occurrence order of the (sorted) finest
/// relation and each group's accumulators merge in that same order —
/// fully deterministic.
fn roll_up(
    finest: &Relation,
    dim_idx: &[usize],
    keep: &[usize],
    dims: &[&str],
    aggs: &[AggSpec],
    agg_cols: &[Vec<usize>],
) -> Result<Vec<Row>> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<Vec<Vec<Value>>> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in finest.rows() {
        let key: Vec<Value> = keep.iter().map(|i| row.get(dim_idx[*i]).clone()).collect();
        let at = match index.get(&key) {
            Some(at) => *at,
            None => {
                let at = order.len();
                index.insert(key.clone(), at);
                order.push(key);
                accs.push(
                    aggs.iter()
                        .map(|a| {
                            let mut acc = Vec::with_capacity(a.acc_width());
                            a.init_acc(&mut acc);
                            acc
                        })
                        .collect(),
                );
                at
            }
        };
        for ((a, cols), acc) in aggs.iter().zip(agg_cols).zip(accs[at].iter_mut()) {
            let other: Vec<Value> = cols.iter().map(|c| row.get(*c).clone()).collect();
            a.merge(acc, &other)?;
        }
    }
    // The grand total has exactly one (empty-key) group even over an
    // empty finest level: initial accumulators finalize to COUNT 0 /
    // NULL, matching an aggregate over an empty range.
    if keep.is_empty() && order.is_empty() {
        order.push(Vec::new());
        accs.push(
            aggs.iter()
                .map(|a| {
                    let mut acc = Vec::with_capacity(a.acc_width());
                    a.init_acc(&mut acc);
                    acc
                })
                .collect(),
        );
    }
    let mut out = Vec::with_capacity(order.len());
    for (key, group) in order.iter().zip(&accs) {
        let mut vs = Vec::with_capacity(dims.len() + aggs.len());
        let mut key_it = key.iter();
        for i in 0..dims.len() {
            if keep.contains(&i) {
                vs.push(key_it.next().cloned().unwrap_or(Value::Null));
            } else {
                vs.push(Value::Null);
            }
        }
        for (a, acc) in aggs.iter().zip(group) {
            vs.push(a.finalize(acc)?);
        }
        out.push(Row::new(vs));
    }
    Ok(out)
}

/// Direct serving: one distributed GMDJ query per grouping set (the
/// pre-roll-up strategy, kept as an ablation and oracle).
fn cube_direct(
    warehouse: &(impl Warehouse + ?Sized),
    table: &str,
    dims: &[&str],
    aggs: &[AggSpec],
    flags: OptFlags,
    out_schema: Schema,
) -> Result<CubeResult> {
    let planner = Planner::new(warehouse.distribution());
    let mut rows: Vec<Row> = Vec::new();
    let mut levels = Vec::new();
    for set in grouping_sets(dims) {
        let set_refs: Vec<&str> = set.iter().map(String::as_str).collect();
        let expr = if set.is_empty() {
            // Grand total: a single all-NULL-free group via a literal
            // one-row base with a constant marker column that every detail
            // tuple matches.
            let base = Relation::new(
                Schema::of(&[("__all", skalla_relation::DataType::Int)]),
                vec![Row::new(vec![Value::Int(0)])],
            )?;
            skalla_gmdj::GmdjExprBuilder::literal_base(base)
                .gmdj(
                    skalla_gmdj::Gmdj::new(table)
                        .block(skalla_relation::Expr::True, aggs.to_vec()),
                )
                .build()
        } else {
            group_by(table, &set_refs, aggs.to_vec())
        };
        let plan = planner.optimize(&expr, flags);
        let out = warehouse.execute(&plan)?;

        // Reshape into the cube schema with NULL (ALL) markers.
        let res_schema = out.relation.schema().clone();
        let mut level_rows = 0usize;
        for row in out.relation.rows() {
            let mut vs = Vec::with_capacity(out_schema.len());
            for d in dims {
                match set.iter().position(|s| s == d) {
                    Some(_) => {
                        let idx = res_schema.index_of(d)?;
                        vs.push(row.get(idx).clone());
                    }
                    None => vs.push(Value::Null),
                }
            }
            for a in aggs {
                let idx = res_schema.index_of(&a.name)?;
                vs.push(row.get(idx).clone());
            }
            rows.push(Row::new(vs));
            level_rows += 1;
        }
        levels.push(CubeLevel {
            dims: set,
            source: query_source(&out.stats),
            rows: level_rows,
            stats: Some(out.stats),
        });
    }

    Ok(CubeResult {
        relation: Relation::new(out_schema, rows)?,
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_core::Cluster;
    use skalla_relation::{row, DataType, Domain, DomainMap};

    fn cluster() -> Cluster {
        let schema = Schema::of(&[
            ("g", DataType::Int),
            ("h", DataType::Str),
            ("v", DataType::Int),
        ]);
        let p0 = Relation::new(
            schema.clone(),
            vec![row![1i64, "a", 10i64], row![1i64, "b", 20i64]],
        )
        .unwrap();
        let p1 = Relation::new(
            schema,
            vec![row![2i64, "a", 5i64], row![2i64, "a", 15i64]],
        )
        .unwrap();
        Cluster::from_partitions(
            "t",
            vec![
                (p0, DomainMap::new().with("g", Domain::IntRange(1, 1))),
                (p1, DomainMap::new().with("g", Domain::IntRange(2, 2))),
            ],
        )
    }

    fn all_aggs() -> Vec<AggSpec> {
        vec![
            AggSpec::count("n"),
            AggSpec::sum("v", "s"),
            AggSpec::avg("v", "a"),
            AggSpec::min("v", "mn"),
            AggSpec::max("v", "mx"),
            AggSpec::var("v", "vr"),
            AggSpec::stddev("v", "sd"),
        ]
    }

    #[test]
    fn grouping_sets_enumerated_coarsening() {
        let sets = grouping_sets(&["a", "b"]);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0], vec!["a".to_string(), "b".to_string()]);
        assert!(sets[3].is_empty());
    }

    #[test]
    fn two_dimensional_cube() {
        let c = cluster();
        let result = cube(
            &c,
            "t",
            &["g", "h"],
            &[AggSpec::count("n"), AggSpec::sum("v", "s")],
            OptFlags::all(),
        )
        .unwrap();
        let rel = result.relation.sorted_by(&["g", "h"]).unwrap();
        assert_eq!(rel.schema().column_names(), ["g", "h", "n", "s"]);
        // 2^2 grouping sets: (g,h) 3 groups, (g) 2, (h) 2, () 1 → 8 rows.
        assert_eq!(rel.len(), 8);

        let find = |g: Value, h: Value| {
            rel.rows()
                .iter()
                .find(|r| r.get(0) == &g && r.get(1) == &h)
                .cloned()
                .unwrap_or_else(|| panic!("row ({g}, {h}) missing in {rel}"))
        };
        // Finest level.
        assert_eq!(find(Value::Int(1), Value::str("a")).get(3), &Value::Int(10));
        // Roll-up on h.
        assert_eq!(find(Value::Int(1), Value::Null).get(3), &Value::Int(30));
        assert_eq!(find(Value::Int(2), Value::Null).get(3), &Value::Int(20));
        // Roll-up on g.
        assert_eq!(find(Value::Null, Value::str("a")).get(3), &Value::Int(30));
        // Grand total.
        let total = find(Value::Null, Value::Null);
        assert_eq!(total.get(2), &Value::Int(4));
        assert_eq!(total.get(3), &Value::Int(50));

        // Roll-up serving: only the finest level ran distributed.
        assert_eq!(result.levels.len(), 4);
        assert_eq!(result.levels[0].source, LevelSource::Computed);
        assert_eq!(result.rolled_up_levels(), 3);
        assert!(result.total_bytes() > 0);
        assert!(result.total_rounds() >= 1);
    }

    #[test]
    fn rollup_matches_direct_on_every_aggregate() {
        // Int inputs: every f64 in play is exactly representable, so the
        // rolled-up lattice must agree with per-level distributed
        // execution bit for bit — including AVG, VAR and STDDEV.
        let c = cluster();
        let rolled = cube_with_rollup(&c, "t", &["g", "h"], &all_aggs(), OptFlags::all(), true)
            .unwrap();
        let direct = cube_with_rollup(&c, "t", &["g", "h"], &all_aggs(), OptFlags::all(), false)
            .unwrap();
        let key = |r: &Relation| r.canonicalized();
        assert_eq!(key(&rolled.relation), key(&direct.relation));
        // Provenance: direct ran 4 distributed queries, rolled ran 1.
        assert_eq!(direct.rolled_up_levels(), 0);
        assert_eq!(rolled.rolled_up_levels(), 3);
        assert!(rolled.total_bytes() < direct.total_bytes());
        assert!(
            direct.levels.iter().all(|l| l.stats.is_some()),
            "direct levels all carry stats"
        );
    }

    #[test]
    fn cube_errors() {
        let c = cluster();
        assert!(cube(&c, "t", &[], &[AggSpec::count("n")], OptFlags::all()).is_err());
        assert!(cube(&c, "t", &["g"], &[], OptFlags::all()).is_err());
        assert!(cube(&c, "missing", &["g"], &[AggSpec::count("n")], OptFlags::all()).is_err());
        assert!(cube(&c, "t", &["nope"], &[AggSpec::count("n")], OptFlags::all()).is_err());
    }

    #[test]
    fn cube_matches_flag_free_run() {
        let c = cluster();
        let a = cube(&c, "t", &["g"], &[AggSpec::count("n")], OptFlags::all()).unwrap();
        let b = cube(&c, "t", &["g"], &[AggSpec::count("n")], OptFlags::none()).unwrap();
        assert!(a.relation.same_bag(&b.relation));
    }
}
