//! Distributed data cubes (Gray et al., the paper's reference \[12\]).
//!
//! The paper lists data cubes among the OLAP queries GMDJ expressions
//! capture. A cube over dimensions `d₁…d_k` is the union of 2^k grouped
//! aggregations, one per grouping set, with `ALL` markers (here `NULL`)
//! on the rolled-up dimensions. Each grouping set is a one-operator GMDJ
//! expression; every one of them enjoys the full optimization suite
//! (group reduction, Prop 2 folding, …), so the cube runs in at most 2^k
//! rounds — and in exactly 2^k single synchronizations when the finest
//! grouping is partition-aligned.

use skalla_core::{ExecStats, OptFlags, Planner, Warehouse};
use skalla_gmdj::patterns::group_by;
use skalla_gmdj::AggSpec;
use skalla_relation::{Error, Field, Relation, Result, Row, Schema, Value};

/// The result of a cube computation.
#[derive(Debug, Clone)]
pub struct CubeResult {
    /// Dimension columns (in the requested order) followed by aggregate
    /// columns; rolled-up dimensions are `NULL`.
    pub relation: Relation,
    /// Execution statistics per grouping set, coarsest last.
    pub per_grouping_set: Vec<(Vec<String>, ExecStats)>,
}

impl CubeResult {
    /// Total bytes moved across all grouping-set queries.
    pub fn total_bytes(&self) -> u64 {
        self.per_grouping_set
            .iter()
            .map(|(_, s)| s.total_bytes())
            .sum()
    }

    /// Total synchronization rounds across all grouping-set queries.
    pub fn total_rounds(&self) -> usize {
        self.per_grouping_set.iter().map(|(_, s)| s.n_rounds()).sum()
    }
}

/// All subsets of `dims`, from the full set down to the empty (grand
/// total) set, in decreasing-size order.
fn grouping_sets(dims: &[&str]) -> Vec<Vec<String>> {
    let k = dims.len();
    let mut sets: Vec<Vec<String>> = (0..(1u32 << k))
        .map(|mask| {
            dims.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, d)| d.to_string())
                .collect()
        })
        .collect();
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    sets
}

/// Compute `CUBE BY dims` of `aggs` over a distributed fact relation.
///
/// The grand-total grouping set (no dimensions) is evaluated against a
/// one-row literal base; all others derive their base from the fact
/// relation and run as ordinary distributed GMDJ plans under `flags`.
pub fn cube(
    warehouse: &(impl Warehouse + ?Sized),
    table: &str,
    dims: &[&str],
    aggs: &[AggSpec],
    flags: OptFlags,
) -> Result<CubeResult> {
    if dims.is_empty() {
        return Err(Error::Plan("cube needs at least one dimension".into()));
    }
    if aggs.is_empty() {
        return Err(Error::Plan("cube needs at least one aggregate".into()));
    }
    let planner = Planner::new(warehouse.distribution());

    // Output schema: dims (typed from the fact schema) ⊕ aggregates.
    let fact_schema = {
        let cat = warehouse.catalog();
        cat.get(table)
            .ok_or_else(|| Error::Plan(format!("unknown table {table:?}")))?
            .schema()
            .clone()
    };
    let mut fields: Vec<Field> = Vec::with_capacity(dims.len() + aggs.len());
    for d in dims {
        fields.push(fact_schema.field(fact_schema.index_of(d)?).clone());
    }
    for a in aggs {
        fields.push(a.logical_field(&fact_schema)?);
    }
    let out_schema = Schema::new(fields)?;

    let mut rows: Vec<Row> = Vec::new();
    let mut per_set = Vec::new();
    for set in grouping_sets(dims) {
        let set_refs: Vec<&str> = set.iter().map(String::as_str).collect();
        let expr = if set.is_empty() {
            // Grand total: a single all-NULL-free group via a literal
            // one-row base with a constant marker column that every detail
            // tuple matches.
            let base = Relation::new(
                Schema::of(&[("__all", skalla_relation::DataType::Int)]),
                vec![Row::new(vec![Value::Int(0)])],
            )?;
            skalla_gmdj::GmdjExprBuilder::literal_base(base)
                .gmdj(
                    skalla_gmdj::Gmdj::new(table)
                        .block(skalla_relation::Expr::True, aggs.to_vec()),
                )
                .build()
        } else {
            group_by(table, &set_refs, aggs.to_vec())
        };
        let plan = planner.optimize(&expr, flags);
        let out = warehouse.execute(&plan)?;

        // Reshape into the cube schema with NULL (ALL) markers.
        let res_schema = out.relation.schema().clone();
        for row in out.relation.rows() {
            let mut vs = Vec::with_capacity(out_schema.len());
            for d in dims {
                match set.iter().position(|s| s == d) {
                    Some(_) => {
                        let idx = res_schema.index_of(d)?;
                        vs.push(row.get(idx).clone());
                    }
                    None => vs.push(Value::Null),
                }
            }
            for a in aggs {
                let idx = res_schema.index_of(&a.name)?;
                vs.push(row.get(idx).clone());
            }
            rows.push(Row::new(vs));
        }
        per_set.push((set, out.stats));
    }

    Ok(CubeResult {
        relation: Relation::new(out_schema, rows)?,
        per_grouping_set: per_set,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_core::Cluster;
    use skalla_relation::{row, DataType, Domain, DomainMap};

    fn cluster() -> Cluster {
        let schema = Schema::of(&[
            ("g", DataType::Int),
            ("h", DataType::Str),
            ("v", DataType::Int),
        ]);
        let p0 = Relation::new(
            schema.clone(),
            vec![row![1i64, "a", 10i64], row![1i64, "b", 20i64]],
        )
        .unwrap();
        let p1 = Relation::new(
            schema,
            vec![row![2i64, "a", 5i64], row![2i64, "a", 15i64]],
        )
        .unwrap();
        Cluster::from_partitions(
            "t",
            vec![
                (p0, DomainMap::new().with("g", Domain::IntRange(1, 1))),
                (p1, DomainMap::new().with("g", Domain::IntRange(2, 2))),
            ],
        )
    }

    #[test]
    fn grouping_sets_enumerated_coarsening() {
        let sets = grouping_sets(&["a", "b"]);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0], vec!["a".to_string(), "b".to_string()]);
        assert!(sets[3].is_empty());
    }

    #[test]
    fn two_dimensional_cube() {
        let c = cluster();
        let result = cube(
            &c,
            "t",
            &["g", "h"],
            &[AggSpec::count("n"), AggSpec::sum("v", "s")],
            OptFlags::all(),
        )
        .unwrap();
        let rel = result.relation.sorted_by(&["g", "h"]).unwrap();
        assert_eq!(rel.schema().column_names(), ["g", "h", "n", "s"]);
        // 2^2 grouping sets: (g,h) 3 groups, (g) 2, (h) 2, () 1 → 8 rows.
        assert_eq!(rel.len(), 8);

        let find = |g: Value, h: Value| {
            rel.rows()
                .iter()
                .find(|r| r.get(0) == &g && r.get(1) == &h)
                .cloned()
                .unwrap_or_else(|| panic!("row ({g}, {h}) missing in {rel}"))
        };
        // Finest level.
        assert_eq!(find(Value::Int(1), Value::str("a")).get(3), &Value::Int(10));
        // Roll-up on h.
        assert_eq!(find(Value::Int(1), Value::Null).get(3), &Value::Int(30));
        assert_eq!(find(Value::Int(2), Value::Null).get(3), &Value::Int(20));
        // Roll-up on g.
        assert_eq!(find(Value::Null, Value::str("a")).get(3), &Value::Int(30));
        // Grand total.
        let total = find(Value::Null, Value::Null);
        assert_eq!(total.get(2), &Value::Int(4));
        assert_eq!(total.get(3), &Value::Int(50));

        assert_eq!(result.per_grouping_set.len(), 4);
        assert!(result.total_bytes() > 0);
        assert!(result.total_rounds() >= 4);
    }

    #[test]
    fn cube_errors() {
        let c = cluster();
        assert!(cube(&c, "t", &[], &[AggSpec::count("n")], OptFlags::all()).is_err());
        assert!(cube(&c, "t", &["g"], &[], OptFlags::all()).is_err());
        assert!(cube(&c, "missing", &["g"], &[AggSpec::count("n")], OptFlags::all()).is_err());
        assert!(cube(&c, "t", &["nope"], &[AggSpec::count("n")], OptFlags::all()).is_err());
    }

    #[test]
    fn cube_matches_flag_free_run() {
        let c = cluster();
        let a = cube(&c, "t", &["g"], &[AggSpec::count("n")], OptFlags::all()).unwrap();
        let b = cube(&c, "t", &["g"], &[AggSpec::count("n")], OptFlags::none()).unwrap();
        assert!(a.relation.same_bag(&b.relation));
    }
}
