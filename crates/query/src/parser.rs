//! Parser for the OLAP query language.
//!
//! Statement structure (keywords, names, punctuation) is parsed here;
//! scalar expressions inside `WHERE` clauses and aggregate arguments are
//! delegated to [`skalla_relation::parse_expr`] with the detail side as
//! the default for unqualified columns.

use crate::ast::{AggDef, BaseStmt, MdStmt, Query};
use skalla_gmdj::AggFunc;
use skalla_relation::{parse_expr, Error, Result, Side};

/// Strip `--` line comments (outside string literals).
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let mut in_quote = false;
        let bytes = line.as_bytes();
        let mut cut = line.len();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\'' => in_quote = !in_quote,
                b'-' if !in_quote && i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                    cut = i;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        out.push_str(&line[..cut]);
        out.push('\n');
    }
    out
}

/// Split source text into `;`-terminated statements, respecting single
/// quotes. A missing trailing `;` on the last statement is tolerated.
fn split_statements(text: &str) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in text.chars() {
        match c {
            '\'' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            ';' if !in_quote => {
                if !cur.trim().is_empty() {
                    out.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            }
            _ => cur.push(c),
        }
    }
    if in_quote {
        return Err(Error::Parse("unterminated string literal".into()));
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Find the first occurrence of `keyword` as a standalone word outside
/// quotes (case-insensitive); returns its byte offset.
fn find_keyword(text: &str, keyword: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let kw = keyword.as_bytes();
    let mut in_quote = false;
    let mut i = 0;
    while i + kw.len() <= bytes.len() {
        let c = bytes[i];
        if c == b'\'' {
            in_quote = !in_quote;
            i += 1;
            continue;
        }
        if !in_quote
            && text[i..i + kw.len()].eq_ignore_ascii_case(keyword)
            && (i == 0 || !is_word_byte(bytes[i - 1]))
            && (i + kw.len() == bytes.len() || !is_word_byte(bytes[i + kw.len()]))
        {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn parse_ident(s: &str) -> Result<String> {
    let t = s.trim();
    if t.is_empty()
        || !t
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
        || t.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return Err(Error::Parse(format!("invalid identifier {t:?}")));
    }
    Ok(t.to_string())
}

fn parse_ident_list(s: &str) -> Result<Vec<String>> {
    let cols: Result<Vec<String>> = s.split(',').map(parse_ident).collect();
    let cols = cols?;
    if cols.is_empty() {
        return Err(Error::Parse("empty column list".into()));
    }
    Ok(cols)
}

/// Parse `BASE SELECT DISTINCT cols FROM table [KEY (cols)]`.
fn parse_base(stmt: &str) -> Result<BaseStmt> {
    let s = stmt.trim();
    let rest = strip_keyword(s, "BASE")?;
    let rest = strip_keyword(rest, "SELECT")?;
    let rest = strip_keyword(rest, "DISTINCT")?;
    let from = find_keyword(rest, "FROM")
        .ok_or_else(|| Error::Parse("BASE statement missing FROM".into()))?;
    let columns = parse_ident_list(&rest[..from])?;
    let after_from = rest[from + 4..].trim();
    let (table_part, key) = match find_keyword(after_from, "KEY") {
        Some(k) => {
            let key_part = after_from[k + 3..].trim();
            let inner = key_part
                .strip_prefix('(')
                .and_then(|t| t.strip_suffix(')'))
                .ok_or_else(|| Error::Parse("KEY clause must be parenthesized".into()))?;
            (&after_from[..k], Some(parse_ident_list(inner)?))
        }
        None => (after_from, None),
    };
    Ok(BaseStmt {
        columns,
        table: parse_ident(table_part)?,
        key,
    })
}

fn strip_keyword<'a>(s: &'a str, kw: &str) -> Result<&'a str> {
    let t = s.trim_start();
    if t.len() >= kw.len()
        && t[..kw.len()].eq_ignore_ascii_case(kw)
        && t[kw.len()..]
            .chars()
            .next()
            .map(|c| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(true)
    {
        Ok(&t[kw.len()..])
    } else {
        Err(Error::Parse(format!("expected keyword {kw} in {t:?}")))
    }
}

/// Split a comma-separated aggregate list, respecting parentheses and
/// quotes.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_quote = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '(' if !in_quote => depth += 1,
            ')' if !in_quote => depth -= 1,
            ',' if !in_quote && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Parse `name = FUNC(arg)`.
fn parse_agg(s: &str) -> Result<AggDef> {
    let eq = s
        .find('=')
        .ok_or_else(|| Error::Parse(format!("aggregate {s:?} missing '='")))?;
    let name = parse_ident(&s[..eq])?;
    let call = s[eq + 1..].trim();
    let open = call
        .find('(')
        .ok_or_else(|| Error::Parse(format!("aggregate {call:?} missing '('")))?;
    let func = match call[..open].trim().to_ascii_uppercase().as_str() {
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "AVG" => AggFunc::Avg,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        "VAR" | "VARIANCE" => AggFunc::Var,
        "STDDEV" | "STDEV" => AggFunc::StdDev,
        other => return Err(Error::Parse(format!("unknown aggregate function {other:?}"))),
    };
    let inner = call[open..]
        .strip_prefix('(')
        .and_then(|t| t.trim_end().strip_suffix(')'))
        .ok_or_else(|| Error::Parse(format!("unbalanced parentheses in {call:?}")))?;
    let input = match inner.trim() {
        "*" => {
            if func != AggFunc::Count {
                return Err(Error::Parse(format!("{func}(*) is not valid")));
            }
            None
        }
        expr_text => Some(parse_expr(expr_text, Side::Detail)?),
    };
    Ok(AggDef { name, func, input })
}

/// Parse `MD aggs OVER table WHERE theta`.
fn parse_md(stmt: &str) -> Result<MdStmt> {
    let rest = strip_keyword(stmt.trim(), "MD")?;
    let over = find_keyword(rest, "OVER")
        .ok_or_else(|| Error::Parse("MD statement missing OVER".into()))?;
    let aggs: Result<Vec<AggDef>> = split_top_level_commas(&rest[..over])
        .into_iter()
        .map(parse_agg)
        .collect();
    let after_over = &rest[over + 4..];
    let where_pos = find_keyword(after_over, "WHERE")
        .ok_or_else(|| Error::Parse("MD statement missing WHERE".into()))?;
    let table = parse_ident(&after_over[..where_pos])?;
    let theta = parse_expr(&after_over[where_pos + 5..], Side::Detail)?;
    Ok(MdStmt {
        aggs: aggs?,
        table,
        theta,
    })
}

/// Parse a full query: one `BASE` statement followed by one or more `MD`
/// statements.
pub fn parse_query(text: &str) -> Result<Query> {
    let stmts = split_statements(&strip_comments(text))?;
    if stmts.is_empty() {
        return Err(Error::Parse("empty query".into()));
    }
    let base = parse_base(&stmts[0])?;
    let mds: Result<Vec<MdStmt>> = stmts[1..].iter().map(|s| parse_md(s)).collect();
    let mds = mds?;
    if mds.is_empty() {
        return Err(Error::Parse("query has no MD statements".into()));
    }
    Ok(Query { base, mds })
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = "
        BASE SELECT DISTINCT source_as, dest_as FROM flow;
        MD cnt1 = COUNT(*), sum1 = SUM(num_bytes)
           OVER flow
           WHERE source_as = b.source_as AND dest_as = b.dest_as;
        MD cnt2 = COUNT(*)
           OVER flow
           WHERE source_as = b.source_as AND dest_as = b.dest_as
                 AND num_bytes >= b.sum1 / b.cnt1;
    ";

    #[test]
    fn parses_paper_example_1() {
        let q = parse_query(EXAMPLE1).unwrap();
        assert_eq!(q.base.columns, ["source_as", "dest_as"]);
        assert_eq!(q.base.table, "flow");
        assert_eq!(q.mds.len(), 2);
        assert_eq!(q.mds[0].aggs.len(), 2);
        assert_eq!(q.mds[0].aggs[1].func, AggFunc::Sum);
        assert_eq!(
            q.mds[1].theta.to_string(),
            "((r.source_as = b.source_as AND r.dest_as = b.dest_as) AND r.num_bytes >= (b.sum1 / b.cnt1))"
        );
    }

    #[test]
    fn key_clause() {
        let q = parse_query(
            "BASE SELECT DISTINCT a, b FROM t KEY (a);
             MD c = COUNT(*) OVER t WHERE a = b.a;",
        )
        .unwrap();
        assert_eq!(q.base.key, Some(vec!["a".to_string()]));
    }

    #[test]
    fn aggregate_over_expression() {
        let q = parse_query(
            "BASE SELECT DISTINCT g FROM t;
             MD bits = SUM(num_bytes * 8), m = MAX(v) OVER t WHERE g = b.g;",
        )
        .unwrap();
        assert_eq!(
            q.mds[0].aggs[0].input.as_ref().unwrap().to_string(),
            "(r.num_bytes * 8)"
        );
        assert_eq!(q.mds[0].aggs[1].func, AggFunc::Max);
    }

    #[test]
    fn var_and_stddev_parse() {
        let q = parse_query(
            "BASE SELECT DISTINCT g FROM t;
             MD v = VAR(x), sd = STDDEV(x) OVER t WHERE g = b.g;",
        )
        .unwrap();
        assert_eq!(q.mds[0].aggs[0].func, AggFunc::Var);
        assert_eq!(q.mds[0].aggs[1].func, AggFunc::StdDev);
    }

    #[test]
    fn trailing_semicolon_optional_and_case_insensitive() {
        let q = parse_query(
            "base select distinct g from t;
             md c = count(*) over t where g = b.g",
        )
        .unwrap();
        assert_eq!(q.mds.len(), 1);
    }

    #[test]
    fn keywords_inside_strings_do_not_confuse() {
        let q = parse_query(
            "BASE SELECT DISTINCT g FROM t;
             MD c = COUNT(*) OVER t WHERE g = b.g AND name <> 'where over from';",
        )
        .unwrap();
        assert!(q.mds[0].theta.to_string().contains("'where over from'"));
    }

    #[test]
    fn errors() {
        // No MD statements.
        assert!(parse_query("BASE SELECT DISTINCT g FROM t;").is_err());
        // Missing FROM.
        assert!(parse_query("BASE SELECT DISTINCT g t; MD c=COUNT(*) OVER t WHERE g=b.g;").is_err());
        // Bad aggregate function.
        assert!(parse_query(
            "BASE SELECT DISTINCT g FROM t; MD c = MEDIAN(v) OVER t WHERE g = b.g;"
        )
        .is_err());
        // SUM(*) invalid.
        assert!(parse_query(
            "BASE SELECT DISTINCT g FROM t; MD c = SUM(*) OVER t WHERE g = b.g;"
        )
        .is_err());
        // Missing WHERE.
        assert!(
            parse_query("BASE SELECT DISTINCT g FROM t; MD c = COUNT(*) OVER t;").is_err()
        );
        // Unterminated string.
        assert!(parse_query("BASE SELECT DISTINCT g FROM t; MD c = COUNT(*) OVER t WHERE x = 'a;")
            .is_err());
        // Bad identifier.
        assert!(parse_query("BASE SELECT DISTINCT 9g FROM t; MD c=COUNT(*) OVER t WHERE g=b.g;")
            .is_err());
        // Empty input.
        assert!(parse_query("   ").is_err());
    }

    #[test]
    fn comments_are_stripped() {
        let q = parse_query(
            "-- leading comment
             BASE SELECT DISTINCT g FROM t; -- trailing comment
             MD c = COUNT(*) OVER t WHERE g = b.g AND name <> 'not -- a comment';",
        )
        .unwrap();
        assert!(q.mds[0].theta.to_string().contains("not -- a comment"));
    }

    #[test]
    fn split_statements_respects_quotes() {
        let stmts = split_statements("a 'x;y' b; c").unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0], "a 'x;y' b");
    }
}
