//! Render GMDJ expressions back to query-language text.
//!
//! The inverse of [`crate::compile()`]: useful for logging, for showing the
//! effect of rewrites (a coalesced expression renders as one `MD` with the
//! merged aggregate list), and for persisting programmatically-built
//! queries. Round-trip guarantee: `compile(parse(render(e))) == e` for any
//! renderable expression (the base must be a `DistinctProject`; literal
//! bases have no textual form).

use crate::cube::CubeResult;
use skalla_gmdj::{AggSpec, BaseQuery, GmdjExpr};
use skalla_relation::{Error, Result};
use std::fmt::Write as _;

fn render_agg(a: &AggSpec) -> String {
    match &a.input {
        Some(e) => format!("{} = {}({e})", a.name, a.func),
        None => format!("{} = {}(*)", a.name, a.func),
    }
}

/// Render a GMDJ expression as query text.
///
/// Each block of each operator becomes one `MD` statement (blocks of a
/// multi-block operator are independent by construction, so the planner's
/// coalescing pass reassembles them losslessly — and `compile ∘ parse`
/// yields one operator per block, which `coalesce_chain` merges back).
pub fn render(expr: &GmdjExpr) -> Result<String> {
    let BaseQuery::DistinctProject { table, columns } = &expr.base else {
        return Err(Error::Plan(
            "literal base relations have no textual form".into(),
        ));
    };
    let mut out = String::new();
    write!(out, "BASE SELECT DISTINCT {} FROM {table}", columns.join(", "))
        .expect("string writes are infallible");
    if let Some(key) = &expr.key {
        write!(out, " KEY ({})", key.join(", ")).expect("string write");
    }
    out.push_str(";\n");
    for op in &expr.ops {
        for block in &op.blocks {
            let aggs: Vec<String> = block.aggs.iter().map(render_agg).collect();
            writeln!(
                out,
                "MD {} OVER {} WHERE {};",
                aggs.join(", "),
                op.detail,
                block.theta
            )
            .expect("string write");
        }
    }
    Ok(out)
}

/// Render a cube result's per-level provenance as an aligned text table:
/// one line per grouping set with its source (computed / cache-hit /
/// rolled-up), row count, and — for levels that ran a distributed
/// query — rounds and bytes moved. Consumed by the CLI and examples.
pub fn render_cube_levels(result: &CubeResult) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<44} {:>10} {:>7} {:>7} {:>12}",
        "grouping set", "source", "rows", "rounds", "bytes"
    )
    .expect("string writes are infallible"); // lint: allow(panic) fmt::Write to String never errors
    for level in &result.levels {
        let name = if level.dims.is_empty() {
            "()".to_string()
        } else {
            format!("({})", level.dims.join(", "))
        };
        let (rounds, bytes) = match &level.stats {
            Some(s) => (s.n_rounds().to_string(), s.total_bytes().to_string()),
            None => ("-".to_string(), "-".to_string()),
        };
        writeln!(
            out,
            "{name:<44} {:>10} {:>7} {rounds:>7} {bytes:>12}",
            level.source.to_string(),
            level.rows,
        )
        .expect("string write"); // lint: allow(panic) fmt::Write to String never errors
    }
    writeln!(
        out,
        "total: {} rows, {} rounds, {} bytes, {} level(s) rolled up locally",
        result.relation.len(),
        result.total_rounds(),
        result.total_bytes(),
        result.rolled_up_levels(),
    )
    .expect("string write"); // lint: allow(panic) fmt::Write to String never errors
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_text;
    use skalla_gmdj::prelude::*;
    use skalla_gmdj::rewrite::coalesce_chain;
    use skalla_relation::{row, DataType, Relation, Schema, Value};

    fn sample() -> GmdjExpr {
        GmdjExprBuilder::distinct_base("flow", &["sas", "das"])
            .gmdj(Gmdj::new("flow").block(
                ThetaBuilder::group_by(&["sas", "das"]).build(),
                vec![
                    AggSpec::count("cnt1"),
                    AggSpec::over_expr(
                        AggFunc::Sum,
                        Expr::dcol("nb").mul(Expr::lit(8i64)),
                        "bits",
                    ),
                ],
            ))
            .gmdj(Gmdj::new("flow").block(
                ThetaBuilder::group_by(&["sas", "das"])
                    .and(Expr::dcol("proto").eq(Expr::lit(Value::str("it's tcp"))))
                    .and(Expr::dcol("nb").ge(Expr::bcol("bits").div(Expr::bcol("cnt1"))))
                    .build(),
                vec![AggSpec::stddev("nb", "sd")],
            ))
            .build()
    }

    #[test]
    fn renders_readable_text() {
        let text = render(&sample()).unwrap();
        assert!(text.starts_with("BASE SELECT DISTINCT sas, das FROM flow;"));
        assert!(text.contains("cnt1 = COUNT(*)"));
        assert!(text.contains("bits = SUM((r.nb * 8))"));
        assert!(text.contains("sd = STDDEV(r.nb)"));
        assert!(text.contains("'it''s tcp'"), "{text}");
    }

    #[test]
    fn round_trips_through_the_parser() {
        let original = sample();
        let text = render(&original).unwrap();
        let back = compile_text(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn multi_block_operator_round_trips_up_to_coalescing() {
        // A two-block operator renders as two MD statements; compiling
        // yields two operators; coalescing merges them back.
        let original = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(
                Gmdj::new("t")
                    .block(
                        ThetaBuilder::group_by(&["g"]).build(),
                        vec![AggSpec::count("a")],
                    )
                    .block(
                        ThetaBuilder::group_by(&["g"])
                            .and(Expr::dcol("v").gt(Expr::lit(0i64)))
                            .build(),
                        vec![AggSpec::count("b")],
                    ),
            )
            .build();
        let text = render(&original).unwrap();
        let compiled = compile_text(&text).unwrap();
        assert_eq!(compiled.ops.len(), 2);
        let (merged, _) = coalesce_chain(&compiled);
        assert_eq!(merged, original);
    }

    #[test]
    fn key_clause_round_trips() {
        let e = GmdjExprBuilder::distinct_base("t", &["a", "b"])
            .key(&["a"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["a"]).build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        let text = render(&e).unwrap();
        assert!(text.contains("KEY (a)"));
        assert_eq!(compile_text(&text).unwrap(), e);
    }

    #[test]
    fn cube_levels_table_shows_provenance() {
        use crate::cube::cube;
        use skalla_core::{Cluster, OptFlags};
        use skalla_relation::{Domain, DomainMap};
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let part = Relation::new(schema, vec![row![1i64, 10i64], row![2i64, 20i64]]).unwrap();
        let c = Cluster::from_partitions(
            "t",
            vec![(part, DomainMap::new().with("g", Domain::IntRange(1, 2)))],
        );
        let result = cube(&c, "t", &["g"], &[AggSpec::count("n")], OptFlags::all()).unwrap();
        let text = render_cube_levels(&result);
        assert!(text.contains("(g)"), "{text}");
        assert!(text.contains("computed"), "{text}");
        assert!(text.contains("rolled-up"), "{text}");
        assert!(text.contains("1 level(s) rolled up locally"), "{text}");
    }

    #[test]
    fn literal_base_not_renderable() {
        let base = Relation::new(Schema::of(&[("g", DataType::Int)]), vec![row![1i64]]).unwrap();
        let e = GmdjExprBuilder::literal_base(base)
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("c")],
            ))
            .build();
        assert!(render(&e).is_err());
    }
}
