//! # skalla-net — simulated network with exact byte accounting
//!
//! The transport between Skalla warehouse sites and the coordinator. Sites
//! run as threads connected by channels in a star topology
//! ([`transport::star`]); every transfer is recorded per round and per site
//! in [`stats::NetStats`]; [`cost::CostModel`] converts the recorded
//! traffic into simulated wire time so experiments reproduce the paper's
//! communication behavior on a single machine.

#![warn(missing_docs)]

pub mod cost;
pub mod stats;
pub mod transport;

pub use cost::CostModel;
pub use stats::{Direction, LinkStats, NetStats, RoundStats, MESSAGE_OVERHEAD_BYTES};
pub use transport::{star, CoordinatorNet, Message, NetError, SiteNet};
