//! # skalla-net — coordinator/site transports with exact byte accounting
//!
//! The network between Skalla warehouse sites and the coordinator, behind
//! the [`transport::CoordinatorTransport`] / [`transport::SiteTransport`]
//! trait pair. Two interchangeable implementations:
//!
//! * [`channel`] — in-process: sites are threads connected by channels in
//!   a star topology (built by [`star`]). The zero-config default.
//! * [`tcp`] — real sockets: sites are separate processes speaking
//!   length-prefixed frames, with connect backoff and per-link timeouts.
//!
//! Every transfer is recorded per round and per site in
//! [`stats::NetStats`] at the logical payload layer, identically for both
//! transports; [`cost::CostModel`] converts the recorded traffic into
//! simulated wire time so experiments reproduce the paper's communication
//! behavior on a single machine.

// missing_docs is denied workspace-wide (see [workspace.lints]).

pub mod channel;
pub mod cost;
pub mod mux;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use channel::{star, CoordinatorNet, SiteNet};
pub use cost::CostModel;
pub use mux::{MuxHandle, QueryMux};
pub use stats::{Direction, LinkStats, NetStats, RoundStats, MESSAGE_OVERHEAD_BYTES};
pub use tcp::{connect_with_backoff, TcpConfig, TcpCoordinator, TcpSite, TcpSiteListener};
pub use transport::{CoordinatorTransport, Message, NetError, SiteTransport, TELEMETRY_TAG};
