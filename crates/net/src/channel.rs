//! The in-process channel transport (the default).
//!
//! Sites are threads and links are crossbeam channels in a star topology:
//! zero configuration, fully deterministic, and the byte accounting is
//! identical to the [`crate::tcp`] transport because both record at the
//! logical payload layer (see [`crate::transport`]). This is the
//! transport the tests, benchmarks and figure harnesses use; the TCP
//! transport is for real multi-process deployments.

use crate::stats::{Direction, NetStats};
use crate::transport::{CoordinatorTransport, Message, NetError, SiteTransport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// The coordinator's handle to all site links (channel transport).
///
/// The receive side is mutex-guarded so the handle is `Sync` and can be
/// shared behind an `Arc` by a multiplexer; with a single dispatcher
/// thread draining it, the lock is uncontended.
#[derive(Debug)]
pub struct CoordinatorNet {
    to_sites: Vec<Sender<Message>>,
    from_sites: Mutex<Receiver<(usize, Message)>>,
    stats: Arc<NetStats>,
}

impl CoordinatorNet {
    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.to_sites.len()
    }

    /// The shared traffic accounting.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Send a message to one site. Telemetry frames bypass the byte
    /// accounting (see [`crate::transport::TELEMETRY_TAG`]).
    pub fn send(&self, site: usize, msg: Message) -> Result<(), NetError> {
        if msg.tag != crate::transport::TELEMETRY_TAG {
            self.stats.record_msg_for(
                site,
                Direction::Down,
                msg.payload.len() as u64,
                Some(msg.tag),
                msg.query_id,
            );
        }
        self.to_sites[site]
            .send(msg)
            .map_err(|_| NetError::Disconnected)
    }

    /// Send copies of a message to every site.
    pub fn broadcast(&self, msg: &Message) -> Result<(), NetError> {
        for site in 0..self.n_sites() {
            self.send(site, msg.clone())?;
        }
        Ok(())
    }

    /// Receive the next message from any site (blocking, with timeout).
    pub fn recv(&self, timeout: Duration) -> Result<(usize, Message), NetError> {
        match self.from_sites.lock().recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

impl CoordinatorTransport for CoordinatorNet {
    fn n_sites(&self) -> usize {
        CoordinatorNet::n_sites(self)
    }

    fn stats(&self) -> &Arc<NetStats> {
        CoordinatorNet::stats(self)
    }

    fn send(&self, site: usize, msg: Message) -> Result<(), NetError> {
        CoordinatorNet::send(self, site, msg)
    }

    fn recv(&self, timeout: Duration) -> Result<(usize, Message), NetError> {
        CoordinatorNet::recv(self, timeout)
    }
}

/// One site's handle to its coordinator link (channel transport).
#[derive(Debug)]
pub struct SiteNet {
    site_id: usize,
    rx: Mutex<Receiver<Message>>,
    tx: Sender<(usize, Message)>,
    stats: Arc<NetStats>,
}

impl SiteNet {
    /// This site's index.
    pub fn site_id(&self) -> usize {
        self.site_id
    }

    /// Send a message to the coordinator. Telemetry frames bypass the
    /// byte accounting (see [`crate::transport::TELEMETRY_TAG`]).
    pub fn send(&self, msg: Message) -> Result<(), NetError> {
        if msg.tag != crate::transport::TELEMETRY_TAG {
            self.stats.record_msg_for(
                self.site_id,
                Direction::Up,
                msg.payload.len() as u64,
                Some(msg.tag),
                msg.query_id,
            );
        }
        self.tx
            .send((self.site_id, msg))
            .map_err(|_| NetError::Disconnected)
    }

    /// Receive the next message from the coordinator (blocking).
    pub fn recv(&self) -> Result<Message, NetError> {
        self.rx.lock().recv().map_err(|_| NetError::Disconnected)
    }
}

impl SiteTransport for SiteNet {
    fn site_id(&self) -> usize {
        SiteNet::site_id(self)
    }

    fn send(&self, msg: Message) -> Result<(), NetError> {
        SiteNet::send(self, msg)
    }

    fn recv(&self) -> Result<Message, NetError> {
        SiteNet::recv(self)
    }
}

/// Build a star network: one coordinator handle and `n` site handles,
/// sharing a [`NetStats`]. The shared stats means each message is
/// recorded exactly once, by the end that sends it.
pub fn star(n: usize) -> (CoordinatorNet, Vec<SiteNet>) {
    let stats = NetStats::new(n);
    let (up_tx, up_rx) = unbounded();
    let mut to_sites = Vec::with_capacity(n);
    let mut sites = Vec::with_capacity(n);
    for site_id in 0..n {
        let (down_tx, down_rx) = unbounded();
        to_sites.push(down_tx);
        sites.push(SiteNet {
            site_id,
            rx: Mutex::new(down_rx),
            tx: up_tx.clone(),
            stats: Arc::clone(&stats),
        });
    }
    (
        CoordinatorNet {
            to_sites,
            from_sites: Mutex::new(up_rx),
            stats,
        },
        sites,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MESSAGE_OVERHEAD_BYTES;

    #[test]
    fn round_trip_via_threads() {
        let (coord, sites) = star(3);
        let handles: Vec<_> = sites
            .into_iter()
            .map(|s| {
                std::thread::spawn(move || {
                    let m = s.recv().unwrap();
                    assert_eq!(m.tag, 7);
                    s.send(Message::new(8, vec![s.site_id() as u8])).unwrap();
                })
            })
            .collect();
        coord.broadcast(&Message::new(7, b"abc".to_vec())).unwrap();
        let mut seen = [false; 3];
        for _ in 0..3 {
            let (site, m) = coord.recv(Duration::from_secs(5)).unwrap();
            assert_eq!(m.tag, 8);
            assert_eq!(m.payload, vec![site as u8]);
            seen[site] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for h in handles {
            h.join().unwrap();
        }
        let t = coord.stats().totals();
        assert_eq!(t.down_bytes, 3 * (3 + MESSAGE_OVERHEAD_BYTES));
        assert_eq!(t.up_bytes, 3 * (1 + MESSAGE_OVERHEAD_BYTES));
        assert_eq!(t.down_msgs, 3);
        assert_eq!(t.up_msgs, 3);
    }

    /// Pins the accounting contract: *every* message kind — including
    /// zero-payload control messages like shutdown, and error replies —
    /// is charged its payload plus exactly one framing overhead, in the
    /// direction it travelled.
    #[test]
    fn every_message_kind_counts_framing_overhead() {
        // Tag values mirror the coordinator protocol: run-stage, result,
        // error, shutdown, plan. The accounting must not special-case any.
        let down_msgs = [(1u8, 64usize), (4, 0), (5, 300)]; // task, shutdown, plan
        let up_msgs = [(2u8, 128usize), (3, 17)]; // result, error

        let (coord, sites) = star(2);
        for (tag, len) in down_msgs {
            coord.send(1, Message::new(tag, vec![0; len])).unwrap();
        }
        for (tag, len) in up_msgs {
            sites[0].send(Message::new(tag, vec![0; len])).unwrap();
        }

        let rounds = coord.stats().rounds();
        let link_down = rounds[0].per_site[1];
        let link_up = rounds[0].per_site[0];
        let expect_down: u64 = down_msgs
            .iter()
            .map(|(_, len)| *len as u64 + MESSAGE_OVERHEAD_BYTES)
            .sum();
        let expect_up: u64 = up_msgs
            .iter()
            .map(|(_, len)| *len as u64 + MESSAGE_OVERHEAD_BYTES)
            .sum();
        assert_eq!(link_down.down_bytes, expect_down);
        assert_eq!(link_down.down_msgs, down_msgs.len() as u64);
        assert_eq!(link_up.up_bytes, expect_up);
        assert_eq!(link_up.up_msgs, up_msgs.len() as u64);
        // Nothing leaked onto the other links/directions.
        assert_eq!(link_down.up_msgs, 0);
        assert_eq!(link_up.down_msgs, 0);
    }

    #[test]
    fn recorded_messages_emit_obs_events() {
        use skalla_obs::Obs;
        let (coord, sites) = star(1);
        let obs = Obs::recording();
        coord.stats().set_obs(obs.clone());
        coord.send(0, Message::new(5, vec![0; 10])).unwrap();
        sites[0].send(Message::new(3, vec![0; 4])).unwrap();
        let events = obs.recorder().unwrap().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "msg down");
        assert!(events[0]
            .args
            .iter()
            .any(|(k, v)| *k == "bytes"
                && *v == skalla_obs::ArgValue::UInt(10 + MESSAGE_OVERHEAD_BYTES)));
        assert!(events[0]
            .args
            .iter()
            .any(|(k, v)| *k == "tag" && *v == skalla_obs::ArgValue::UInt(5)));
        assert!(
            events[0].args.iter().any(|(k, v)| *k == "transport"
                && *v == skalla_obs::ArgValue::Str("channel".to_string())),
            "events carry the transport attribute"
        );
        assert_eq!(events[1].name, "msg up");
        let counters = obs.recorder().unwrap().counters();
        assert_eq!(
            counters["net.bytes_down"],
            (10 + MESSAGE_OVERHEAD_BYTES) as f64
        );
        assert_eq!(
            counters["net.bytes_up"],
            (4 + MESSAGE_OVERHEAD_BYTES) as f64
        );
    }

    /// Telemetry frames are invisible to the byte accounting in both
    /// directions — the channel/TCP byte-identity invariant must hold
    /// whether or not telemetry export is on.
    #[test]
    fn telemetry_frames_bypass_accounting() {
        use crate::transport::TELEMETRY_TAG;
        let (coord, sites) = star(1);
        coord
            .send(0, Message::new(TELEMETRY_TAG, vec![0; 100]))
            .unwrap();
        sites[0]
            .send(Message::new(TELEMETRY_TAG, vec![0; 200]))
            .unwrap();
        let t = coord.stats().totals();
        assert_eq!((t.down_bytes, t.up_bytes, t.down_msgs, t.up_msgs), (0, 0, 0, 0));
        // The frames still arrive.
        assert_eq!(sites[0].recv().unwrap().tag, TELEMETRY_TAG);
        assert_eq!(coord.recv(Duration::from_secs(5)).unwrap().1.tag, TELEMETRY_TAG);
    }

    #[test]
    fn recv_times_out() {
        let (coord, _sites) = star(1);
        assert_eq!(
            coord.recv(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn disconnected_site_detected() {
        let (coord, sites) = star(1);
        drop(sites);
        assert_eq!(
            coord.send(0, Message::new(0, vec![])).unwrap_err(),
            NetError::Disconnected
        );
    }
}
