//! The transport abstraction between the coordinator and the sites.
//!
//! The paper ran Skalla with sites on separate machines over a LAN
//! (Sect. 5). This reproduction supports two interchangeable transports
//! behind the [`CoordinatorTransport`] / [`SiteTransport`] trait pair:
//!
//! * **In-process channels** ([`crate::channel`], built by
//!   [`crate::channel::star`]) — sites are threads and links are
//!   crossbeam channels. Zero configuration; the default for tests,
//!   benchmarks and the figure harnesses, so experiments reproduce the
//!   paper's communication behaviour deterministically on one machine.
//! * **TCP sockets** ([`crate::tcp`]) — sites are separate processes
//!   (one machine or several) speaking length-prefixed frames over
//!   `std::net`, with per-link read/write timeouts and
//!   connect-with-backoff for site startup races.
//!
//! Both record every transfer in [`crate::stats::NetStats`] at the same
//! *logical* layer — payload bytes plus the fixed
//! [`crate::stats::MESSAGE_OVERHEAD_BYTES`] framing charge, never the
//! physical wire encoding — so byte/message/round accounting is
//! transport-invariant and the paper's traffic formulas hold verbatim
//! over real sockets. Simulated wire time is derived from the byte
//! counts by [`crate::cost::CostModel`].

use crate::stats::NetStats;
use std::sync::Arc;
use std::time::Duration;

/// The frame tag carrying telemetry (site → coordinator metric/trace
/// export, and the coordinator's pull request for it).
///
/// Telemetry frames are **never recorded in [`NetStats`]**, on either
/// transport, in either direction: the byte accounting reproduces the
/// paper's query-traffic formulas, and observability payloads are not
/// query traffic. Exempting them at the transport layer keeps the
/// channel/TCP byte-identity invariant intact whether or not telemetry
/// export is enabled.
pub const TELEMETRY_TAG: u8 = 9;

/// A framed message: an application-defined tag, the query it belongs
/// to, and payload bytes.
///
/// `query_id` 0 is the control/legacy stream (catalog handshake,
/// connection shutdown, and every message of a serial one-query
/// session); concurrent engines stamp ids ≥ 1 so a demultiplexer can
/// route frames to per-query state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Application-defined message type tag.
    pub tag: u8,
    /// The query this frame belongs to (0 = control/legacy stream).
    pub query_id: u32,
    /// Serialized payload.
    pub payload: Vec<u8>,
}

impl Message {
    /// Construct a message on the control/legacy stream (`query_id` 0).
    pub fn new(tag: u8, payload: Vec<u8>) -> Message {
        Message {
            tag,
            query_id: 0,
            payload,
        }
    }

    /// Construct a message stamped with a query id.
    pub fn for_query(tag: u8, query_id: u32, payload: Vec<u8>) -> Message {
        Message {
            tag,
            query_id,
            payload,
        }
    }

    /// This message re-stamped onto another query stream.
    pub fn with_query_id(mut self, query_id: u32) -> Message {
        self.query_id = query_id;
        self
    }
}

/// Errors surfaced by the transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer hung up.
    Disconnected,
    /// No message arrived within the timeout.
    Timeout,
    /// A specific site's link died (TCP: connection reset / EOF), with a
    /// diagnostic. The coordinator uses this to abort the query with a
    /// useful message instead of hanging out the round timeout.
    SiteDisconnected {
        /// The site whose link died.
        site: usize,
        /// Underlying I/O detail (e.g. "connection reset by peer").
        detail: String,
    },
    /// Could not establish a connection, even with retries.
    Connect {
        /// The address dialled.
        addr: String,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The last I/O error observed.
        error: String,
    },
    /// Any other socket-level failure.
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::SiteDisconnected { site, detail } => {
                write!(f, "site {site} disconnected: {detail}")
            }
            NetError::Connect {
                addr,
                attempts,
                error,
            } => write!(
                f,
                "could not connect to {addr} after {attempts} attempt(s): {error}"
            ),
            NetError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The coordinator's view of the network: a star of per-site links.
///
/// Implementations must record every [`send`](Self::send) and every
/// delivered [`recv`](Self::recv) in [`Self::stats`] at the logical
/// payload layer (see the module docs), so the coordinator's traffic
/// accounting is identical whichever transport carries the bytes.
pub trait CoordinatorTransport: Send {
    /// Number of site links.
    fn n_sites(&self) -> usize;

    /// The shared traffic accounting.
    fn stats(&self) -> &Arc<NetStats>;

    /// Send a message to one site.
    fn send(&self, site: usize, msg: Message) -> Result<(), NetError>;

    /// Receive the next message from any site (blocking, with timeout).
    fn recv(&self, timeout: Duration) -> Result<(usize, Message), NetError>;

    /// Send copies of a message to every site.
    fn broadcast(&self, msg: &Message) -> Result<(), NetError> {
        for site in 0..self.n_sites() {
            self.send(site, msg.clone())?;
        }
        Ok(())
    }
}

/// One site's view of the network: its single link to the coordinator.
pub trait SiteTransport: Send {
    /// This site's index.
    fn site_id(&self) -> usize;

    /// Send a message to the coordinator.
    fn send(&self, msg: Message) -> Result<(), NetError>;

    /// Receive the next message from the coordinator (blocking; honours
    /// the transport's configured idle timeout, if any).
    fn recv(&self) -> Result<Message, NetError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::star;

    #[test]
    fn broadcast_default_sends_to_every_site() {
        // Exercise the trait's default broadcast through a dyn reference.
        let (coord, sites) = star(3);
        let c: &dyn CoordinatorTransport = &coord;
        c.broadcast(&Message::new(9, b"hi".to_vec())).unwrap();
        for s in &sites {
            assert_eq!(s.recv().unwrap().tag, 9);
        }
    }

    #[test]
    fn net_error_display() {
        assert_eq!(NetError::Disconnected.to_string(), "peer disconnected");
        assert_eq!(NetError::Timeout.to_string(), "receive timed out");
        assert_eq!(
            NetError::SiteDisconnected {
                site: 2,
                detail: "reset".into()
            }
            .to_string(),
            "site 2 disconnected: reset"
        );
        assert!(NetError::Connect {
            addr: "127.0.0.1:1".into(),
            attempts: 3,
            error: "refused".into()
        }
        .to_string()
        .contains("after 3 attempt(s)"));
        assert!(NetError::Io("broken pipe".into())
            .to_string()
            .contains("broken pipe"));
    }
}
