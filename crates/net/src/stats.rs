//! Traffic accounting.
//!
//! Every byte crossing the coordinator ↔ site links is recorded here,
//! grouped into *rounds* (the paper's unit of synchronization). Figure 2
//! (right) plots exactly these counters, and Theorem 2's bound is asserted
//! against them in the integration tests.
//!
//! Skew-balancing frames — heavy-hitter reports, loaned detail segments,
//! loan tasks and loan results — **are** counted, unlike telemetry export
//! (which is out-of-band diagnostics, not query traffic): balancing
//! trades real network bytes for compute balance, and hiding that cost
//! would falsify the paper's traffic comparisons. An execution with
//! `skew_balance` off reproduces the unbalanced counters exactly.

use parking_lot::Mutex;
use skalla_obs::{Obs, Track};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Fixed per-message framing overhead (header bytes) added to the payload
/// size in the accounting, so that message count also contributes.
pub const MESSAGE_OVERHEAD_BYTES: u64 = 16;

/// Direction of a transfer, from the coordinator's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Coordinator → site.
    Down,
    /// Site → coordinator.
    Up,
}

/// Traffic counters for one round at one site link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Bytes coordinator → site (payload + framing).
    pub down_bytes: u64,
    /// Bytes site → coordinator.
    pub up_bytes: u64,
    /// Messages coordinator → site.
    pub down_msgs: u64,
    /// Messages site → coordinator.
    pub up_msgs: u64,
}

impl LinkStats {
    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.down_bytes + self.up_bytes
    }

    fn add(&mut self, o: &LinkStats) {
        self.down_bytes += o.down_bytes;
        self.up_bytes += o.up_bytes;
        self.down_msgs += o.down_msgs;
        self.up_msgs += o.up_msgs;
    }
}

/// Traffic for one round across all site links.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Human-readable label set by the coordinator (e.g. `"base"`,
    /// `"gmdj 1"`).
    pub label: String,
    /// Per-site link counters.
    pub per_site: Vec<LinkStats>,
}

impl RoundStats {
    /// Aggregate counters over all sites.
    pub fn totals(&self) -> LinkStats {
        let mut t = LinkStats::default();
        for s in &self.per_site {
            t.add(s);
        }
        t
    }
}

/// Shared traffic accounting for a network.
///
/// The coordinator opens rounds with [`NetStats::begin_round`]; transfers
/// recorded by either end land in the currently open round.
#[derive(Debug)]
pub struct NetStats {
    n_sites: usize,
    rounds: Mutex<Vec<RoundStats>>,
    current: AtomicUsize,
    obs: Mutex<Obs>,
    transport: Mutex<&'static str>,
}

impl NetStats {
    /// Accounting for `n_sites` site links, with an initial round open
    /// (label `"round 0"`).
    pub fn new(n_sites: usize) -> Arc<NetStats> {
        let stats = NetStats {
            n_sites,
            rounds: Mutex::new(vec![RoundStats {
                label: "round 0".to_string(),
                per_site: vec![LinkStats::default(); n_sites],
            }]),
            current: AtomicUsize::new(0),
            obs: Mutex::new(Obs::disabled()),
            transport: Mutex::new("channel"),
        };
        Arc::new(stats)
    }

    /// Label the transport carrying this traffic (`"channel"` by default,
    /// `"tcp"` for the socket transport). The label is attached to every
    /// `msg down` / `msg up` obs event as a `transport` attribute; it does
    /// not affect the byte accounting, which is transport-invariant.
    pub fn set_transport(&self, label: &'static str) {
        *self.transport.lock() = label;
    }

    /// The transport label (see [`NetStats::set_transport`]).
    pub fn transport(&self) -> &'static str {
        *self.transport.lock()
    }

    /// Attach an observability handle: every recorded message also emits
    /// a `msg down` / `msg up` instant event on the net track, carrying
    /// the same byte accounting as [`LinkStats`].
    pub fn set_obs(&self, obs: Obs) {
        *self.obs.lock() = obs;
    }

    /// Number of site links.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Open a new round; subsequent transfers are attributed to it.
    pub fn begin_round(&self, label: impl Into<String>) {
        let mut rounds = self.rounds.lock();
        rounds.push(RoundStats {
            label: label.into(),
            per_site: vec![LinkStats::default(); self.n_sites],
        });
        self.current.store(rounds.len() - 1, Ordering::SeqCst);
    }

    /// Record a transfer of `payload_bytes` on `site`'s link.
    pub fn record(&self, site: usize, dir: Direction, payload_bytes: u64) {
        self.record_msg(site, dir, payload_bytes, None);
    }

    /// Record a transfer with its message tag. Every message kind —
    /// plan, task, result, error, shutdown — goes through here, so the
    /// [`MESSAGE_OVERHEAD_BYTES`] framing is counted uniformly.
    pub fn record_msg(&self, site: usize, dir: Direction, payload_bytes: u64, tag: Option<u8>) {
        self.record_msg_for(site, dir, payload_bytes, tag, 0);
    }

    /// [`NetStats::record_msg`] with the query the frame belongs to.
    /// Query id 0 (the control/legacy stream) is omitted from the obs
    /// event; concurrent engines stamp ids ≥ 1 so traces can be filtered
    /// per query. The byte accounting itself is query-agnostic.
    pub fn record_msg_for(
        &self,
        site: usize,
        dir: Direction,
        payload_bytes: u64,
        tag: Option<u8>,
        query_id: u32,
    ) {
        let cur = self.current.load(Ordering::SeqCst);
        let mut rounds = self.rounds.lock();
        let link = &mut rounds[cur].per_site[site];
        match dir {
            Direction::Down => {
                link.down_bytes += payload_bytes + MESSAGE_OVERHEAD_BYTES;
                link.down_msgs += 1;
            }
            Direction::Up => {
                link.up_bytes += payload_bytes + MESSAGE_OVERHEAD_BYTES;
                link.up_msgs += 1;
            }
        }
        drop(rounds);
        let obs = self.obs.lock().clone();
        if obs.is_recording() {
            let name = match dir {
                Direction::Down => "msg down",
                Direction::Up => "msg up",
            };
            let mut args: Vec<(&'static str, skalla_obs::ArgValue)> = vec![
                ("site", site.into()),
                ("bytes", (payload_bytes + MESSAGE_OVERHEAD_BYTES).into()),
                (
                    "transport",
                    skalla_obs::ArgValue::Str(self.transport().to_string()),
                ),
            ];
            if let Some(t) = tag {
                args.push(("tag", (t as u64).into()));
            }
            if query_id != 0 {
                args.push(("query_id", (query_id as u64).into()));
            }
            obs.event(Track::Net, name, args);
            let counter = match dir {
                Direction::Down => "net.bytes_down",
                Direction::Up => "net.bytes_up",
            };
            obs.counter_add(counter, (payload_bytes + MESSAGE_OVERHEAD_BYTES) as f64);
        }
    }

    /// Snapshot of all rounds.
    pub fn rounds(&self) -> Vec<RoundStats> {
        self.rounds.lock().clone()
    }

    /// Grand totals over all rounds.
    pub fn totals(&self) -> LinkStats {
        let mut t = LinkStats::default();
        for r in self.rounds.lock().iter() {
            t.add(&r.totals());
        }
        t
    }

    /// Number of rounds that saw any traffic.
    pub fn active_rounds(&self) -> usize {
        self.rounds
            .lock()
            .iter()
            .filter(|r| r.totals().total_bytes() > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_attribute_to_current_round() {
        let s = NetStats::new(2);
        s.record(0, Direction::Down, 100);
        s.begin_round("gmdj 1");
        s.record(1, Direction::Up, 50);
        let rounds = s.rounds();
        assert_eq!(rounds.len(), 2);
        assert_eq!(
            rounds[0].per_site[0].down_bytes,
            100 + MESSAGE_OVERHEAD_BYTES
        );
        assert_eq!(rounds[0].per_site[1], LinkStats::default());
        assert_eq!(rounds[1].label, "gmdj 1");
        assert_eq!(rounds[1].per_site[1].up_bytes, 50 + MESSAGE_OVERHEAD_BYTES);
        assert_eq!(rounds[1].per_site[1].up_msgs, 1);
    }

    #[test]
    fn totals_sum_rounds_and_sites() {
        let s = NetStats::new(2);
        s.record(0, Direction::Down, 10);
        s.record(1, Direction::Down, 10);
        s.begin_round("next");
        s.record(0, Direction::Up, 5);
        let t = s.totals();
        assert_eq!(t.down_bytes, 2 * (10 + MESSAGE_OVERHEAD_BYTES));
        assert_eq!(t.up_bytes, 5 + MESSAGE_OVERHEAD_BYTES);
        assert_eq!(t.down_msgs, 2);
        assert_eq!(t.up_msgs, 1);
        assert_eq!(t.total_bytes(), t.down_bytes + t.up_bytes);
        assert_eq!(s.active_rounds(), 2);
    }

    #[test]
    fn empty_rounds_not_active() {
        let s = NetStats::new(1);
        s.begin_round("empty");
        assert_eq!(s.active_rounds(), 0);
    }
}
