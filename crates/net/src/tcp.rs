//! The TCP transport: real sockets for multi-process clusters.
//!
//! Frames on the wire are `tag: u8`, `query_id: u32` (little-endian),
//! `len: u32` (little-endian), then `len` payload bytes — the protocol
//! v2 frame format. The query id lets one persistent connection carry
//! interleaved rounds of several concurrent queries; id 0 is the
//! control/legacy stream (handshake, connection shutdown, and serial
//! single-query sessions). Reads tolerate partial delivery (`read` loops
//! until the frame is complete) and surface a clean
//! [`NetError::SiteDisconnected`] / [`NetError::Disconnected`] when the
//! peer closes or resets mid-frame, so a site dying mid-round aborts the
//! query with a diagnostic instead of hanging. Connection establishment
//! retries with exponential backoff ([`TcpConfig::connect_attempts`]) to
//! absorb site startup races.
//!
//! **Accounting invariant**: [`NetStats`] records the *logical* payload
//! bytes plus [`crate::stats::MESSAGE_OVERHEAD_BYTES`] per message —
//! never the 9-byte wire header or the transport-internal hello frame —
//! so the recorded traffic is bit-identical to the in-process channel
//! transport for the same protocol exchange. The coordinator records
//! downlink messages when it sends and uplink messages when it receives
//! (the two processes do not share memory); each site process keeps its
//! own symmetric [`NetStats`].

use crate::stats::{Direction, NetStats};
use crate::transport::{CoordinatorTransport, Message, NetError, SiteTransport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Refuse frames larger than this (corrupt header guard).
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Wire tag of the transport-internal handshake frame (never surfaced as
/// a [`Message`] and never recorded in [`NetStats`]).
const HELLO_TAG: u8 = 0xFF;

/// Poll granularity for deadline-bounded reads.
const READ_TICK: Duration = Duration::from_millis(200);

/// Knobs for connection establishment and per-link socket behaviour.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// How many connect attempts before giving up (≥ 1). Attempts are
    /// spaced by exponential backoff, absorbing site startup races.
    pub connect_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the backoff between attempts.
    pub backoff_max: Duration,
    /// Idle timeout for a site waiting on its coordinator link
    /// (`None` = wait forever). A timeout is fatal for the link: the
    /// frame stream may be mid-frame, so the session ends.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for every link (`None` = block forever).
    pub write_timeout: Option<Duration>,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_secs(2),
            connect_attempts: 10,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl TcpConfig {
    /// The backoff delay before attempt `attempt + 1` (0-based): the base
    /// doubled per attempt, capped at [`TcpConfig::backoff_max`].
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let mult = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(mult)
            .unwrap_or(self.backoff_max)
            .min(self.backoff_max)
    }
}

fn io_err(e: std::io::Error) -> NetError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => NetError::Timeout,
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::NotConnected => NetError::Disconnected,
        _ => NetError::Io(e.to_string()),
    }
}

/// Fill `buf` completely, looping over partial reads. `Ok(0)` from the
/// socket (peer closed) maps to [`NetError::Disconnected`]; socket-level
/// read timeouts are treated as poll ticks until `deadline` (if any)
/// expires, which maps to [`NetError::Timeout`].
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Option<Instant>,
) -> Result<(), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(NetError::Disconnected),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err(NetError::Timeout);
                }
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(())
}

/// Read one `tag | query_id | len | payload` (v2) frame.
fn read_frame(stream: &mut TcpStream, deadline: Option<Instant>) -> Result<Message, NetError> {
    let mut header = [0u8; 9];
    read_full(stream, &mut header, deadline)?;
    let tag = header[0];
    let query_id = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(NetError::Io(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    read_full(stream, &mut payload, deadline)?;
    Ok(Message {
        tag,
        query_id,
        payload,
    })
}

/// Write one frame as a single buffer (one `write_all`, so a frame is
/// never interleaved when several query workers share the link).
fn write_frame(stream: &mut TcpStream, msg: &Message) -> Result<(), NetError> {
    let mut buf = Vec::with_capacity(9 + msg.payload.len());
    buf.push(msg.tag);
    buf.extend_from_slice(&msg.query_id.to_le_bytes());
    buf.extend_from_slice(&(msg.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&msg.payload);
    stream.write_all(&buf).map_err(io_err)
}

/// Dial `addr`, retrying with exponential backoff per [`TcpConfig`].
pub fn connect_with_backoff(addr: &str, cfg: &TcpConfig) -> Result<TcpStream, NetError> {
    let attempts = cfg.connect_attempts.max(1);
    let mut last = String::from("no address resolved");
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(cfg.backoff_delay(attempt - 1));
        }
        match addr.to_socket_addrs() {
            Err(e) => last = format!("resolving {addr}: {e}"),
            Ok(addrs) => {
                for sa in addrs {
                    match TcpStream::connect_timeout(&sa, cfg.connect_timeout) {
                        Ok(stream) => {
                            let _ = stream.set_nodelay(true);
                            return Ok(stream);
                        }
                        Err(e) => last = e.to_string(),
                    }
                }
            }
        }
    }
    Err(NetError::Connect {
        addr: addr.to_string(),
        attempts,
        error: last,
    })
}

/// What a coordinator reader thread forwards to the receive queue.
enum Inbound {
    Msg(usize, Message),
    Gone(usize, String),
}

/// The coordinator's end of a TCP star: one connection per site, one
/// reader thread per connection multiplexing into a single receive queue.
///
/// The receive queue is mutex-guarded so the handle is `Sync` and can be
/// shared behind an `Arc` by a multiplexer; with a single dispatcher
/// thread draining it, the lock is uncontended.
pub struct TcpCoordinator {
    links: Vec<Mutex<TcpStream>>,
    inbound: Mutex<Receiver<Inbound>>,
    stats: Arc<NetStats>,
}

impl std::fmt::Debug for TcpCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCoordinator")
            .field("n_sites", &self.links.len())
            .finish()
    }
}

impl TcpCoordinator {
    /// Connect to every site (with backoff), perform the hello handshake
    /// that assigns each its index, and start the reader threads.
    /// `addrs[i]` becomes site `i`.
    pub fn connect(addrs: &[String], cfg: &TcpConfig) -> Result<TcpCoordinator, NetError> {
        let n = addrs.len();
        let stats = NetStats::new(n);
        stats.set_transport("tcp");
        let (tx, rx): (Sender<Inbound>, Receiver<Inbound>) = unbounded();
        let mut links = Vec::with_capacity(n);
        for (site, addr) in addrs.iter().enumerate() {
            let mut stream = connect_with_backoff(addr, cfg)?;
            stream
                .set_write_timeout(cfg.write_timeout)
                .map_err(io_err)?;
            // Hello: assign the site its index and the cluster size.
            let mut hello = Vec::with_capacity(8);
            hello.extend_from_slice(&(site as u32).to_le_bytes());
            hello.extend_from_slice(&(n as u32).to_le_bytes());
            write_frame(&mut stream, &Message::new(HELLO_TAG, hello))?;
            let mut reader = stream.try_clone().map_err(io_err)?;
            let tx = tx.clone();
            std::thread::Builder::new()
                .name(format!("net-reader-{site}"))
                .spawn(move || loop {
                    match read_frame(&mut reader, None) {
                        Ok(msg) => {
                            if tx.send(Inbound::Msg(site, msg)).is_err() {
                                return; // coordinator dropped
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Inbound::Gone(site, e.to_string()));
                            return;
                        }
                    }
                })
                .map_err(|e| NetError::Io(format!("spawning reader: {e}")))?;
            links.push(Mutex::new(stream));
        }
        Ok(TcpCoordinator {
            links,
            inbound: Mutex::new(rx),
            stats,
        })
    }
}

impl CoordinatorTransport for TcpCoordinator {
    fn n_sites(&self) -> usize {
        self.links.len()
    }

    fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    fn send(&self, site: usize, msg: Message) -> Result<(), NetError> {
        if msg.tag != crate::transport::TELEMETRY_TAG {
            self.stats.record_msg_for(
                site,
                Direction::Down,
                msg.payload.len() as u64,
                Some(msg.tag),
                msg.query_id,
            );
        }
        write_frame(&mut self.links[site].lock(), &msg).map_err(|e| match e {
            NetError::Disconnected => NetError::SiteDisconnected {
                site,
                detail: "send failed: peer closed the connection".into(),
            },
            other => other,
        })
    }

    fn recv(&self, timeout: Duration) -> Result<(usize, Message), NetError> {
        match self.inbound.lock().recv_timeout(timeout) {
            Ok(Inbound::Msg(site, msg)) => {
                if msg.tag != crate::transport::TELEMETRY_TAG {
                    self.stats.record_msg_for(
                        site,
                        Direction::Up,
                        msg.payload.len() as u64,
                        Some(msg.tag),
                        msg.query_id,
                    );
                }
                Ok((site, msg))
            }
            Ok(Inbound::Gone(site, detail)) => Err(NetError::SiteDisconnected { site, detail }),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

impl Drop for TcpCoordinator {
    fn drop(&mut self) {
        // Unblock the reader threads so they exit promptly.
        for link in &self.links {
            let _ = link.lock().shutdown(Shutdown::Both);
        }
    }
}

/// A bound listener a site process accepts coordinator sessions on.
#[derive(Debug)]
pub struct TcpSiteListener {
    listener: TcpListener,
}

impl TcpSiteListener {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str) -> Result<TcpSiteListener, NetError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| NetError::Io(format!("binding {addr}: {e}")))?;
        Ok(TcpSiteListener { listener })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        self.listener.local_addr().map_err(io_err)
    }

    /// Accept one coordinator session: wait for a connection, read the
    /// hello frame (bounded by [`TcpConfig::connect_timeout`]) and return
    /// the site's transport handle.
    pub fn accept(&self, cfg: &TcpConfig) -> Result<TcpSite, NetError> {
        let (stream, _peer) = self.listener.accept().map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream
            .set_write_timeout(cfg.write_timeout)
            .map_err(io_err)?;
        // Deadline-bounded reads poll at READ_TICK granularity.
        stream.set_read_timeout(Some(READ_TICK)).map_err(io_err)?;
        let mut read_half = stream.try_clone().map_err(io_err)?;
        let hello = read_frame(&mut read_half, Some(Instant::now() + cfg.connect_timeout))?;
        if hello.tag != HELLO_TAG || hello.payload.len() != 8 {
            return Err(NetError::Io(format!(
                "bad handshake frame (tag {})",
                hello.tag
            )));
        }
        let p = &hello.payload;
        let site_id = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
        let n_sites = u32::from_le_bytes([p[4], p[5], p[6], p[7]]) as usize;
        if site_id >= n_sites {
            return Err(NetError::Io(format!(
                "handshake assigned site {site_id} of {n_sites}"
            )));
        }
        let stats = NetStats::new(n_sites);
        stats.set_transport("tcp");
        Ok(TcpSite {
            site_id,
            n_sites,
            read_half: Mutex::new(read_half),
            write_half: Mutex::new(stream),
            read_timeout: cfg.read_timeout,
            stats,
        })
    }
}

/// One site's end of its coordinator link over TCP.
pub struct TcpSite {
    site_id: usize,
    n_sites: usize,
    read_half: Mutex<TcpStream>,
    write_half: Mutex<TcpStream>,
    read_timeout: Option<Duration>,
    stats: Arc<NetStats>,
}

impl std::fmt::Debug for TcpSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSite")
            .field("site_id", &self.site_id)
            .field("n_sites", &self.n_sites)
            .finish()
    }
}

impl TcpSite {
    /// Cluster size announced by the coordinator's handshake.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// This site process's local traffic accounting (symmetric to the
    /// coordinator's view of this link).
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Receive with an explicit deadline, overriding the configured idle
    /// timeout. Used to bound the protocol handshake: a client that
    /// connects and then goes silent gets [`NetError::Timeout`] instead
    /// of wedging the server's accept loop.
    pub fn recv_deadline(&self, timeout: Duration) -> Result<Message, NetError> {
        let msg = read_frame(
            &mut self.read_half.lock(),
            Some(Instant::now() + timeout),
        )?;
        if msg.tag != crate::transport::TELEMETRY_TAG {
            self.stats.record_msg_for(
                self.site_id,
                Direction::Down,
                msg.payload.len() as u64,
                Some(msg.tag),
                msg.query_id,
            );
        }
        Ok(msg)
    }
}

impl SiteTransport for TcpSite {
    fn site_id(&self) -> usize {
        self.site_id
    }

    fn send(&self, msg: Message) -> Result<(), NetError> {
        if msg.tag != crate::transport::TELEMETRY_TAG {
            self.stats.record_msg_for(
                self.site_id,
                Direction::Up,
                msg.payload.len() as u64,
                Some(msg.tag),
                msg.query_id,
            );
        }
        write_frame(&mut self.write_half.lock(), &msg)
    }

    fn recv(&self) -> Result<Message, NetError> {
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        let msg = read_frame(&mut self.read_half.lock(), deadline)?;
        if msg.tag != crate::transport::TELEMETRY_TAG {
            self.stats.record_msg_for(
                self.site_id,
                Direction::Down,
                msg.payload.len() as u64,
                Some(msg.tag),
                msg.query_id,
            );
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MESSAGE_OVERHEAD_BYTES;

    fn loopback_pair(cfg: &TcpConfig) -> (TcpCoordinator, TcpSite) {
        let listener = TcpSiteListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg2 = cfg.clone();
        let h = std::thread::spawn(move || TcpCoordinator::connect(&[addr], &cfg2).unwrap());
        let site = listener.accept(cfg).unwrap();
        (h.join().unwrap(), site)
    }

    #[test]
    fn round_trip_and_logical_accounting() {
        let cfg = TcpConfig::default();
        let (coord, site) = loopback_pair(&cfg);
        assert_eq!(coord.n_sites(), 1);
        assert_eq!(site.site_id(), 0);
        assert_eq!(site.n_sites(), 1);

        coord.send(0, Message::new(7, b"abcde".to_vec())).unwrap();
        let m = site.recv().unwrap();
        assert_eq!((m.tag, m.payload.as_slice()), (7, b"abcde".as_slice()));
        site.send(Message::new(8, vec![1, 2])).unwrap();
        let (from, m) = coord.recv(Duration::from_secs(5)).unwrap();
        assert_eq!((from, m.tag), (0, 8));

        // Both ends account logical payload bytes, not the wire framing
        // (5-byte header) or the hello frame.
        let ct = coord.stats().totals();
        assert_eq!(ct.down_bytes, 5 + MESSAGE_OVERHEAD_BYTES);
        assert_eq!(ct.up_bytes, 2 + MESSAGE_OVERHEAD_BYTES);
        assert_eq!((ct.down_msgs, ct.up_msgs), (1, 1));
        let st = site.stats().totals();
        assert_eq!(st, ct);
    }

    #[test]
    fn fragmented_frames_reassemble() {
        // Write a frame byte-by-byte with pauses: read_full must keep
        // polling through partial deliveries and socket timeouts.
        let listener = TcpSiteListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            // Hello frame, then a dribbled 3-byte message (v2 framing:
            // tag, query_id, len, payload).
            let mut hello = vec![HELLO_TAG];
            hello.extend_from_slice(&0u32.to_le_bytes()); // query_id
            hello.extend_from_slice(&8u32.to_le_bytes()); // len
            hello.extend_from_slice(&0u32.to_le_bytes()); // site_id
            hello.extend_from_slice(&1u32.to_le_bytes()); // n_sites
            s.write_all(&hello).unwrap();
            let mut frame = vec![9u8];
            frame.extend_from_slice(&42u32.to_le_bytes()); // query_id
            frame.extend_from_slice(&3u32.to_le_bytes()); // len
            frame.extend_from_slice(b"xyz");
            for b in frame {
                s.write_all(&[b]).unwrap();
                s.flush().unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
            s
        });
        let site = listener.accept(&TcpConfig::default()).unwrap();
        let m = site.recv().unwrap();
        assert_eq!((m.tag, m.payload.as_slice()), (9, b"xyz".as_slice()));
        assert_eq!(m.query_id, 42, "query id survives the wire round-trip");
        drop(writer.join().unwrap());
    }

    #[test]
    fn peer_death_is_disconnect_not_hang() {
        let cfg = TcpConfig::default();
        let (coord, site) = loopback_pair(&cfg);
        drop(site); // site process "dies"
        let err = coord.recv(Duration::from_secs(10)).unwrap_err();
        assert!(
            matches!(err, NetError::SiteDisconnected { site: 0, .. }),
            "expected SiteDisconnected, got {err:?}"
        );
    }

    #[test]
    fn site_read_timeout_expires() {
        let cfg = TcpConfig {
            read_timeout: Some(Duration::from_millis(50)),
            ..TcpConfig::default()
        };
        let (_coord, site) = loopback_pair(&cfg);
        assert_eq!(site.recv().unwrap_err(), NetError::Timeout);
    }

    #[test]
    fn connect_failure_reports_attempts() {
        // Bind then drop a listener to obtain a (very likely) closed port.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        drop(l);
        let cfg = TcpConfig {
            connect_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            connect_timeout: Duration::from_millis(200),
            ..TcpConfig::default()
        };
        match connect_with_backoff(&addr, &cfg) {
            Err(NetError::Connect { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected Connect error, got {other:?}"),
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = TcpConfig {
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            ..TcpConfig::default()
        };
        assert_eq!(cfg.backoff_delay(0), Duration::from_millis(50));
        assert_eq!(cfg.backoff_delay(1), Duration::from_millis(100));
        assert_eq!(cfg.backoff_delay(2), Duration::from_millis(200));
        assert_eq!(cfg.backoff_delay(6), Duration::from_secs(2)); // capped
        assert_eq!(cfg.backoff_delay(63), Duration::from_secs(2)); // no overflow
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpSiteListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut hello = vec![HELLO_TAG];
            hello.extend_from_slice(&0u32.to_le_bytes()); // query_id
            hello.extend_from_slice(&8u32.to_le_bytes()); // len
            hello.extend_from_slice(&0u32.to_le_bytes()); // site_id
            hello.extend_from_slice(&1u32.to_le_bytes()); // n_sites
            s.write_all(&hello).unwrap();
            // A header claiming a frame over the limit.
            let mut bad = vec![1u8];
            bad.extend_from_slice(&0u32.to_le_bytes()); // query_id
            bad.extend_from_slice(&u32::MAX.to_le_bytes()); // len
            s.write_all(&bad).unwrap();
            s
        });
        let site = listener.accept(&TcpConfig::default()).unwrap();
        assert!(matches!(site.recv().unwrap_err(), NetError::Io(_)));
        drop(writer.join().unwrap());
    }
}
