//! Query multiplexing: many concurrent queries over one shared
//! coordinator transport.
//!
//! A [`QueryMux`] owns a shared [`CoordinatorTransport`] (one persistent
//! connection per site) and runs a single dispatcher thread that routes
//! every inbound frame to the query it belongs to by
//! [`Message::query_id`]. Each admitted query calls
//! [`QueryMux::register`] and receives a [`MuxHandle`] — itself a
//! [`CoordinatorTransport`] — that:
//!
//! * stamps its query id on every outgoing frame, and
//! * keeps its **own** [`NetStats`], recording sends at send time and
//!   receives at delivery time,
//!
//! so per-query round/byte/message accounting is exactly what a serial
//! single-query session over a dedicated connection would record. The
//! shared transport's own [`NetStats`] still accumulates the union of
//! all queries' traffic (plus connection-scoped control frames); the
//! per-query handles are the authoritative accounting, and obs handles
//! should be attached to them, not to the shared stats, to avoid
//! duplicate events.
//!
//! Link failures are connection-scoped: a site dying takes down every
//! in-flight query on the mux, so the dispatcher fans a
//! [`NetError::SiteDisconnected`] out to all registered queries and
//! remembers it — queries registered after the failure fail fast too.

use crate::stats::{Direction, NetStats};
use crate::transport::{CoordinatorTransport, Message, NetError};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Dispatcher poll granularity (bounds shutdown latency).
const POLL_TICK: Duration = Duration::from_millis(50);

/// What the dispatcher forwards to a registered query.
enum Routed {
    /// A frame from `site` addressed to this query.
    Msg(usize, Message),
    /// The shared connection failed; the query cannot complete.
    Failed(NetError),
}

/// State shared between the mux, its dispatcher, and the handles.
struct MuxShared {
    queries: Mutex<HashMap<u32, Sender<Routed>>>,
    /// First fatal connection error, delivered to late registrants.
    failed: Mutex<Option<NetError>>,
    stop: AtomicBool,
}

impl MuxShared {
    fn fan_out(&self, err: &NetError) {
        *self.failed.lock() = Some(err.clone());
        for tx in self.queries.lock().values() {
            let _ = tx.send(Routed::Failed(err.clone()));
        }
    }
}

/// Multiplexes concurrent queries onto one shared coordinator transport.
pub struct QueryMux {
    inner: Arc<dyn CoordinatorTransport + Sync>,
    shared: Arc<MuxShared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for QueryMux {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryMux")
            .field("n_sites", &self.inner.n_sites())
            .field("active_queries", &self.shared.queries.lock().len())
            .finish()
    }
}

impl QueryMux {
    /// Wrap a shared transport and start the dispatcher thread.
    pub fn new(inner: Arc<dyn CoordinatorTransport + Sync>) -> QueryMux {
        let shared = Arc::new(MuxShared {
            queries: Mutex::new(HashMap::new()),
            failed: Mutex::new(None),
            stop: AtomicBool::new(false),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("query-mux".to_string())
                .spawn(move || loop {
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match inner.recv(POLL_TICK) {
                        Ok((site, msg)) => {
                            let tx = shared.queries.lock().get(&msg.query_id).cloned();
                            // Unroutable frames (a query that already
                            // aborted and deregistered) are dropped.
                            if let Some(tx) = tx {
                                let _ = tx.send(Routed::Msg(site, msg));
                            }
                        }
                        Err(NetError::Timeout) => {}
                        Err(err @ NetError::SiteDisconnected { .. }) => {
                            // The connection star is degraded for every
                            // query; keep draining the other links.
                            shared.fan_out(&err);
                        }
                        Err(err) => {
                            shared.fan_out(&err);
                            return;
                        }
                    }
                })
                .expect("spawning query-mux dispatcher")
        };
        QueryMux {
            inner,
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// Number of site links on the shared transport.
    pub fn n_sites(&self) -> usize {
        self.inner.n_sites()
    }

    /// The shared transport (for connection-scoped control frames such
    /// as the final shutdown broadcast; these are charged to the shared
    /// stats, not to any query).
    pub fn shared_transport(&self) -> &Arc<dyn CoordinatorTransport + Sync> {
        &self.inner
    }

    /// Register a query and get its dedicated transport view. The
    /// handle's [`NetStats`] starts fresh (round 0 open), mirroring a
    /// dedicated serial connection. Panics if the id is already active.
    pub fn register(&self, query_id: u32) -> MuxHandle {
        assert_ne!(query_id, 0, "query id 0 is the control/legacy stream");
        let (tx, rx) = unbounded();
        if let Some(err) = self.shared.failed.lock().clone() {
            let _ = tx.send(Routed::Failed(err));
        }
        let prev = self.shared.queries.lock().insert(query_id, tx);
        assert!(prev.is_none(), "query id {query_id} already registered");
        let stats = NetStats::new(self.inner.n_sites());
        stats.set_transport(self.inner.stats().transport());
        MuxHandle {
            query_id,
            inner: Arc::clone(&self.inner),
            shared: Arc::clone(&self.shared),
            rx: Mutex::new(rx),
            stats,
        }
    }

    /// Stop the dispatcher and wait for it to exit. Called by `Drop`;
    /// explicit calls are idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.dispatcher.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryMux {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One query's view of the shared connection star: a
/// [`CoordinatorTransport`] that stamps the query id on egress and
/// receives only this query's frames, with per-query [`NetStats`].
pub struct MuxHandle {
    query_id: u32,
    inner: Arc<dyn CoordinatorTransport + Sync>,
    shared: Arc<MuxShared>,
    rx: Mutex<Receiver<Routed>>,
    stats: Arc<NetStats>,
}

impl std::fmt::Debug for MuxHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxHandle")
            .field("query_id", &self.query_id)
            .finish()
    }
}

impl MuxHandle {
    /// The query this handle serves.
    pub fn query_id(&self) -> u32 {
        self.query_id
    }
}

impl CoordinatorTransport for MuxHandle {
    fn n_sites(&self) -> usize {
        self.inner.n_sites()
    }

    fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    fn send(&self, site: usize, msg: Message) -> Result<(), NetError> {
        let msg = msg.with_query_id(self.query_id);
        if msg.tag != crate::transport::TELEMETRY_TAG {
            self.stats.record_msg_for(
                site,
                Direction::Down,
                msg.payload.len() as u64,
                Some(msg.tag),
                self.query_id,
            );
        }
        self.inner.send(site, msg)
    }

    fn recv(&self, timeout: Duration) -> Result<(usize, Message), NetError> {
        match self.rx.lock().recv_timeout(timeout) {
            Ok(Routed::Msg(site, msg)) => {
                if msg.tag != crate::transport::TELEMETRY_TAG {
                    self.stats.record_msg_for(
                        site,
                        Direction::Up,
                        msg.payload.len() as u64,
                        Some(msg.tag),
                        self.query_id,
                    );
                }
                Ok((site, msg))
            }
            Ok(Routed::Failed(err)) => Err(err),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

impl Drop for MuxHandle {
    fn drop(&mut self) {
        self.shared.queries.lock().remove(&self.query_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::star;
    use crate::stats::MESSAGE_OVERHEAD_BYTES;

    #[test]
    fn routes_frames_by_query_id() {
        let (coord, sites) = star(2);
        let mux = QueryMux::new(Arc::new(coord));
        let q1 = mux.register(1);
        let q2 = mux.register(2);

        // Echo sites: bounce each frame back on the same query stream.
        let echoes: Vec<_> = sites
            .into_iter()
            .map(|s| {
                std::thread::spawn(move || {
                    for _ in 0..2 {
                        let m = s.recv().unwrap();
                        s.send(Message::for_query(m.tag + 1, m.query_id, m.payload))
                            .unwrap();
                    }
                })
            })
            .collect();

        q1.broadcast(&Message::new(10, b"one".to_vec())).unwrap();
        q2.broadcast(&Message::new(20, b"two".to_vec())).unwrap();

        for _ in 0..2 {
            let (_, m) = q1.recv(Duration::from_secs(5)).unwrap();
            assert_eq!((m.tag, m.query_id), (11, 1));
            let (_, m) = q2.recv(Duration::from_secs(5)).unwrap();
            assert_eq!((m.tag, m.query_id), (21, 2));
        }
        for e in echoes {
            e.join().unwrap();
        }

        // Per-query stats saw only that query's traffic.
        let t1 = q1.stats().totals();
        assert_eq!(t1.down_bytes, 2 * (3 + MESSAGE_OVERHEAD_BYTES));
        assert_eq!(t1.up_bytes, 2 * (3 + MESSAGE_OVERHEAD_BYTES));
        assert_eq!((t1.down_msgs, t1.up_msgs), (2, 2));
        assert_eq!(q2.stats().totals(), t1);
    }

    #[test]
    fn failure_fans_out_to_all_queries_and_late_registrants() {
        let (coord, sites) = star(1);
        let mux = QueryMux::new(Arc::new(coord));
        let q1 = mux.register(1);
        drop(sites); // every link dies
        // The channel transport reports a dead star as Disconnected on
        // send; the dispatcher sees it once a recv errors. Poke it:
        let err = q1.recv(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, NetError::Disconnected);
        let q2 = mux.register(2);
        assert_eq!(
            q2.recv(Duration::from_secs(5)).unwrap_err(),
            NetError::Disconnected
        );
    }

    #[test]
    fn deregistered_query_frames_are_dropped() {
        let (coord, sites) = star(1);
        let mux = QueryMux::new(Arc::new(coord));
        let q1 = mux.register(1);
        drop(q1); // query aborted
        sites[0]
            .send(Message::for_query(2, 1, b"late".to_vec()))
            .unwrap();
        // A fresh query must not receive the stale frame.
        let q2 = mux.register(2);
        assert_eq!(
            q2.recv(Duration::from_millis(200)).unwrap_err(),
            NetError::Timeout
        );
    }
}
