//! Wire-time cost model.
//!
//! In-process channels move bytes in nanoseconds, so raw wall-clock would
//! hide the communication costs the paper measures over a LAN. The cost
//! model converts the recorded traffic into simulated transfer time:
//! within a round each site's link runs in parallel, but everything funnels
//! through the coordinator's uplink, so a round costs
//!
//! ```text
//! round_time = latency · (down phase present + up phase present)
//!            + total_round_bytes / bandwidth
//! ```
//!
//! — per-message latency for each synchronization phase plus serialized
//! bytes through the coordinator's NIC. This reproduces the paper's
//! quadratic curves (total bytes ∝ n²·g when every site receives every
//! group) without real network hardware.

use crate::stats::{NetStats, RoundStats};

/// Link parameters for simulated wire time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One-way latency charged once per phase (seconds).
    pub latency_s: f64,
    /// Coordinator link bandwidth (bytes/second).
    pub bandwidth_bytes_per_s: f64,
}

impl CostModel {
    /// A model resembling the paper's era: 100 Mbit/s switched LAN,
    /// ~1 ms effective per-phase latency.
    pub fn lan() -> CostModel {
        CostModel {
            latency_s: 1e-3,
            bandwidth_bytes_per_s: 100e6 / 8.0,
        }
    }

    /// A wide-area model: the distributed-warehouse motivation (routers
    /// across an ISP backbone) — 10 Mbit/s effective, 20 ms latency.
    pub fn wan() -> CostModel {
        CostModel {
            latency_s: 20e-3,
            bandwidth_bytes_per_s: 10e6 / 8.0,
        }
    }

    /// Free, instant network (isolates computation effects in ablations).
    pub fn free() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
        }
    }

    /// Simulated wire time for one round.
    pub fn round_time_s(&self, round: &RoundStats) -> f64 {
        let t = round.totals();
        let mut phases = 0.0;
        if t.down_msgs > 0 {
            phases += 1.0;
        }
        if t.up_msgs > 0 {
            phases += 1.0;
        }
        self.latency_s * phases + t.total_bytes() as f64 / self.bandwidth_bytes_per_s
    }

    /// Simulated wire time over all rounds.
    pub fn total_time_s(&self, stats: &NetStats) -> f64 {
        stats
            .rounds()
            .iter()
            .map(|r| self.round_time_s(r))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{Direction, LinkStats};

    fn round(down: u64, up: u64) -> RoundStats {
        RoundStats {
            label: "t".into(),
            per_site: vec![LinkStats {
                down_bytes: down,
                up_bytes: up,
                down_msgs: (down > 0) as u64,
                up_msgs: (up > 0) as u64,
            }],
        }
    }

    #[test]
    fn round_time_charges_phases_and_bytes() {
        let m = CostModel {
            latency_s: 0.5,
            bandwidth_bytes_per_s: 100.0,
        };
        // Both phases present: 2 × 0.5 s latency + 200/100 s transfer.
        assert!((m.round_time_s(&round(150, 50)) - 3.0).abs() < 1e-12);
        // Up only.
        assert!((m.round_time_s(&round(0, 100)) - 1.5).abs() < 1e-12);
        // Idle round is free.
        assert_eq!(m.round_time_s(&round(0, 0)), 0.0);
    }

    #[test]
    fn total_time_sums_rounds() {
        let stats = NetStats::new(1);
        stats.record(0, Direction::Down, 84); // +16 overhead = 100
        stats.begin_round("r1");
        stats.record(0, Direction::Up, 84);
        let m = CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 100.0,
        };
        assert!((m.total_time_s(&stats) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn free_model_is_zero() {
        let stats = NetStats::new(1);
        stats.record(0, Direction::Down, 1_000_000);
        assert_eq!(CostModel::free().total_time_s(&stats), 0.0);
    }

    #[test]
    fn presets_are_ordered() {
        let r = round(1_000_000, 1_000_000);
        assert!(CostModel::lan().round_time_s(&r) < CostModel::wan().round_time_s(&r));
    }
}
