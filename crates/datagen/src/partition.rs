//! Horizontal partitioners.
//!
//! A partitioner splits a fact relation across `n` warehouse sites and —
//! crucially for the paper's distribution-aware optimizations — describes
//! each site's fragment with a φ predicate ([`DomainMap`]): what every
//! tuple stored there is guaranteed to satisfy. Partitioning by attribute
//! ranges or value sets yields a *partition attribute* (Definition 2);
//! hash/random partitioning yields no knowledge (`Domain::Any`), which
//! exercises the distribution-independent paths.

use skalla_relation::{Domain, DomainMap, Relation, Result, Value};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// One site's fragment plus its φ description.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The tuples stored at the site.
    pub relation: Relation,
    /// Per-column guarantees about those tuples (φ_i). Empty for
    /// knowledge-free partitionings.
    pub domains: DomainMap,
}

impl From<Partition> for (Relation, DomainMap) {
    fn from(p: Partition) -> (Relation, DomainMap) {
        (p.relation, p.domains)
    }
}

/// Split on an integer column into `n` contiguous ranges of its *distinct
/// values* (balanced by distinct-value count, like assigning key ranges to
/// sites). The column becomes a partition attribute.
pub fn partition_by_int_ranges(rel: &Relation, column: &str, n: usize) -> Vec<Partition> {
    try_partition_by_int_ranges(rel, column, n).expect("partition column exists and is Int")
}

/// Fallible form of [`partition_by_int_ranges`].
pub fn try_partition_by_int_ranges(
    rel: &Relation,
    column: &str,
    n: usize,
) -> Result<Vec<Partition>> {
    assert!(n > 0, "cannot partition across zero sites");
    let col = rel.schema().index_of(column)?;
    let mut distinct: Vec<i64> = rel
        .column_values(column)?
        .into_iter()
        .filter_map(|v| v.as_i64())
        .collect();
    distinct.sort_unstable();

    // Assign contiguous runs of distinct values to sites.
    let mut bounds: Vec<(i64, i64)> = Vec::with_capacity(n);
    if distinct.is_empty() {
        for _ in 0..n {
            bounds.push((0, -1)); // empty range
        }
    } else {
        let per = distinct.len().div_ceil(n);
        for i in 0..n {
            let lo_idx = (i * per).min(distinct.len().saturating_sub(1));
            let hi_idx = (((i + 1) * per).min(distinct.len())).saturating_sub(1);
            if i * per >= distinct.len() {
                // More sites than distinct values: empty sites at the end.
                bounds.push((distinct[distinct.len() - 1] + 1 + i as i64, distinct[distinct.len() - 1] + i as i64));
            } else {
                bounds.push((distinct[lo_idx], distinct[hi_idx]));
            }
        }
    }

    let mut rows: Vec<Vec<skalla_relation::Row>> = vec![Vec::new(); n];
    for row in rel {
        let Some(v) = row.get(col).as_i64() else {
            // Non-integer values (NULL): keep at site 0; its φ must then be
            // weakened to Any for this column.
            rows[0].push(row.clone());
            continue;
        };
        let site = bounds
            .iter()
            .position(|(lo, hi)| v >= *lo && v <= *hi)
            .unwrap_or(n - 1);
        rows[site].push(row.clone());
    }

    let any_null = rel.iter().any(|r| r.get(col).is_null());
    Ok(bounds
        .into_iter()
        .enumerate()
        .map(|(i, (lo, hi))| {
            let mut domains = DomainMap::new();
            if !(i == 0 && any_null) {
                domains.insert(column, Domain::IntRange(lo, hi));
            }
            Partition {
                relation: Relation::from_shared(rel.schema_ref(), std::mem::take(&mut rows[i])),
                domains,
            }
        })
        .collect())
}

/// Split on any column by distributing its distinct values round-robin;
/// each site's φ is an explicit value set. Works for string keys (e.g.
/// `cust_name`). The column is a partition attribute.
pub fn partition_by_value_sets(rel: &Relation, column: &str, n: usize) -> Vec<Partition> {
    try_partition_by_value_sets(rel, column, n).expect("partition column exists")
}

/// Fallible form of [`partition_by_value_sets`].
pub fn try_partition_by_value_sets(
    rel: &Relation,
    column: &str,
    n: usize,
) -> Result<Vec<Partition>> {
    assert!(n > 0, "cannot partition across zero sites");
    let col = rel.schema().index_of(column)?;
    let mut distinct = rel.column_values(column)?;
    distinct.sort();
    let mut assignment: HashMap<Value, usize> = HashMap::with_capacity(distinct.len());
    let mut sets: Vec<BTreeSet<Value>> = vec![BTreeSet::new(); n];
    for (i, v) in distinct.into_iter().enumerate() {
        sets[i % n].insert(v.clone());
        assignment.insert(v, i % n);
    }
    let mut rows: Vec<Vec<skalla_relation::Row>> = vec![Vec::new(); n];
    for row in rel {
        let site = *assignment.get(row.get(col)).expect("value seen in scan");
        rows[site].push(row.clone());
    }
    Ok(sets
        .into_iter()
        .enumerate()
        .map(|(i, set)| Partition {
            relation: Relation::from_shared(rel.schema_ref(), std::mem::take(&mut rows[i])),
            domains: DomainMap::new().with(column, Domain::Set(set)),
        })
        .collect())
}

/// Split by hashing a column: balanced, but the coordinator learns nothing
/// (φ = no constraints). The column is still a partition attribute in the
/// formal sense, but Skalla is not told so.
pub fn partition_by_hash(rel: &Relation, column: &str, n: usize) -> Vec<Partition> {
    assert!(n > 0, "cannot partition across zero sites");
    let col = rel
        .schema()
        .index_of(column)
        .expect("partition column exists");
    let mut rows: Vec<Vec<skalla_relation::Row>> = vec![Vec::new(); n];
    for row in rel {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        row.get(col).hash(&mut h);
        rows[(h.finish() as usize) % n].push(row.clone());
    }
    rows.into_iter()
        .map(|r| Partition {
            relation: Relation::from_shared(rel.schema_ref(), r),
            domains: DomainMap::new(),
        })
        .collect()
}

/// Scatter tuples round-robin: no partition attribute exists at all (every
/// site may hold tuples of every group).
pub fn partition_round_robin(rel: &Relation, n: usize) -> Vec<Partition> {
    assert!(n > 0, "cannot partition across zero sites");
    let mut rows: Vec<Vec<skalla_relation::Row>> = vec![Vec::new(); n];
    for (i, row) in rel.iter().enumerate() {
        rows[i % n].push(row.clone());
    }
    rows.into_iter()
        .map(|r| Partition {
            relation: Relation::from_shared(rel.schema_ref(), r),
            domains: DomainMap::new(),
        })
        .collect()
}

/// Augment each partition's φ with the *observed* min/max of the given
/// integer columns. Always sound (the range holds for every stored tuple);
/// the ranges are pairwise disjoint — and hence declare partition
/// attributes — exactly when the data is value-clustered on those columns
/// (e.g. `cust_key` under contiguous-nation TPCR partitioning).
pub fn observe_int_ranges(parts: &mut [Partition], columns: &[&str]) {
    for p in &mut parts.iter_mut() {
        for col in columns {
            let Ok(idx) = p.relation.schema().index_of(col) else {
                continue;
            };
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            let mut all_int = true;
            for row in &p.relation {
                match row.get(idx).as_i64() {
                    Some(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    None => {
                        all_int = false;
                        break;
                    }
                }
            }
            if p.relation.is_empty() {
                // An empty fragment satisfies any φ; the empty set is
                // disjoint from every other site's domain, so declaring it
                // keeps the column a partition attribute.
                p.domains.insert(*col, Domain::of([]));
            } else if all_int && lo <= hi {
                p.domains.insert(*col, Domain::IntRange(lo, hi));
            }
        }
    }
}

/// Reassemble the union of partition fragments (test helper; the inverse
/// of any partitioner up to row order).
pub fn reunite(parts: &[Partition]) -> Relation {
    let mut it = parts.iter();
    let first = it.next().expect("at least one partition");
    let mut acc = first.relation.clone();
    for p in it {
        acc = acc
            .union_all(&p.relation)
            .expect("fragments share a schema");
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_relation::{row, DataType, Schema};

    fn rel() -> Relation {
        Relation::new(
            Schema::of(&[("k", DataType::Int), ("name", DataType::Str)]),
            (0..20)
                .map(|i| row![i as i64, format!("n{}", i % 7)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn int_ranges_cover_and_are_disjoint() {
        let r = rel();
        let parts = partition_by_int_ranges(&r, "k", 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.relation.len()).sum::<usize>(), 20);
        assert!(reunite(&parts).same_bag(&r));
        // φs are pairwise disjoint ranges (partition attribute).
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(parts[i]
                    .domains
                    .get("k")
                    .disjoint_from(parts[j].domains.get("k")));
            }
        }
        // Every stored tuple satisfies its site's φ.
        for p in &parts {
            let Domain::IntRange(lo, hi) = *p.domains.get("k") else {
                panic!("expected range domain");
            };
            for row in &p.relation {
                let v = row.get(0).as_i64().unwrap();
                assert!(v >= lo && v <= hi);
            }
        }
    }

    #[test]
    fn more_sites_than_values() {
        let r = Relation::new(
            Schema::of(&[("k", DataType::Int)]),
            vec![row![1i64], row![2i64]],
        )
        .unwrap();
        let parts = partition_by_int_ranges(&r, "k", 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(|p| p.relation.len()).sum::<usize>(), 2);
        // Trailing sites are empty with empty ranges.
        assert!(parts[4].relation.is_empty());
    }

    #[test]
    fn value_sets_partition_strings() {
        let r = rel();
        let parts = partition_by_value_sets(&r, "name", 3);
        assert!(reunite(&parts).same_bag(&r));
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(parts[i]
                    .domains
                    .get("name")
                    .disjoint_from(parts[j].domains.get("name")));
            }
        }
        // Tuples with the same name land at the same site.
        for p in &parts {
            let set = p.domains.get("name").as_set().unwrap().clone();
            for row in &p.relation {
                assert!(set.contains(row.get(1)));
            }
        }
    }

    #[test]
    fn hash_partitioning_has_no_knowledge() {
        let parts = partition_by_hash(&rel(), "k", 3);
        assert!(reunite(&parts).same_bag(&rel()));
        for p in &parts {
            assert_eq!(p.domains.constrained_columns().count(), 0);
        }
        // Same key always lands at the same site.
        let parts2 = partition_by_hash(&rel(), "name", 3);
        for p in &parts2 {
            let names = p.relation.column_values("name").unwrap();
            for q in &parts2 {
                if std::ptr::eq(p, q) {
                    continue;
                }
                let other = q.relation.column_values("name").unwrap();
                assert!(names.iter().all(|n| !other.contains(n)));
            }
        }
    }

    #[test]
    fn round_robin_scatters() {
        let parts = partition_round_robin(&rel(), 3);
        assert!(reunite(&parts).same_bag(&rel()));
        let sizes: Vec<usize> = parts.iter().map(|p| p.relation.len()).collect();
        assert_eq!(sizes, vec![7, 7, 6]);
    }

    #[test]
    fn observed_ranges_are_sound_and_disjoint_for_clustered_data() {
        let r = rel();
        let mut parts = partition_by_int_ranges(&r, "k", 3);
        // "name" is not clustered by k, "k" is; observe both.
        observe_int_ranges(&mut parts, &["k", "missing"]);
        for p in &parts {
            let Domain::IntRange(lo, hi) = *p.domains.get("k") else {
                panic!("expected observed range");
            };
            for row in &p.relation {
                let v = row.get(0).as_i64().unwrap();
                assert!(v >= lo && v <= hi);
            }
        }
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(parts[i]
                    .domains
                    .get("k")
                    .disjoint_from(parts[j].domains.get("k")));
            }
        }
    }

    #[test]
    fn observe_skips_non_int_and_empty() {
        let r = rel();
        let mut parts = partition_by_int_ranges(&r, "k", 3);
        observe_int_ranges(&mut parts, &["name"]);
        assert_eq!(parts[0].domains.get("name"), &Domain::Any);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(try_partition_by_int_ranges(&rel(), "zzz", 2).is_err());
        assert!(try_partition_by_value_sets(&rel(), "zzz", 2).is_err());
    }
}
