//! IP flow records — the paper's motivating application.
//!
//! A flow is a sequence of packets from a source to a destination through
//! one router, which dumps a summary tuple per flow (Sect. 2.1). This
//! generator emits the denormalized `Flow` fact relation with the schema of
//! the paper, Zipf-skewed across autonomous systems and flow sizes, and
//! with the property used in the paper's Examples 2/5: **all flows of a
//! given `source_as` pass through one router** (`router_id` functionally
//! determines a `source_as` range), making `source_as` a partition
//! attribute when partitioning by router.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skalla_relation::{DataType, Relation, Row, Schema, Value};
use std::sync::Arc;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Number of flow tuples.
    pub flows: usize,
    /// Number of routers (= natural number of warehouse sites).
    pub routers: usize,
    /// Number of source autonomous systems.
    pub source_as: usize,
    /// Number of destination autonomous systems.
    pub dest_as: usize,
    /// Zipf skew of AS popularity and flow sizes.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FlowConfig {
    /// A default network: 8 routers, 200 source AS, 100 destination AS.
    pub fn new(flows: usize, seed: u64) -> FlowConfig {
        FlowConfig {
            flows,
            routers: 8,
            source_as: 200,
            dest_as: 100,
            skew: 1.0,
            seed,
        }
    }

    /// A tiny deterministic dataset for unit tests and doc examples.
    pub fn small(seed: u64) -> FlowConfig {
        FlowConfig {
            flows: 400,
            routers: 4,
            source_as: 24,
            dest_as: 12,
            skew: 0.8,
            seed,
        }
    }
}

/// The `Flow` fact relation schema (paper Sect. 2.1, minus the mask
/// attributes which no example uses).
pub fn flow_schema() -> Schema {
    Schema::of(&[
        ("router_id", DataType::Int),
        ("source_ip", DataType::Str),
        ("source_port", DataType::Int),
        ("source_as", DataType::Int),
        ("dest_ip", DataType::Str),
        ("dest_port", DataType::Int),
        ("dest_as", DataType::Int),
        ("start_time", DataType::Int),
        ("end_time", DataType::Int),
        ("num_packets", DataType::Int),
        ("num_bytes", DataType::Int),
    ])
}

/// The router that carries a source AS: contiguous AS ranges per router,
/// so `source_as` is a partition attribute under router partitioning.
pub fn router_of(source_as: i64, n_source_as: usize, n_routers: usize) -> i64 {
    let per = n_source_as.div_ceil(n_routers) as i64;
    (source_as / per).min(n_routers as i64 - 1)
}

fn ip_string(rng: &mut StdRng) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(1..224u32),
        rng.gen_range(0..256u32),
        rng.gen_range(0..256u32),
        rng.gen_range(1..255u32)
    )
}

const WELL_KNOWN_PORTS: [i64; 6] = [80, 443, 25, 53, 22, 8080];

/// Generate the flow relation.
pub fn generate_flows(cfg: &FlowConfig) -> Relation {
    assert!(cfg.routers > 0 && cfg.source_as > 0 && cfg.dest_as > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sas_dist = Zipf::new(cfg.source_as, cfg.skew);
    let das_dist = Zipf::new(cfg.dest_as, cfg.skew);
    let size_dist = Zipf::new(64, cfg.skew.max(0.5));
    let schema = Arc::new(flow_schema());

    let mut rows = Vec::with_capacity(cfg.flows);
    for _ in 0..cfg.flows {
        let sas = sas_dist.sample(&mut rng) as i64;
        let das = das_dist.sample(&mut rng) as i64;
        let router = router_of(sas, cfg.source_as, cfg.routers);
        let start = rng.gen_range(0..86_400i64);
        let duration = rng.gen_range(1..600i64);
        // Flow sizes: Zipf rank → packets, bytes ≈ packets × payload.
        let rank = size_dist.sample(&mut rng) as i64;
        let packets = 1 + rank * rng.gen_range(1..20i64);
        let bytes = packets * rng.gen_range(40..1500i64);
        // ~70% of traffic on well-known ports (the "web traffic" queries).
        let dport = if rng.gen_bool(0.7) {
            WELL_KNOWN_PORTS[rng.gen_range(0..WELL_KNOWN_PORTS.len())]
        } else {
            rng.gen_range(1024..65_536i64)
        };
        rows.push(Row::new(vec![
            Value::Int(router),
            Value::str(ip_string(&mut rng)),
            Value::Int(rng.gen_range(1024..65_536i64)),
            Value::Int(sas),
            Value::str(ip_string(&mut rng)),
            Value::Int(dport),
            Value::Int(das),
            Value::Int(start),
            Value::Int(start + duration),
            Value::Int(packets),
            Value::Int(bytes),
        ]));
    }
    Relation::from_shared(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_count() {
        let r = generate_flows(&FlowConfig::small(1));
        assert_eq!(r.len(), 400);
        assert_eq!(r.schema(), &flow_schema());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate_flows(&FlowConfig::small(5)),
            generate_flows(&FlowConfig::small(5))
        );
    }

    #[test]
    fn router_determined_by_source_as() {
        let cfg = FlowConfig::small(2);
        let r = generate_flows(&cfg);
        let (rid, sas) = (
            r.schema().index_of("router_id").unwrap(),
            r.schema().index_of("source_as").unwrap(),
        );
        for row in &r {
            assert_eq!(
                row.get(rid).as_i64().unwrap(),
                router_of(row.get(sas).as_i64().unwrap(), cfg.source_as, cfg.routers)
            );
        }
    }

    #[test]
    fn router_ranges_are_contiguous_and_disjoint() {
        // source_as values of different routers never interleave.
        let n_as = 24;
        let n_routers = 4;
        let mut last = -1i64;
        for asn in 0..n_as as i64 {
            let r = router_of(asn, n_as, n_routers);
            assert!(r >= last, "router ids non-decreasing in AS order");
            last = r;
        }
        assert_eq!(router_of(0, n_as, n_routers), 0);
        assert_eq!(router_of(23, n_as, n_routers), 3);
    }

    #[test]
    fn times_and_sizes_sane() {
        let r = generate_flows(&FlowConfig::small(3));
        let s = r.schema();
        let (st, et, np, nb) = (
            s.index_of("start_time").unwrap(),
            s.index_of("end_time").unwrap(),
            s.index_of("num_packets").unwrap(),
            s.index_of("num_bytes").unwrap(),
        );
        for row in &r {
            assert!(row.get(et).as_i64().unwrap() > row.get(st).as_i64().unwrap());
            assert!(row.get(np).as_i64().unwrap() >= 1);
            assert!(row.get(nb).as_i64().unwrap() >= 40);
        }
    }

    #[test]
    fn traffic_is_skewed_across_sources() {
        let cfg = FlowConfig::small(4);
        let r = generate_flows(&cfg);
        let sas = r.schema().index_of("source_as").unwrap();
        let head = r
            .iter()
            .filter(|row| row.get(sas).as_i64().unwrap() < 3)
            .count();
        assert!(head * 3 > r.len(), "head ASes carry > 1/3: {head}/{}", r.len());
    }
}
