//! A small Zipf-distributed sampler.
//!
//! Network traffic (the paper's motivating workload) is heavily skewed: a
//! few autonomous systems carry most flows. `rand` does not ship a Zipf
//! distribution, so we precompute the CDF over `n` ranks with exponent `s`
//! and sample by binary search — O(log n) per draw, exact, deterministic
//! under a seeded RNG.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s ≥ 0`
/// (`s = 0` is uniform; larger `s` is more skewed).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_head_dominates() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s = 1.2 the top 10 of 100 ranks carry well over half.
        assert!(head as f64 > 0.6 * n as f64, "head fraction {head}/{n}");
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn all_ranks_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
