//! # skalla-datagen — seeded synthetic datasets
//!
//! The paper evaluates on TPC(R) `dbgen` output and motivates with NetFlow
//! traces; neither is redistributable here, so this crate generates
//! equivalent synthetic data from scratch: a denormalized TPC-R-style fact
//! relation ([`tpcr`]), IP flow records ([`flow`]), a [`zipf`] sampler for
//! realistic skew, and [`partition`]ers that split a fact relation across
//! warehouse sites *and* describe each fragment with the φ predicates the
//! distribution-aware optimizations consume.

#![warn(missing_docs)]

pub mod flow;
pub mod partition;
pub mod tpcr;
pub mod zipf;

pub use flow::{flow_schema, generate_flows, FlowConfig};
pub use partition::{
    partition_by_hash, partition_by_int_ranges, partition_by_value_sets,
    partition_round_robin, reunite, Partition,
};
pub use tpcr::{generate_tpcr, tpcr_schema, TpcrConfig};
pub use zipf::Zipf;
