//! TPC-R-style synthetic data.
//!
//! The paper derived its test database from the TPC(R) `dbgen` program: a
//! denormalized relation of 6 million tuples (900 MB) partitioned on
//! `NationKey` — and therefore also on `CustKey`, since a customer belongs
//! to one nation. The experiments group either on `Customer.Name`
//! (100,000 distinct values — "high cardinality") or on attributes with
//! 2,000–4,000 distinct values ("low cardinality").
//!
//! This generator reproduces those cardinality knobs at configurable row
//! counts: `cust_name` is functionally determined by `cust_key`,
//! `nation_key` is functionally determined by `cust_key` (so partitioning
//! on `nation_key` also partitions `cust_key` and `cust_name`), and
//! `supp_key` provides the low-cardinality grouping attribute.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skalla_relation::{DataType, Relation, Row, Schema, Value};
use std::sync::Arc;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TpcrConfig {
    /// Number of fact tuples.
    pub rows: usize,
    /// Number of customers (distinct `cust_key` / `cust_name` values; the
    /// paper's high-cardinality grouping uses 100,000).
    pub customers: usize,
    /// Number of nations (TPC uses 25). `nation_key = cust_key % nations`.
    pub nations: usize,
    /// Number of suppliers (the paper's low-cardinality attribute has
    /// 2,000–4,000 distinct values).
    pub suppliers: usize,
    /// Number of parts.
    pub parts: usize,
    /// Zipf skew of customer activity (0 = uniform).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TpcrConfig {
    /// A laptop-scale default preserving the paper's cardinality ratios.
    pub fn new(rows: usize, seed: u64) -> TpcrConfig {
        TpcrConfig {
            rows,
            customers: (rows / 60).max(100),
            nations: 25,
            suppliers: (rows / 2400).clamp(20, 4000),
            parts: (rows / 30).max(200),
            skew: 0.0,
            seed,
        }
    }

    /// A tiny deterministic dataset for unit tests.
    pub fn small(seed: u64) -> TpcrConfig {
        TpcrConfig {
            rows: 500,
            customers: 60,
            nations: 8,
            suppliers: 12,
            parts: 40,
            skew: 0.0,
            seed,
        }
    }
}

/// The denormalized TPCR schema.
pub fn tpcr_schema() -> Schema {
    Schema::of(&[
        ("order_key", DataType::Int),
        ("line_number", DataType::Int),
        ("cust_key", DataType::Int),
        ("cust_name", DataType::Str),
        ("cust_group", DataType::Int),
        ("nation_key", DataType::Int),
        ("region_key", DataType::Int),
        ("supp_key", DataType::Int),
        ("part_key", DataType::Int),
        ("quantity", DataType::Int),
        ("extended_price", DataType::Double),
        ("discount", DataType::Double),
        ("ship_date", DataType::Int),
        ("return_flag", DataType::Str),
        ("order_priority", DataType::Str),
    ])
}

/// The nation a customer belongs to: contiguous blocks of customer keys
/// per nation, so partitioning on `nation_key` also partitions `cust_key`,
/// `cust_name` and `cust_group` — the paper's "partitioned on the
/// NationKey attribute (and therefore also on the CustKey attribute)".
pub fn nation_of(cust_key: i64, customers: usize, nations: usize) -> i64 {
    let per = customers.div_ceil(nations) as i64;
    (cust_key / per).min(nations as i64 - 1)
}

/// The low-cardinality grouping attribute: blocks of [`CUST_GROUP_SIZE`]
/// consecutive customers (the paper's 2,000–4,000-value attributes). Being
/// a function of `cust_key`, it is partition-aligned.
pub fn cust_group_of(cust_key: i64) -> i64 {
    cust_key / CUST_GROUP_SIZE
}

/// Customers per `cust_group` value.
pub const CUST_GROUP_SIZE: i64 = 32;

/// The canonical customer name for a key (`Customer#000000042`).
pub fn customer_name(cust_key: i64) -> String {
    format!("Customer#{cust_key:09}")
}

const RETURN_FLAGS: [&str; 3] = ["R", "A", "N"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Generate the denormalized TPCR relation.
pub fn generate_tpcr(cfg: &TpcrConfig) -> Relation {
    assert!(cfg.customers > 0 && cfg.nations > 0 && cfg.suppliers > 0 && cfg.parts > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cust_dist = Zipf::new(cfg.customers, cfg.skew);
    let schema = Arc::new(tpcr_schema());

    // Intern repeated strings so generation stays cheap.
    let names: Vec<Arc<str>> = (0..cfg.customers)
        .map(|c| Arc::from(customer_name(c as i64)))
        .collect();
    let flags: Vec<Arc<str>> = RETURN_FLAGS.iter().map(|s| Arc::from(*s)).collect();
    let prios: Vec<Arc<str>> = PRIORITIES.iter().map(|s| Arc::from(*s)).collect();

    let mut rows = Vec::with_capacity(cfg.rows);
    let mut order_key = 0i64;
    let mut line_number = 0i64;
    for _ in 0..cfg.rows {
        // ~4 lines per order on average.
        line_number += 1;
        if line_number > 4 || rng.gen_bool(0.25) {
            order_key += 1;
            line_number = 1;
        }
        let cust_key = cust_dist.sample(&mut rng) as i64;
        let nation_key = nation_of(cust_key, cfg.customers, cfg.nations);
        let region_key = nation_key % 5;
        let supp_key = rng.gen_range(0..cfg.suppliers) as i64;
        let part_key = rng.gen_range(0..cfg.parts) as i64;
        let quantity = rng.gen_range(1..=50i64);
        let price = (quantity as f64) * rng.gen_range(900.0..=110_000.0) / 100.0;
        let discount = f64::from(rng.gen_range(0..=10u32)) / 100.0;
        let ship_date = rng.gen_range(0..2557i64); // ~7 years of days
        rows.push(Row::new(vec![
            Value::Int(order_key),
            Value::Int(line_number),
            Value::Int(cust_key),
            Value::Str(Arc::clone(&names[cust_key as usize])),
            Value::Int(cust_group_of(cust_key)),
            Value::Int(nation_key),
            Value::Int(region_key),
            Value::Int(supp_key),
            Value::Int(part_key),
            Value::Int(quantity),
            Value::Double((price * 100.0).round() / 100.0),
            Value::Double(discount),
            Value::Int(ship_date),
            Value::Str(Arc::clone(&flags[rng.gen_range(0..flags.len())])),
            Value::Str(Arc::clone(&prios[rng.gen_range(0..prios.len())])),
        ]));
    }
    Relation::from_shared(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_row_count() {
        let r = generate_tpcr(&TpcrConfig::small(1));
        assert_eq!(r.len(), 500);
        assert_eq!(r.schema(), &tpcr_schema());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_tpcr(&TpcrConfig::small(7));
        let b = generate_tpcr(&TpcrConfig::small(7));
        assert_eq!(a, b);
        let c = generate_tpcr(&TpcrConfig::small(8));
        assert_ne!(a, c);
    }

    #[test]
    fn functional_dependencies_hold() {
        let cfg = TpcrConfig::small(3);
        let r = generate_tpcr(&cfg);
        let (ck, cn, cg, nk) = (
            r.schema().index_of("cust_key").unwrap(),
            r.schema().index_of("cust_name").unwrap(),
            r.schema().index_of("cust_group").unwrap(),
            r.schema().index_of("nation_key").unwrap(),
        );
        for row in &r {
            let cust = row.get(ck).as_i64().unwrap();
            assert_eq!(row.get(cn).as_str().unwrap(), customer_name(cust));
            assert_eq!(row.get(cg).as_i64().unwrap(), cust_group_of(cust));
            assert_eq!(
                row.get(nk).as_i64().unwrap(),
                nation_of(cust, cfg.customers, cfg.nations)
            );
        }
        // Contiguity: customers of nation k all precede those of nation k+1.
        let mut seen: Vec<(i64, i64)> = r
            .iter()
            .map(|row| (row.get(ck).as_i64().unwrap(), row.get(nk).as_i64().unwrap()))
            .collect();
        seen.sort_unstable();
        for w in seen.windows(2) {
            assert!(w[0].1 <= w[1].1, "nation not monotone in cust_key");
        }
    }

    #[test]
    fn cardinalities_bounded_by_config() {
        let cfg = TpcrConfig::small(5);
        let r = generate_tpcr(&cfg);
        assert!(r.column_values("cust_key").unwrap().len() <= cfg.customers);
        assert!(r.column_values("nation_key").unwrap().len() <= cfg.nations);
        assert!(r.column_values("supp_key").unwrap().len() <= cfg.suppliers);
        assert_eq!(r.column_values("return_flag").unwrap().len(), 3);
    }

    #[test]
    fn values_in_domain() {
        let r = generate_tpcr(&TpcrConfig::small(9));
        let (q, d) = (
            r.schema().index_of("quantity").unwrap(),
            r.schema().index_of("discount").unwrap(),
        );
        for row in &r {
            let quantity = row.get(q).as_i64().unwrap();
            assert!((1..=50).contains(&quantity));
            let discount = row.get(d).as_f64().unwrap();
            assert!((0.0..=0.10).contains(&discount));
        }
    }

    #[test]
    fn skew_concentrates_customers() {
        let mut cfg = TpcrConfig::small(11);
        cfg.rows = 2000;
        cfg.skew = 1.2;
        let r = generate_tpcr(&cfg);
        let ck = r.schema().index_of("cust_key").unwrap();
        let head = r
            .iter()
            .filter(|row| row.get(ck).as_i64().unwrap() < 6)
            .count();
        assert!(
            head > r.len() / 3,
            "top 10% of customers should dominate: {head}/{}",
            r.len()
        );
    }
}
