//! Measurement harness shared by the `fig2`…`fig5` binaries and the
//! criterion benches: run a (query, flags) pair on a cluster, collect the
//! paper's metrics, print series tables, and check curve shapes.

use skalla_core::{Cluster, DistributedPlan, EngineConfig, OptFlags, Planner, QueryResult};
use skalla_gmdj::GmdjExpr;
use skalla_net::CostModel;
use skalla_obs::chrome::metrics_snapshot;
use skalla_obs::json::Json;
use skalla_obs::Obs;
use std::collections::BTreeMap;

/// One measured execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Simulated evaluation time (compute + modeled wire time), seconds.
    pub sim_total_s: f64,
    /// Simulated per-round max site compute, summed (seconds).
    pub sim_site_s: f64,
    /// Coordinator compute (seconds).
    pub sim_coord_s: f64,
    /// Modeled communication time (seconds).
    pub sim_comm_s: f64,
    /// Bytes moved, both directions.
    pub bytes: u64,
    /// Rows shipped down / up.
    pub rows: (u64, u64),
    /// Synchronization rounds.
    pub rounds: usize,
    /// Result group count.
    pub groups: usize,
    /// Real wall-clock seconds.
    pub wall_s: f64,
}

impl Measurement {
    /// Extract metrics from a query result under a cost model.
    pub fn from(result: &QueryResult, cost: &CostModel) -> Measurement {
        let sim = result.stats.simulated(cost);
        Measurement {
            sim_total_s: sim.total_s(),
            sim_site_s: sim.site_s,
            sim_coord_s: sim.coord_s,
            sim_comm_s: sim.comm_s,
            bytes: result.stats.total_bytes(),
            rows: result.stats.total_rows(),
            rounds: result.stats.n_rounds(),
            groups: result.relation.len(),
            wall_s: result.stats.wall_s,
        }
    }
}

/// Plan and execute, returning the plan and the measurement.
pub fn run_once(
    cluster: &Cluster,
    expr: &GmdjExpr,
    flags: OptFlags,
    cost: &CostModel,
) -> (DistributedPlan, Measurement) {
    let plan = Planner::new(cluster.distribution()).optimize(expr, flags);
    let result = cluster
        .execute(&plan)
        .unwrap_or_else(|e| panic!("benchmark query failed: {e}\n{}", plan.explain()));
    let m = Measurement::from(&result, cost);
    (plan, m)
}

/// Plan and execute with a span recorder attached, returning the
/// measurement plus a trace-derived JSON report: headline numbers,
/// per-span-name duration roll-ups, and the flat metrics snapshot.
/// Serialize with [`Json::to_json`].
pub fn run_traced(
    cluster: &Cluster,
    expr: &GmdjExpr,
    flags: OptFlags,
    cost: &CostModel,
) -> (Measurement, Json) {
    let obs = Obs::recording();
    let mut cluster = cluster.clone();
    cluster.configure(&EngineConfig {
        obs: obs.clone(),
        ..EngineConfig::default()
    });
    let planner = Planner::new(cluster.distribution()).with_obs(obs.clone());
    let (plan, decisions) = planner.optimize_with_decisions(expr, flags);
    let result = cluster
        .execute(&plan)
        .unwrap_or_else(|e| panic!("benchmark query failed: {e}\n{}", plan.explain()));
    let m = Measurement::from(&result, cost);
    let rec = obs.recorder().expect("recording handle");

    // Roll up closed spans by name.
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in rec.spans() {
        if let Some(d) = s.dur_us {
            let e = totals.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += d;
        }
    }
    let span_totals = Json::Obj(
        totals
            .into_iter()
            .map(|(name, (count, total_us))| {
                (
                    name,
                    Json::obj(vec![
                        ("count", count.into()),
                        ("total_us", total_us.into()),
                    ]),
                )
            })
            .collect(),
    );
    let report = Json::obj(vec![
        ("rounds", m.rounds.into()),
        ("bytes", m.bytes.into()),
        ("rows_down", m.rows.0.into()),
        ("rows_up", m.rows.1.into()),
        ("groups", m.groups.into()),
        ("optimizer_decisions", Json::Arr(
            decisions.iter().map(|d| d.to_string().into()).collect(),
        )),
        ("span_totals", span_totals),
        ("metrics", metrics_snapshot(rec)),
    ]);
    (m, report)
}

/// Run `repeats` times and keep the measurement with the median simulated
/// time (compute measurements are noisy; traffic is deterministic).
pub fn run_median(
    cluster: &Cluster,
    expr: &GmdjExpr,
    flags: OptFlags,
    cost: &CostModel,
    repeats: usize,
) -> Measurement {
    let mut ms: Vec<Measurement> = (0..repeats.max(1))
        .map(|_| run_once(cluster, expr, flags, cost).1)
        .collect();
    ms.sort_by(|a, b| a.sim_total_s.total_cmp(&b.sim_total_s));
    ms.swap_remove(ms.len() / 2)
}

/// A labelled series of measurements over an x axis (sites or scale).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, measurement)` points.
    pub points: Vec<(usize, Measurement)>,
}

impl Series {
    /// The y values under a metric accessor.
    pub fn ys(&self, f: impl Fn(&Measurement) -> f64) -> Vec<f64> {
        self.points.iter().map(|(_, m)| f(m)).collect()
    }
}

/// Print aligned series tables for one metric.
pub fn print_metric_table(
    title: &str,
    x_name: &str,
    series: &[Series],
    metric: impl Fn(&Measurement) -> String,
) {
    println!("\n### {title}");
    print!("| {x_name:>5} |");
    for s in series {
        print!(" {:>24} |", s.label);
    }
    println!();
    print!("|------:|");
    for _ in series {
        print!("{}|", "-".repeat(26));
    }
    println!();
    let xs: Vec<usize> = series[0].points.iter().map(|(x, _)| *x).collect();
    for (i, x) in xs.iter().enumerate() {
        print!("| {x:>5} |");
        for s in series {
            print!(" {:>24} |", metric(&s.points[i].1));
        }
        println!();
    }
}

/// How a curve grows over its x axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Growth {
    /// Roughly ∝ x.
    Linear,
    /// Clearly super-linear, approaching ∝ x².
    Quadratic,
}

/// Classify growth by the ratio y(last)/y(first) against x(last)/x(first):
/// linear if the exponent ≲ 1.35, quadratic if ≳ 1.6.
pub fn classify_growth(xs: &[usize], ys: &[f64]) -> Option<Growth> {
    let (x0, x1) = (*xs.first()? as f64, *xs.last()? as f64);
    let (y0, y1) = (*ys.first()?, *ys.last()?);
    if x1 <= x0 || y0 <= 0.0 || y1 <= 0.0 {
        return None;
    }
    let exponent = (y1 / y0).ln() / (x1 / x0).ln();
    if exponent <= 1.35 {
        Some(Growth::Linear)
    } else if exponent >= 1.6 {
        Some(Growth::Quadratic)
    } else {
        None
    }
}

/// Assert a series' growth class, with a helpful message.
pub fn assert_growth(
    name: &str,
    xs: &[usize],
    ys: &[f64],
    expected: Growth,
) -> std::result::Result<(), String> {
    match classify_growth(xs, ys) {
        Some(g) if g == expected => Ok(()),
        other => Err(format!(
            "{name}: expected {expected:?}, classified {other:?} (ys = {ys:?})"
        )),
    }
}

/// Pretty-print a byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10_000_000 {
        format!("{:.1} MB", b as f64 / 1e6)
    } else if b >= 10_000 {
        format!("{:.1} kB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Pretty-print seconds.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

/// Parse `--flag value`-style arguments: returns the value after `name`.
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare flag is present.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_classification() {
        let xs = [1usize, 2, 4, 8];
        let linear: Vec<f64> = xs.iter().map(|&x| 3.0 * x as f64 + 1.0).collect();
        let quad: Vec<f64> = xs.iter().map(|&x| (x * x) as f64).collect();
        assert_eq!(classify_growth(&xs, &linear), Some(Growth::Linear));
        assert_eq!(classify_growth(&xs, &quad), Some(Growth::Quadratic));
        assert!(assert_growth("q", &xs, &quad, Growth::Quadratic).is_ok());
        assert!(assert_growth("q", &xs, &quad, Growth::Linear).is_err());
        // Degenerate inputs.
        assert_eq!(classify_growth(&[3], &[1.0]), None);
        assert_eq!(classify_growth(&xs, &[0.0, 0.0, 0.0, 0.0]), None);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(500), "500 B");
        assert_eq!(fmt_bytes(25_000), "25.0 kB");
        assert_eq!(fmt_bytes(12_000_000), "12.0 MB");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
    }

    #[test]
    fn traced_report_round_trips_through_parser() {
        use skalla_gmdj::prelude::*;
        use skalla_relation::{row, DataType, Domain, DomainMap, Relation, Schema};
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let p0 = Relation::new(
            schema.clone(),
            vec![row![1i64, 10i64], row![2i64, 5i64]],
        )
        .unwrap();
        let p1 = Relation::new(schema, vec![row![3i64, 7i64]]).unwrap();
        let cluster = Cluster::from_partitions(
            "t",
            vec![
                (p0, DomainMap::new().with("g", Domain::IntRange(1, 2))),
                (p1, DomainMap::new().with("g", Domain::IntRange(3, 3))),
            ],
        );
        let expr = GmdjExprBuilder::distinct_base("t", &["g"])
            .gmdj(Gmdj::new("t").block(
                ThetaBuilder::group_by(&["g"]).build(),
                vec![AggSpec::count("cnt")],
            ))
            .build();
        let (m, report) =
            run_traced(&cluster, &expr, OptFlags::all(), &CostModel::lan());
        let parsed = skalla_obs::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("rounds").and_then(|v| v.as_u64()),
            Some(m.rounds as u64)
        );
        assert_eq!(
            parsed.get("bytes").and_then(|v| v.as_u64()),
            Some(m.bytes)
        );
        let spans = parsed.get("span_totals").expect("span_totals");
        assert!(spans.get("query").is_some());
        assert!(parsed
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .is_some());
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--scale", "3", "--check"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--scale").as_deref(), Some("3"));
        assert_eq!(arg_value(&args, "--other"), None);
        assert!(has_flag(&args, "--check"));
        assert!(!has_flag(&args, "--nope"));
    }
}
