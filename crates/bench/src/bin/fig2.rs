//! **Figure 2 — the group reduction query** (speed-up experiment).
//!
//! The TPCR relation is divided equally among eight sites; the number of
//! sites participating in the query varies from 1 to 8, so both the group
//! count and the site count grow linearly. Series:
//!
//! * *no reduction* — quadratic time and bytes (k·g groups to k sites);
//! * *site-side (distribution-independent) group reduction* — halves the
//!   inefficiency (uplink becomes linear, downlink stays quadratic);
//! * *site+coordinator (distribution-aware) group reduction* — linear.
//!
//! `--check-formula` additionally verifies the paper's Sect. 5.2 traffic
//! analysis: reduced/unreduced groups = (2c + 2n + 1)/(4n + 1) within 5%.

use skalla_bench::harness::*;
use skalla_bench::workloads::*;
use skalla_core::OptFlags;
use skalla_net::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if has_flag(&args, "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::default_scale()
    };
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let cost = CostModel::lan();
    let expr = group_reduction_query(Cardinality::High);

    println!("# Figure 2: group reduction query (high cardinality, partition-attribute grouping)");
    println!(
        "# rows/site = {}, customers = {}, repeats = {repeats}",
        scale.rows_per_site, scale.customers
    );
    let parts = tpcr_partitions(scale);

    let variants = [
        ("no reduction", OptFlags::none()),
        (
            "site GR (dist-indep)",
            OptFlags {
                group_reduction_site: true,
                ..OptFlags::none()
            },
        ),
        ("site+coord GR", OptFlags::group_reduction_only()),
    ];

    let ks: Vec<usize> = (1..=N_SITES).collect();
    let mut series: Vec<Series> = Vec::new();
    for (label, flags) in variants {
        let mut points = Vec::new();
        for &k in &ks {
            let cluster = cluster_of(&parts, k);
            points.push((k, run_median(&cluster, &expr, flags, &cost, repeats)));
        }
        series.push(Series {
            label: label.to_string(),
            points,
        });
    }

    print_metric_table("query evaluation time (simulated, LAN)", "sites", &series, |m| {
        fmt_secs(m.sim_total_s)
    });
    print_metric_table("data transferred", "sites", &series, |m| fmt_bytes(m.bytes));
    print_metric_table("rows down/up", "sites", &series, |m| {
        format!("{}/{}", m.rows.0, m.rows.1)
    });

    if has_flag(&args, "--check") {
        let mut failures = Vec::new();
        let bytes = |s: &Series| s.ys(|m| m.bytes as f64);
        for (s, g) in [
            (&series[0], Growth::Quadratic),
            (&series[2], Growth::Linear),
        ] {
            if let Err(e) = assert_growth(&s.label, &ks, &bytes(s), g) {
                failures.push(e);
            }
        }
        // Site-side GR "solves half of the inefficiency": uplink becomes
        // linear while the downlink stays quadratic.
        let gr = &series[1];
        if let Err(e) = assert_growth(
            "site GR downlink rows",
            &ks,
            &gr.ys(|m| m.rows.0 as f64),
            Growth::Quadratic,
        ) {
            failures.push(e);
        }
        if let Err(e) = assert_growth(
            "site GR uplink rows",
            &ks,
            &gr.ys(|m| m.rows.1 as f64),
            Growth::Linear,
        ) {
            failures.push(e);
        }
        // Lesser degree: site GR strictly below no-reduction at 8 sites.
        let b0 = series[0].points.last().unwrap().1.bytes;
        let b1 = series[1].points.last().unwrap().1.bytes;
        let b2 = series[2].points.last().unwrap().1.bytes;
        if !(b2 < b1 && b1 < b0) {
            failures.push(format!("expected ordering coord<site<none: {b2} {b1} {b0}"));
        }
        assert!(failures.is_empty(), "shape checks failed:\n{}", failures.join("\n"));
        println!("\nshape checks passed ✓");
    }

    if has_flag(&args, "--check-formula") {
        println!("\n### Sect. 5.2 formula check: (2c+2n+1)/(4n+1), c = 1");
        println!("| n | predicted | measured | error |");
        println!("|---|-----------|----------|-------|");
        for &n in &[2usize, 4, 8] {
            let cluster = cluster_of(&parts, n);
            let (_, base) = run_once(&cluster, &expr, OptFlags::none(), &cost);
            let (_, red) = run_once(
                &cluster,
                &expr,
                OptFlags {
                    group_reduction_site: true,
                    ..OptFlags::none()
                },
                &cost,
            );
            let predicted = (2.0 + 2.0 * n as f64 + 1.0) / (4.0 * n as f64 + 1.0);
            let measured = (red.rows.0 + red.rows.1) as f64 / (base.rows.0 + base.rows.1) as f64;
            let err = (measured - predicted).abs() / predicted;
            println!(
                "| {n} | {predicted:.4} | {measured:.4} | {:.2}% |",
                err * 100.0
            );
            assert!(err < 0.05, "formula off by more than 5% at n={n}");
        }
        println!("formula matches within 5% ✓");
    }

    // Emit a trace-derived JSON report for the full-cluster reduced run.
    if let Some(path) = arg_value(&args, "--trace-json") {
        let cluster = cluster_of(&parts, N_SITES);
        let (_, report) =
            run_traced(&cluster, &expr, OptFlags::group_reduction_only(), &cost);
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote trace-derived report to {path}");
    }
}
