//! **Figure 5 — the combined reductions query** (scale-up experiment).
//!
//! Four sites; the data set size per site grows ×1…×4; the combined
//! reductions query runs with all optimizations on or all off. The paper
//! reports: linear growth in both cases, with optimizations cutting
//! evaluation time roughly in half (left), and a per-component breakdown
//! (site compute / coordinator compute / communication), each growing
//! linearly (right). A second run keeps the group count constant while
//! the data grows ("we obtained comparable results").

use skalla_bench::harness::*;
use skalla_bench::workloads::*;
use skalla_core::{Cluster, OptFlags};
use skalla_net::CostModel;

const SITES: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base_scale = if has_flag(&args, "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::default_scale()
    };
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let cost = CostModel::lan();
    let expr = combined_query(Cardinality::High);
    println!("# Figure 5: combined reductions query (scale-up, {SITES} sites)");
    println!(
        "# base rows/site = {}, base customers = {}, repeats = {repeats}",
        base_scale.rows_per_site, base_scale.customers
    );

    let factors: Vec<usize> = vec![1, 2, 3, 4];
    let mut failures: Vec<String> = Vec::new();

    for grow_groups in [true, false] {
        let regime = if grow_groups {
            "groups grow with data"
        } else {
            "constant groups"
        };
        let mut series = vec![
            Series {
                label: "no optimizations".into(),
                points: Vec::new(),
            },
            Series {
                label: "all optimizations".into(),
                points: Vec::new(),
            },
        ];
        let mut breakdown: Vec<(usize, Measurement)> = Vec::new();
        for &f in &factors {
            let scale = base_scale.scaled(f, grow_groups);
            let parts = tpcr_partitions(scale);
            let cluster: Cluster = cluster_of(&parts, SITES);
            let none = run_median(&cluster, &expr, OptFlags::none(), &cost, repeats);
            let all = run_median(&cluster, &expr, OptFlags::all(), &cost, repeats);
            breakdown.push((f, all.clone()));
            series[0].points.push((f, none));
            series[1].points.push((f, all));
        }

        print_metric_table(
            &format!("{regime}: query evaluation time (simulated, LAN)"),
            "scale",
            &series,
            |m| fmt_secs(m.sim_total_s),
        );
        print_metric_table(
            &format!("{regime}: data transferred"),
            "scale",
            &series,
            |m| fmt_bytes(m.bytes),
        );

        println!("\n### {regime}: optimized-query breakdown (Fig. 5 right)");
        println!("| scale | site compute | coordinator | communication | total |");
        println!("|------:|-------------:|------------:|--------------:|------:|");
        for (f, m) in &breakdown {
            println!(
                "| {f:>5} | {:>12} | {:>11} | {:>13} | {:>5} |",
                fmt_secs(m.sim_site_s),
                fmt_secs(m.sim_coord_s),
                fmt_secs(m.sim_comm_s),
                fmt_secs(m.sim_total_s)
            );
        }

        if has_flag(&args, "--check") {
            // Optimizations cut evaluation time substantially at every
            // scale (paper: "nearly half").
            for ((_, none), (_, all)) in series[0].points.iter().zip(&series[1].points) {
                if all.sim_total_s >= 0.8 * none.sim_total_s {
                    failures.push(format!(
                        "{regime}: optimized {:.3}s not well below {:.3}s",
                        all.sim_total_s, none.sim_total_s
                    ));
                }
            }
            // Site compute grows with the data in both regimes (wall-clock
            // measurements are noisy at small scales, so bound the 1→4
            // ratio loosely instead of fitting an exponent).
            let site = series[1].points.iter().map(|(_, m)| m.sim_site_s).collect::<Vec<_>>();
            let ratio = site.last().unwrap() / site.first().unwrap().max(1e-9);
            if !(1.5..=16.0).contains(&ratio) {
                failures.push(format!(
                    "{regime}: site compute 1→4 ratio {ratio:.2} outside [1.5, 16]"
                ));
            }
            if grow_groups {
                // Traffic grows linearly with the group count.
                let bytes = series[1].points.iter().map(|(_, m)| m.bytes as f64).collect::<Vec<_>>();
                if let Err(e) =
                    assert_growth(&format!("{regime}: bytes"), &factors, &bytes, Growth::Linear)
                {
                    failures.push(e);
                }
            } else {
                // Constant groups: traffic must stay flat as data grows.
                let b1 = series[1].points.first().unwrap().1.bytes as f64;
                let b4 = series[1].points.last().unwrap().1.bytes as f64;
                if b4 > 1.25 * b1 {
                    failures.push(format!(
                        "{regime}: traffic should stay ~constant ({b1} → {b4})"
                    ));
                }
            }
        }
    }

    if has_flag(&args, "--check") {
        assert!(failures.is_empty(), "shape checks failed:\n{}", failures.join("\n"));
        println!("\nshape checks passed ✓");
    }
}
