//! **Concurrent multi-query throughput over loopback TCP.**
//!
//! Not a paper figure: the paper's experiments are single-query, but its
//! motivating deployment ("heavy traffic from millions of users") is
//! concurrent, so this bench measures what PR 5 added — the multi-query
//! scheduler multiplexing query rounds onto persistent per-site TCP
//! sessions.
//!
//! Four copies of the Fig. 2 group-reduction workload run against 4
//! loopback site processes twice: **back-to-back** (one at a time on the
//! same engine) and **concurrent** (all submitted at once). Correctness
//! is asserted unconditionally: every copy must be bit-identical to a
//! serial in-process reference run and its per-query `RoundStats` must
//! equal the serial run byte for byte — concurrency must not perturb
//! results or accounting. Site-local evaluation is pinned to one worker
//! thread so any speedup comes from cross-query overlap, not the morsel
//! pool.
//!
//! Results are written to `BENCH_concurrency.json` (override with
//! `--out`). `--check` additionally asserts concurrent wall-clock
//! < 0.7× back-to-back — meaningful only on a multi-core runner, so on
//! a single core the check reports and skips the timing assertion.

use skalla_bench::harness::{arg_value, has_flag};
use skalla_core::{Cluster, OptFlags, Planner, QueryResult, SiteServer, Skalla};
use skalla_datagen::partition::{observe_int_ranges, partition_by_int_ranges, Partition};
use skalla_datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla_gmdj::prelude::*;
use skalla_gmdj::EvalOptions;
use skalla_net::TcpConfig;
use skalla_obs::json::Json;
use skalla_relation::{Relation, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const N_SITES: usize = 4;
const N_QUERIES: usize = 4;

fn fig2_partitions(rows: usize) -> Vec<Partition> {
    let tpcr = generate_tpcr(&TpcrConfig::new(rows, 42));
    let mut parts = partition_by_int_ranges(&tpcr, "nation_key", N_SITES);
    observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
    parts
}

fn fig2_query() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("tpcr", &["cust_group"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_group"]).build(),
            vec![
                AggSpec::count("cnt1"),
                AggSpec::avg("extended_price", "avg1"),
            ],
        ))
        .gmdj(
            Gmdj::new("tpcr").block(
                ThetaBuilder::group_by(&["cust_group"])
                    .and(Expr::dcol("extended_price").ge(Expr::bcol("avg1")))
                    .build(),
                vec![AggSpec::count("cnt2"), AggSpec::avg("quantity", "avg2")],
            ),
        )
        .build()
}

fn canonical(rel: &Relation) -> Relation {
    rel.sorted_by(&["cust_group"]).unwrap()
}

/// Exact f64 bit equality on already-canonicalized relations.
fn bit_identical(a: &Relation, b: &Relation) -> bool {
    a.len() == b.len()
        && a.rows().iter().zip(b.rows()).all(|(ra, rb)| {
            ra.values()
                .iter()
                .zip(rb.values())
                .all(|(va, vb)| match (va, vb) {
                    (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                    _ => va == vb,
                })
        })
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn check_against_reference(out: &QueryResult, reference: &QueryResult, mode: &str) {
    assert!(
        bit_identical(&canonical(&out.relation), &canonical(&reference.relation)),
        "{mode}: result differs from the serial in-process reference"
    );
    assert_eq!(
        out.stats.net, reference.stats.net,
        "{mode}: per-query traffic accounting differs from the serial reference"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: usize = if has_flag(&args, "--quick") { 2_000 } else { 8_000 };
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let out_path =
        arg_value(&args, "--out").unwrap_or_else(|| "BENCH_concurrency.json".into());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# Concurrent multi-query throughput: {N_QUERIES} fig2 queries, {N_SITES} TCP sites");
    println!("# rows = {rows}, repeats = {repeats}, cores = {cores}");

    let parts = fig2_partitions(rows);
    let expr = fig2_query();

    // Serial in-process reference: the correctness and accounting oracle.
    let reference = {
        let cluster = Cluster::from_partitions("tpcr", parts.clone());
        let plan = Planner::new(cluster.distribution()).optimize(&expr, OptFlags::all());
        cluster.execute(&plan).unwrap()
    };

    // One loopback site process per fragment, serving one persistent
    // coordinator session.
    let mut addrs = Vec::new();
    for part in &parts {
        let catalog = HashMap::from([("tpcr".to_string(), Arc::new(part.relation.clone()))]);
        let domains = HashMap::from([("tpcr".to_string(), part.domains.clone())]);
        let server =
            SiteServer::bind("127.0.0.1:0", catalog, domains, TcpConfig::default()).unwrap();
        addrs.push(server.local_addr().unwrap().to_string());
        std::thread::spawn(move || {
            let _ = server.serve_once();
        });
    }

    // Site-local evaluation pinned to 1 worker: speedup must come from
    // overlapping different queries' rounds, not intra-query parallelism.
    let engine = Skalla::builder()
        .remote(&addrs, TcpConfig::default())
        .eval_options(EvalOptions::with_parallelism(1))
        .max_concurrent(N_QUERIES)
        .build()
        .unwrap();
    let plan = Planner::new(engine.distribution()).optimize(&expr, OptFlags::all());

    // Back-to-back: the same engine, one query at a time.
    let mut sequential_runs = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t = Instant::now();
        for _ in 0..N_QUERIES {
            let out = engine.execute(&plan).unwrap();
            check_against_reference(&out, &reference, "sequential");
        }
        sequential_runs.push(t.elapsed().as_secs_f64());
    }
    let sequential_s = median(sequential_runs.clone());
    println!("back-to-back: median {sequential_s:.4}s for {N_QUERIES} queries");

    // Concurrent: all copies submitted at once.
    let mut concurrent_runs = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t = Instant::now();
        let outs: Vec<QueryResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N_QUERIES)
                .map(|_| scope.spawn(|| engine.execute(&plan).unwrap()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .collect()
        });
        concurrent_runs.push(t.elapsed().as_secs_f64());
        for out in &outs {
            check_against_reference(out, &reference, "concurrent");
        }
    }
    let concurrent_s = median(concurrent_runs.clone());
    let ratio = concurrent_s / sequential_s;
    println!("concurrent:   median {concurrent_s:.4}s for {N_QUERIES} queries");
    println!("ratio concurrent/back-to-back: {ratio:.3}");
    println!("all {} executions bit-identical to the serial reference ✓", repeats * N_QUERIES * 2);

    let report = Json::obj(vec![
        ("bench", Json::Str("fig_concurrency".into())),
        ("rows", Json::UInt(rows as u64)),
        ("sites", Json::UInt(N_SITES as u64)),
        ("queries", Json::UInt(N_QUERIES as u64)),
        ("repeats", Json::UInt(repeats as u64)),
        ("cores", Json::UInt(cores as u64)),
        ("sequential_median_s", Json::Float(sequential_s)),
        (
            "sequential_runs_s",
            Json::Arr(sequential_runs.into_iter().map(Json::Float).collect()),
        ),
        ("concurrent_median_s", Json::Float(concurrent_s)),
        (
            "concurrent_runs_s",
            Json::Arr(concurrent_runs.into_iter().map(Json::Float).collect()),
        ),
        ("ratio_concurrent_over_sequential", Json::Float(ratio)),
        ("bit_identical_to_serial", Json::Bool(true)),
        ("traffic_equal_to_serial", Json::Bool(true)),
    ]);
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if has_flag(&args, "--check") {
        if cores > 1 {
            assert!(
                ratio < 0.7,
                "expected concurrent wall-clock < 0.7x back-to-back on a \
                 multi-core runner ({cores} cores), got {ratio:.3}x"
            );
            println!("wall-clock check passed ✓ ({ratio:.3}x < 0.7x)");
        } else {
            println!("single-core runner: skipping the wall-clock ratio check");
        }
        println!("correctness checks passed ✓");
    }
}
