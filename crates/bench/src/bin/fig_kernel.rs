//! **Kernel ablation — serial vs morsel-parallel vs zero-alloc probe vs
//! columnar.**
//!
//! Not a paper figure: this measures the *local* GMDJ kernel that every
//! site runs, isolating the PR-level optimizations from the distributed
//! machinery. Four configurations evaluate the same group-by GMDJ over a
//! synthetic detail relation (1M rows by default):
//!
//! * *serial* — one worker, one morsel, legacy allocating probe, row
//!   kernel (the pre-optimization baseline);
//! * *morsel* — morsel-driven worker pool (64K-row morsels, one worker
//!   per core), still the legacy probe, row kernel;
//! * *morsel+noalloc* — the pool plus the zero-allocation bucket index,
//!   row kernel;
//! * *columnar* — the vectorized kernel: typed accumulator arrays over
//!   the columnar layout with canonical-key probing.
//!
//! The run also verifies the determinism contract: both kernels produce
//! **bit-identical** accumulators (f64 compared by bit pattern) at 1, 2
//! and 4 worker threads, and the columnar kernel's bits equal the row
//! kernel's.
//!
//! Results are written to `BENCH_kernel.json` (override with `--out`) so
//! later PRs have a perf trajectory to compare against. `--check`
//! additionally asserts the ≥2× columnar-over-serial speedup (a
//! single-thread property, so it holds on any runner) and — on multi-core
//! runners only — the ≥2× parallel-over-serial speedup.

use skalla_bench::harness::{arg_value, has_flag};
use skalla_gmdj::prelude::*;
use skalla_gmdj::{eval_local, EvalOptions};
use skalla_obs::json::Json;
use skalla_relation::{DataType, Row, Value};
use std::time::Instant;

/// Deterministic synthetic detail relation: `rows` tuples spread over
/// `groups` keys with a Double measure (no RNG dependency — multiplicative
/// hashing gives a scattered but reproducible distribution).
fn synthetic_detail(rows: usize, groups: usize) -> Relation {
    Relation::new(
        Schema::of(&[("g", DataType::Int), ("v", DataType::Double)]),
        (0..rows)
            .map(|i| {
                let g = (i.wrapping_mul(2_654_435_761) % groups) as i64;
                let v = ((i.wrapping_mul(1_103_515_245).wrapping_add(12_345)) % 1000)
                    as f64
                    / 3.0;
                Row::new(vec![g.into(), v.into()])
            })
            .collect(),
    )
    .unwrap()
}

fn base_of(groups: usize) -> Relation {
    Relation::new(
        Schema::of(&[("g", DataType::Int)]),
        (0..groups as i64).map(|g| Row::new(vec![g.into()])).collect(),
    )
    .unwrap()
}

fn operator() -> Gmdj {
    Gmdj::new("t").block(
        ThetaBuilder::group_by(&["g"]).build(),
        vec![
            AggSpec::count("cnt"),
            AggSpec::sum("v", "sm"),
            AggSpec::avg("v", "av"),
        ],
    )
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Compare two physical relations with exact f64 bit equality.
fn bit_identical(a: &Relation, b: &Relation) -> bool {
    a.len() == b.len()
        && a.rows().iter().zip(b.rows()).all(|(ra, rb)| {
            ra.values().iter().zip(rb.values()).all(|(va, vb)| match (va, vb) {
                (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                _ => va == vb,
            })
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: usize = if has_flag(&args, "--quick") { 100_000 } else { 1_000_000 };
    let groups = 1024usize;
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_kernel.json".into());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# Kernel ablation: serial vs morsel vs morsel+no-alloc probe");
    println!("# rows = {rows}, groups = {groups}, repeats = {repeats}, cores = {cores}");

    let detail = synthetic_detail(rows, groups);
    let base = base_of(groups);
    let op = operator();

    let opts = |parallelism: usize, morsel_rows: usize, legacy_probe: bool, columnar: bool| {
        EvalOptions {
            hash_path: true,
            parallelism,
            morsel_rows,
            legacy_probe,
            columnar,
            skew_balance: true,
            cache: true,
            fault_panic_morsel: None,
        }
    };
    let configs = [
        ("serial", opts(1, 1 << 30, true, false)),
        ("morsel", opts(0, 65_536, true, false)),
        ("morsel+noalloc", opts(0, 65_536, false, false)),
        ("columnar", opts(0, 65_536, false, true)),
    ];

    let mut medians = Vec::new();
    let mut config_json = Vec::new();
    for (label, o) in &configs {
        let mut runs = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let t = Instant::now();
            let local = eval_local(&base, &detail, &op, *o).unwrap();
            let dt = t.elapsed().as_secs_f64();
            assert_eq!(local.physical.len(), groups);
            runs.push(dt);
        }
        let med = median(runs.clone());
        medians.push(med);
        println!("{label:>16}: median {med:.4}s over {repeats} runs");
        config_json.push(Json::obj(vec![
            ("label", Json::Str(label.to_string())),
            ("parallelism", Json::UInt(o.parallelism as u64)),
            ("morsel_rows", Json::UInt(o.morsel_rows as u64)),
            ("legacy_probe", Json::Bool(o.legacy_probe)),
            ("columnar", Json::Bool(o.columnar)),
            ("median_s", Json::Float(med)),
            (
                "runs_s",
                Json::Arr(runs.into_iter().map(Json::Float).collect()),
            ),
        ]));
    }

    // Determinism contract: both kernels are bit-identical across thread
    // counts (fixed morsel size ⇒ fixed merge structure), and the
    // columnar kernel's bits equal the row kernel's.
    let reference = eval_local(&base, &detail, &op, opts(1, 65_536, false, false))
        .unwrap()
        .physical;
    let mut identical = true;
    for columnar in [false, true] {
        for p in [1usize, 2, 4] {
            let got = eval_local(&base, &detail, &op, opts(p, 65_536, false, columnar))
                .unwrap()
                .physical;
            if !bit_identical(&got, &reference) {
                identical = false;
                eprintln!("BIT MISMATCH at parallelism {p}, columnar {columnar}");
            }
        }
    }
    assert!(identical, "kernel output depends on thread count or kernel");
    println!("bit-identical across 1/2/4 worker threads and both kernels ✓");

    let speedup_parallel = medians[0] / medians[1];
    let speedup_full = medians[0] / medians[2];
    let speedup_columnar = medians[0] / medians[3];
    println!("speedup morsel/serial:         {speedup_parallel:.2}x");
    println!("speedup morsel+noalloc/serial: {speedup_full:.2}x");
    println!("speedup columnar/serial:       {speedup_columnar:.2}x");

    let report = Json::obj(vec![
        ("bench", Json::Str("fig_kernel".into())),
        ("rows", Json::UInt(rows as u64)),
        ("groups", Json::UInt(groups as u64)),
        ("repeats", Json::UInt(repeats as u64)),
        ("cores", Json::UInt(cores as u64)),
        ("configs", Json::Arr(config_json)),
        ("speedup_morsel_over_serial", Json::Float(speedup_parallel)),
        ("speedup_full_over_serial", Json::Float(speedup_full)),
        ("speedup_columnar_over_serial", Json::Float(speedup_columnar)),
        ("bit_identical_across_threads", Json::Bool(identical)),
    ]);
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if has_flag(&args, "--check") {
        assert!(
            speedup_columnar >= 2.0,
            "expected >= 2x columnar-over-serial speedup, got {speedup_columnar:.2}x"
        );
        if cores >= 2 {
            assert!(
                speedup_full >= 2.0,
                "expected >= 2x parallel speedup on a multi-core runner \
                 ({cores} cores), got {speedup_full:.2}x"
            );
        }
        println!("speedup check passed ✓");
    }
}
