//! **Figure 4 — the synchronization reduction query** (speed-up
//! experiment).
//!
//! The correlated two-GMDJ query (not coalescible: θ₂ references MD₁'s
//! AVG) evaluated with and without synchronization reduction. The
//! groupings entail equality on the partition attribute, so with the
//! optimization the whole chain evaluates locally and the query runs in a
//! single round — linear in the number of sites; without it, three rounds
//! of shipping k·g groups to k sites grow quadratically (high
//! cardinality). At low cardinality the win is the synchronization
//! overhead only, smaller than coalescing's (which also saves a pass over
//! the detail relation).

use skalla_bench::harness::*;
use skalla_bench::workloads::*;
use skalla_core::OptFlags;
use skalla_net::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if has_flag(&args, "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::default_scale()
    };
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let cost = CostModel::lan();
    println!("# Figure 4: synchronization reduction query");
    println!(
        "# rows/site = {}, customers = {}, repeats = {repeats}",
        scale.rows_per_site, scale.customers
    );
    let parts = tpcr_partitions(scale);
    let ks: Vec<usize> = (1..=N_SITES).collect();

    let variants = [
        ("no sync reduction", OptFlags::none()),
        ("sync reduction", OptFlags::sync_reduction_only()),
    ];

    let mut failures = Vec::new();
    for card in [Cardinality::High, Cardinality::Low] {
        let expr = sync_reduction_query(card);
        let mut series = Vec::new();
        for (label, flags) in variants {
            let mut points = Vec::new();
            for &k in &ks {
                let cluster = cluster_of(&parts, k);
                points.push((k, run_median(&cluster, &expr, flags, &cost, repeats)));
            }
            series.push(Series {
                label: label.to_string(),
                points,
            });
        }
        print_metric_table(
            &format!("{card:?} cardinality: query evaluation time (simulated, LAN)"),
            "sites",
            &series,
            |m| fmt_secs(m.sim_total_s),
        );
        print_metric_table(
            &format!("{card:?} cardinality: data transferred / rounds"),
            "sites",
            &series,
            |m| format!("{} ({} rounds)", fmt_bytes(m.bytes), m.rounds),
        );

        if has_flag(&args, "--check") {
            let bytes0 = series[0].ys(|m| m.bytes as f64);
            let bytes1 = series[1].ys(|m| m.bytes as f64);
            if card == Cardinality::High {
                if let Err(e) =
                    assert_growth("no sync reduction (high)", &ks, &bytes0, Growth::Quadratic)
                {
                    failures.push(e);
                }
                if let Err(e) =
                    assert_growth("sync reduction (high)", &ks, &bytes1, Growth::Linear)
                {
                    failures.push(e);
                }
            }
            if series[1].points.iter().any(|(_, m)| m.rounds != 1) {
                failures.push(format!("{card:?}: reduced plan should be single-round"));
            }
            if bytes1.iter().zip(&bytes0).any(|(r, n)| r >= n) {
                failures.push(format!("{card:?}: reduction did not cut traffic"));
            }
        }
    }
    if has_flag(&args, "--check") {
        assert!(failures.is_empty(), "shape checks failed:\n{}", failures.join("\n"));
        println!("\nshape checks passed ✓");
    }
}
