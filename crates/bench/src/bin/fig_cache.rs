//! **Semantic cache — repeated-query dashboard workload.**
//!
//! Not a paper figure: the paper's experiments run each query once, but
//! the motivating deployment (an ISP dashboard refreshing the same OLAP
//! panels) re-submits a small pool of queries continuously. This
//! benchmark measures what the semantic result cache buys on that
//! workload: a pool of distinct GMDJ chains over range-partitioned TPCR
//! re-runs for `refreshes` rounds on an in-process [`Skalla`] engine,
//! with the cache on and off, plus a `CUBE BY` served by hierarchical
//! roll-up versus one distributed query per grouping set.
//!
//! Reported: cache hit rate, total site traffic with the cache on/off
//! (and the off/on reduction factor), cube traffic rolled-up vs direct,
//! and the correctness contract — cache-served repeats and rolled-up
//! cube levels are **bit-identical** to fresh distributed execution
//! (f64 compared by bit pattern), and with the cache off every
//! execution's per-round traffic is **byte-for-byte** the serial
//! [`Cluster`] baseline (the pre-cache engine).
//!
//! Results are written to `BENCH_cache.json` (override with `--out`).
//! `--check` additionally asserts hit rate ≥ 80% and traffic reduction
//! ≥ 2×.

use skalla_bench::harness::{arg_value, has_flag};
use skalla_core::{Cluster, EngineConfig, OptFlags, Planner, Skalla};
use skalla_datagen::partition::{observe_int_ranges, partition_by_int_ranges, Partition};
use skalla_datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla_gmdj::prelude::*;
use skalla_gmdj::EvalOptions;
use skalla_obs::json::Json;
use skalla_query::cube_with_rollup;
use skalla_relation::Value;

const SITES: usize = 8;

/// The dashboard's query pool: distinct GMDJ chains over TPCR, all
/// carrying order-sensitive AVG / VAR / STDDEV so bit-identity is a real
/// constraint.
fn dashboard() -> Vec<(&'static str, GmdjExpr)> {
    let revenue_by_nation = GmdjExprBuilder::distinct_base("tpcr", &["nation_key"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["nation_key"]).build(),
            vec![
                AggSpec::count("lines"),
                AggSpec::sum("extended_price", "revenue"),
                AggSpec::avg("extended_price", "avg_price"),
            ],
        ))
        .build();
    let above_avg_by_nation = GmdjExprBuilder::distinct_base("tpcr", &["nation_key"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["nation_key"]).build(),
            vec![AggSpec::avg("extended_price", "av")],
        ))
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["nation_key"])
                .and(Expr::dcol("extended_price").ge(Expr::bcol("av")))
                .build(),
            vec![AggSpec::count("above"), AggSpec::max("extended_price", "mx")],
        ))
        .build();
    let spread_by_group = GmdjExprBuilder::distinct_base("tpcr", &["cust_group"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["cust_group"]).build(),
            vec![
                AggSpec::sum("quantity", "units"),
                AggSpec::var("extended_price", "price_var"),
                AggSpec::min("extended_price", "mn"),
            ],
        ))
        .build();
    let returns_by_flag = GmdjExprBuilder::distinct_base("tpcr", &["return_flag"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["return_flag"]).build(),
            vec![
                AggSpec::count("lines"),
                AggSpec::sum("extended_price", "revenue"),
            ],
        ))
        .build();
    let priority_profile = GmdjExprBuilder::distinct_base("tpcr", &["order_priority"])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&["order_priority"]).build(),
            vec![
                AggSpec::count("lines"),
                AggSpec::stddev("extended_price", "price_sd"),
            ],
        ))
        .build();
    vec![
        ("revenue_by_nation", revenue_by_nation),
        ("above_avg_by_nation", above_avg_by_nation),
        ("spread_by_group", spread_by_group),
        ("returns_by_flag", returns_by_flag),
        ("priority_profile", priority_profile),
    ]
}

fn opts(cache: bool) -> EvalOptions {
    EvalOptions {
        cache,
        ..EvalOptions::default()
    }
}

/// Compare two relations with exact f64 bit equality.
fn bit_identical(a: &Relation, b: &Relation) -> bool {
    a.len() == b.len()
        && a.rows().iter().zip(b.rows()).all(|(ra, rb)| {
            ra.values().iter().zip(rb.values()).all(|(va, vb)| match (va, vb) {
                (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                _ => va == vb,
            })
        })
}

fn parts(rows: usize) -> Vec<Partition> {
    let tpcr = generate_tpcr(&TpcrConfig::new(rows, 42));
    let mut parts = partition_by_int_ranges(&tpcr, "nation_key", SITES);
    observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
    parts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let rows: usize = if quick { 30_000 } else { 200_000 };
    let refreshes: usize = arg_value(&args, "--refreshes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 6 } else { 12 });
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_cache.json".into());

    let pool = dashboard();
    println!("# Semantic cache: repeated-query dashboard workload");
    println!(
        "# rows = {rows}, sites = {SITES}, pool = {} queries, refreshes = {refreshes}",
        pool.len()
    );

    // Three warehouses over identical partitions: the cached engine, the
    // cache-disabled engine, and the serial pre-cache baseline.
    let engine_on = Skalla::builder()
        .partitions("tpcr", parts(rows))
        .eval_options(opts(true))
        .build()
        .expect("cached engine builds");
    let engine_off = Skalla::builder()
        .partitions("tpcr", parts(rows))
        .eval_options(opts(false))
        .build()
        .expect("uncached engine builds");
    let mut baseline = Cluster::from_partitions("tpcr", parts(rows));
    baseline.configure(&EngineConfig {
        eval: opts(false),
        ..EngineConfig::default()
    });

    let planner = Planner::new(engine_on.distribution());
    let plans: Vec<_> = pool
        .iter()
        .map(|(name, e)| (*name, planner.optimize(e, OptFlags::all())))
        .collect();

    let mut failures: Vec<String> = Vec::new();
    let mut entries = Vec::new();
    let (mut bytes_on, mut bytes_off) = (0u64, 0u64);
    for round in 0..refreshes {
        for (name, plan) in &plans {
            let on = engine_on.execute(plan).expect("cached engine runs");
            let off = engine_off.execute(plan).expect("uncached engine runs");
            bytes_on += on.stats.total_bytes();
            bytes_off += off.stats.total_bytes();
            // Every uncached execution pays byte-for-byte the traffic of
            // the serial pre-cache engine — repeats included.
            let oracle = baseline.execute(plan).expect("baseline runs");
            if off.stats.net != oracle.stats.net {
                failures.push(format!(
                    "{name} refresh {round}: cache-off per-round traffic diverges \
                     from the serial baseline"
                ));
            }
            if !bit_identical(&on.relation, &oracle.relation) {
                failures.push(format!(
                    "{name} refresh {round}: cached result differs from baseline"
                ));
            }
            if round > 0 && !on.stats.is_cache_hit() {
                failures.push(format!("{name} refresh {round}: repeat not cache-served"));
            }
        }
    }
    let cache = engine_on.semantic_cache().stats();
    let executions = (refreshes * plans.len()) as u64;
    let hit_rate = (cache.hits + cache.coalesced) as f64 / executions as f64;
    let reduction = bytes_off as f64 / (bytes_on as f64).max(1.0);
    println!(
        "# workload: {executions} executions, hit rate {:.1}%, traffic {bytes_off} B off \
         vs {bytes_on} B on ({reduction:.1}x reduction)",
        hit_rate * 100.0
    );

    // Hierarchical cube serving: coarse grouping sets rolled up locally
    // from the finest level vs one distributed query per grouping set.
    // The measure is the integral `quantity`, where every f64 in play is
    // exact, so the roll-up contract is full bit-identity (on inexact
    // Double measures roll-up is deterministic but reassociates sums,
    // which direct per-level execution orders differently).
    let dims = ["nation_key", "return_flag"];
    let cube_aggs = [
        AggSpec::count("lines"),
        AggSpec::sum("quantity", "units"),
        AggSpec::avg("quantity", "avg_units"),
        AggSpec::var("quantity", "units_var"),
    ];
    let rolled = cube_with_rollup(&engine_off, "tpcr", &dims, &cube_aggs, OptFlags::all(), true)
        .expect("rolled cube runs");
    let direct = cube_with_rollup(&engine_off, "tpcr", &dims, &cube_aggs, OptFlags::all(), false)
        .expect("direct cube runs");
    let sort = |r: &Relation| r.sorted_by(&dims).expect("sortable");
    let cube_identical = bit_identical(&sort(&rolled.relation), &sort(&direct.relation));
    println!(
        "# cube: {} B rolled-up ({} levels local) vs {} B direct, bit-identical: {cube_identical}",
        rolled.total_bytes(),
        rolled.rolled_up_levels(),
        direct.total_bytes()
    );
    if !cube_identical {
        failures.push("rolled-up cube differs from per-grouping-set execution".into());
    }

    entries.push(Json::obj(vec![
        ("executions", Json::UInt(executions)),
        ("hits", Json::UInt(cache.hits)),
        ("coalesced", Json::UInt(cache.coalesced)),
        ("misses", Json::UInt(cache.misses)),
        ("hit_rate", Json::Float(hit_rate)),
        ("bytes_cache_on", Json::UInt(bytes_on)),
        ("bytes_cache_off", Json::UInt(bytes_off)),
        ("traffic_reduction", Json::Float(reduction)),
        ("cache_entry_bytes", Json::UInt(cache.bytes)),
        ("cube_bytes_rolled", Json::UInt(rolled.total_bytes())),
        ("cube_bytes_direct", Json::UInt(direct.total_bytes())),
        ("cube_levels_rolled_up", Json::UInt(rolled.rolled_up_levels() as u64)),
        ("cube_bit_identical", Json::Bool(cube_identical)),
    ]));

    if has_flag(&args, "--check") {
        if hit_rate < 0.80 {
            failures.push(format!("hit rate {:.3} below the 0.80 floor", hit_rate));
        }
        if reduction < 2.0 {
            failures.push(format!("traffic reduction {reduction:.2}x below the 2x floor"));
        }
        if rolled.total_bytes() >= direct.total_bytes() {
            failures.push(format!(
                "rolled-up cube traffic {} B not below direct {} B",
                rolled.total_bytes(),
                direct.total_bytes()
            ));
        }
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("fig_cache".into())),
        ("rows", Json::UInt(rows as u64)),
        ("sites", Json::UInt(SITES as u64)),
        ("pool", Json::UInt(plans.len() as u64)),
        ("refreshes", Json::UInt(refreshes as u64)),
        ("entries", Json::Arr(entries)),
    ]);
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        panic!("{} cache check(s) failed", failures.len());
    }
    if has_flag(&args, "--check") {
        println!("semantic cache check passed ✓");
    }
}
