//! **Figure 3 — the coalescing query** (speed-up experiment).
//!
//! Two independent GMDJs over the same grouping, evaluated non-coalesced
//! (three rounds) versus coalesced (one operator; with the base fold the
//! whole query runs in a single round, as the paper describes: "there is
//! only one evaluation round, at the end of which the sites send their
//! results to the coordinator").
//!
//! Left plot: high cardinality (per-customer) — non-coalesced grows
//! quadratically, coalesced linearly. Right plot: low cardinality — the
//! difference is smaller (~30% in the paper) and comes mostly from doing
//! one pass over the detail relation instead of two.

use skalla_bench::harness::*;
use skalla_bench::workloads::*;
use skalla_core::OptFlags;
use skalla_net::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if has_flag(&args, "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::default_scale()
    };
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let cost = CostModel::lan();
    println!("# Figure 3: coalescing query");
    println!(
        "# rows/site = {}, customers = {}, repeats = {repeats}",
        scale.rows_per_site, scale.customers
    );
    let parts = tpcr_partitions(scale);
    let ks: Vec<usize> = (1..=N_SITES).collect();

    // Coalesced = coalescing + the Prop 2 base fold (single round), the
    // paper's described execution; non-coalesced = the plain plan.
    let variants = [
        ("non-coalesced", OptFlags::none()),
        (
            "coalesced",
            OptFlags {
                coalesce: true,
                sync_reduction: true,
                ..OptFlags::none()
            },
        ),
    ];

    let mut all_failures = Vec::new();
    for card in [Cardinality::High, Cardinality::Low] {
        let expr = coalescing_query(card);
        let mut series = Vec::new();
        for (label, flags) in variants {
            let mut points = Vec::new();
            for &k in &ks {
                let cluster = cluster_of(&parts, k);
                points.push((k, run_median(&cluster, &expr, flags, &cost, repeats)));
            }
            series.push(Series {
                label: label.to_string(),
                points,
            });
        }
        print_metric_table(
            &format!("{card:?} cardinality: query evaluation time (simulated, LAN)"),
            "sites",
            &series,
            |m| fmt_secs(m.sim_total_s),
        );
        print_metric_table(
            &format!("{card:?} cardinality: data transferred / rounds"),
            "sites",
            &series,
            |m| format!("{} ({} rounds)", fmt_bytes(m.bytes), m.rounds),
        );

        if has_flag(&args, "--check") {
            let bytes0 = series[0].ys(|m| m.bytes as f64);
            let bytes1 = series[1].ys(|m| m.bytes as f64);
            match card {
                Cardinality::High => {
                    if let Err(e) =
                        assert_growth("non-coalesced (high)", &ks, &bytes0, Growth::Quadratic)
                    {
                        all_failures.push(e);
                    }
                    if let Err(e) = assert_growth("coalesced (high)", &ks, &bytes1, Growth::Linear)
                    {
                        all_failures.push(e);
                    }
                }
                Cardinality::Low => {
                    // The paper reports ~30% total-time win at low
                    // cardinality; traffic-wise the coalesced plan must
                    // simply be cheaper everywhere.
                    let worse = bytes1
                        .iter()
                        .zip(&bytes0)
                        .any(|(c, n)| c >= n);
                    if worse {
                        all_failures
                            .push("coalesced not cheaper at low cardinality".to_string());
                    }
                }
            }
            // Coalesced plan is a single round at every k.
            if series[1].points.iter().any(|(_, m)| m.rounds != 1) {
                all_failures.push("coalesced plan should be a single round".to_string());
            }
        }
    }
    if has_flag(&args, "--check") {
        assert!(
            all_failures.is_empty(),
            "shape checks failed:\n{}",
            all_failures.join("\n")
        );
        println!("\nshape checks passed ✓");
    }
}
