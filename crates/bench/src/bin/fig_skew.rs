//! **Skew resilience — heavy-hitter balancing vs Zipf exponent.**
//!
//! Not a paper figure: the paper's experiments partition TPC-R roughly
//! evenly, but the motivating workload (network flows) is Zipf-skewed,
//! and range partitioning then concentrates the hot group keys on one
//! site. This benchmark measures what the heavy-hitter balancer buys:
//! a detail relation whose group key follows Zipf(s) over 256 ranks is
//! range-partitioned across 4–64 sites (rank 0, the hottest, lands on
//! site 0), and a three-round GMDJ chain runs with skew balancing on
//! and off, under both kernels.
//!
//! Reported per (sites, s): median wall-clock and minimum **max-site-busy**
//! (the slowest site's total compute over all rounds — the quantity that
//! bounds a barriered distributed round) plus the busy skew ratio
//! max/mean. Busy is thread CPU time, so external load only ever inflates
//! it; the minimum over repeats is the least-perturbed estimate. The run also verifies the correctness contract: balanced
//! and unbalanced executions produce **bit-identical** results (f64
//! compared by bit pattern) under both the row and columnar kernels.
//!
//! Results are written to `BENCH_skew.json` (override with `--out`).
//! `--check` additionally asserts that on skewed workloads (s ≥ 1.2 at
//! 8+ sites) the balanced max-site-busy is strictly below the unbalanced
//! one.

use skalla_bench::harness::{arg_value, has_flag};
use skalla_core::{Cluster, ExecStats, OptFlags, Planner};
use skalla_datagen::partition::partition_by_int_ranges;
use skalla_datagen::Zipf;
use skalla_gmdj::prelude::*;
use skalla_gmdj::EvalOptions;
use skalla_obs::json::Json;
use skalla_relation::{DataType, Row, Value};
use std::time::Instant;

const KEYS: usize = 256;

/// Zipf-keyed detail relation: `rows` tuples whose group key is a Zipf(s)
/// rank (rank 0 hottest) and whose measure is a deterministic Double.
fn zipf_detail(rows: usize, s: f64, seed: u64) -> Relation {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let zipf = Zipf::new(KEYS, s);
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::new(
        Schema::of(&[("g", DataType::Int), ("v", DataType::Double)]),
        (0..rows)
            .map(|i| {
                let g = zipf.sample(&mut rng) as i64;
                let v = ((i.wrapping_mul(1_103_515_245).wrapping_add(12_345)) % 1000) as f64 / 3.0;
                Row::new(vec![g.into(), v.into()])
            })
            .collect(),
    )
    .unwrap()
}

/// Three aggregate-heavy unit rounds over the same skewed table (the
/// regime the balancer targets: per-row compute well above per-row
/// shipping cost, as in the paper's multi-round network analyses).
/// The 17 aggregates include the order-sensitive AVG, VAR and STDDEV so
/// bit-identity is a real constraint, and the multiple rounds exercise
/// the donor's split cache: the hot/cold scan runs once per query and
/// is reused by every round.
fn expr() -> GmdjExpr {
    GmdjExprBuilder::distinct_base("t", &["g"])
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"]).build(),
            vec![
                AggSpec::count("cnt"),
                AggSpec::sum("v", "sm"),
                AggSpec::avg("v", "av"),
                AggSpec::var("v", "vr"),
                AggSpec::min("v", "mn0"),
                AggSpec::max("v", "mx0"),
                AggSpec::stddev("v", "sd0"),
            ],
        ))
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").ge(Expr::bcol("av")))
                .build(),
            vec![
                AggSpec::count("big"),
                AggSpec::max("v", "mx"),
                AggSpec::sum("v", "sm1"),
                AggSpec::avg("v", "av1"),
                AggSpec::var("v", "vr1"),
            ],
        ))
        .gmdj(Gmdj::new("t").block(
            ThetaBuilder::group_by(&["g"])
                .and(Expr::dcol("v").lt(Expr::bcol("av")))
                .build(),
            vec![
                AggSpec::min("v", "mn"),
                AggSpec::stddev("v", "sd"),
                AggSpec::sum("v", "sm2"),
                AggSpec::avg("v", "av2"),
                AggSpec::count("small"),
            ],
        ))
        .build()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Total busy seconds per site, summed over every round.
fn per_site_busy(stats: &ExecStats, n: usize) -> Vec<f64> {
    let mut busy = vec![0.0; n];
    for st in &stats.stages {
        for (site, s) in st.site_busy_s.iter().enumerate() {
            busy[site] += s;
        }
    }
    busy
}

/// Compare two physical relations with exact f64 bit equality.
fn bit_identical(a: &Relation, b: &Relation) -> bool {
    a.len() == b.len()
        && a.rows().iter().zip(b.rows()).all(|(ra, rb)| {
            ra.values().iter().zip(rb.values()).all(|(va, vb)| match (va, vb) {
                (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                _ => va == vb,
            })
        })
}

/// Minimum max-site-busy plus median wall and skew ratio over `repeats`
/// runs of one configuration, plus the first run's result relation.
/// Busy is measured in thread CPU time, which concurrent system load can
/// only inflate (cache pollution, migrations) — the minimum repeat is
/// therefore the cleanest estimate of the configuration's true cost.
struct ConfigRun {
    max_busy_s: f64,
    skew_ratio: f64,
    wall_s: f64,
    relation: Relation,
}

fn run_config(
    cluster: &mut Cluster,
    plan: &skalla_core::DistributedPlan,
    eval: EvalOptions,
    repeats: usize,
) -> ConfigRun {
    cluster.configure(&skalla_core::EngineConfig {
        eval,
        ..skalla_core::EngineConfig::default()
    });
    let n = cluster.n_sites();
    let mut maxes = Vec::with_capacity(repeats);
    let mut skews = Vec::with_capacity(repeats);
    let mut walls = Vec::with_capacity(repeats);
    let mut relation = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let out = cluster.execute(plan).unwrap();
        walls.push(t.elapsed().as_secs_f64());
        let busy = per_site_busy(&out.stats, n);
        let max = busy.iter().copied().fold(0.0, f64::max);
        let mean = busy.iter().sum::<f64>() / n as f64;
        maxes.push(max);
        skews.push(if mean > 0.0 { max / mean } else { 1.0 });
        relation.get_or_insert(out.relation);
    }
    ConfigRun {
        max_busy_s: maxes.iter().copied().fold(f64::INFINITY, f64::min),
        skew_ratio: median(skews),
        wall_s: median(walls),
        relation: relation.unwrap(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let rows: usize = if quick { 80_000 } else { 400_000 };
    let site_counts: Vec<usize> = if quick { vec![8] } else { vec![4, 16, 64] };
    let exponents: Vec<f64> = if quick { vec![1.2] } else { vec![0.8, 1.2, 1.5] };
    let repeats: usize = arg_value(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_skew.json".into());

    println!("# Skew resilience: heavy-hitter balancing vs Zipf exponent");
    println!("# rows = {rows}, keys = {KEYS}, repeats = {repeats}");
    println!(
        "# {:>5} {:>5} {:>8} | {:>12} {:>12} {:>7} | {:>10} {:>10} {:>7}",
        "sites", "zipf", "kernel", "max-busy off", "max-busy on", "gain", "skew off", "skew on", "ident"
    );

    let e = expr();
    let opts = |skew_balance: bool, columnar: bool| EvalOptions {
        morsel_rows: 16_384,
        skew_balance,
        columnar,
        ..EvalOptions::default()
    };

    let mut entries = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for &sites in &site_counts {
        for &s in &exponents {
            let detail = zipf_detail(rows, s, 42 + (s * 10.0) as u64);
            let mut cluster =
                Cluster::from_partitions("t", partition_by_int_ranges(&detail, "g", sites));
            let plan = Planner::new(cluster.distribution()).optimize(&e, OptFlags::none());
            for columnar in [true, false] {
                let off = run_config(&mut cluster, &plan, opts(false, columnar), repeats);
                let on = run_config(&mut cluster, &plan, opts(true, columnar), repeats);
                let identical = bit_identical(&on.relation, &off.relation);
                let gain = off.max_busy_s / on.max_busy_s.max(1e-12);
                let kernel = if columnar { "columnar" } else { "row" };
                println!(
                    "# {sites:>5} {s:>5.1} {kernel:>8} | {:>12.4} {:>12.4} {gain:>6.2}x | {:>10.2} {:>10.2} {:>7}",
                    off.max_busy_s, on.max_busy_s, off.skew_ratio, on.skew_ratio, identical
                );
                entries.push(Json::obj(vec![
                    ("sites", Json::UInt(sites as u64)),
                    ("zipf_s", Json::Float(s)),
                    ("columnar", Json::Bool(columnar)),
                    ("max_busy_unbalanced_s", Json::Float(off.max_busy_s)),
                    ("max_busy_balanced_s", Json::Float(on.max_busy_s)),
                    ("skew_ratio_unbalanced", Json::Float(off.skew_ratio)),
                    ("skew_ratio_balanced", Json::Float(on.skew_ratio)),
                    ("wall_unbalanced_s", Json::Float(off.wall_s)),
                    ("wall_balanced_s", Json::Float(on.wall_s)),
                    ("bit_identical", Json::Bool(identical)),
                ]));
                // Correctness is unconditional: the balancer must never
                // change a single output bit, skewed or not.
                if !identical {
                    failures.push(format!(
                        "sites {sites}, zipf {s}, {kernel}: balanced result differs from unbalanced"
                    ));
                }
                // The performance claim only holds where there is skew to
                // remove and enough sites to spread it over.
                if has_flag(&args, "--check")
                    && s >= 1.2
                    && sites >= 8
                    && on.max_busy_s >= off.max_busy_s
                {
                    failures.push(format!(
                        "sites {sites}, zipf {s}, {kernel}: balanced max-busy {:.4}s \
                         not below unbalanced {:.4}s",
                        on.max_busy_s, off.max_busy_s
                    ));
                }
            }
        }
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("fig_skew".into())),
        ("rows", Json::UInt(rows as u64)),
        ("keys", Json::UInt(KEYS as u64)),
        ("repeats", Json::UInt(repeats as u64)),
        ("entries", Json::Arr(entries)),
    ]);
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        panic!("{} skew check(s) failed", failures.len());
    }
    if has_flag(&args, "--check") {
        println!("skew balancing check passed ✓");
    }
}
