//! **Topology ablation** (paper Sect. 6 future work): star coordinator
//! versus a two-level coordinator tree.
//!
//! Runs the group reduction query over 8 sites and reports the traffic
//! crossing the *root* coordinator's links for the star topology and for
//! trees of 2 and 4 regions. The tree multiplies the root's fan-out down
//! by the region count and lets regions pre-merge sub-aggregates on the
//! way up — the root's links carry `O(regions · |B|)` instead of
//! `O(sites · |B|)` per round.

use skalla_bench::harness::*;
use skalla_bench::workloads::*;
use skalla_core::topology::{execute_tree, TreeTopology};
use skalla_core::{OptFlags, Planner};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if has_flag(&args, "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::default_scale()
    };
    println!("# Topology ablation: star vs two-level coordinator tree (8 sites)");
    println!(
        "# rows/site = {}, customers = {}",
        scale.rows_per_site, scale.customers
    );
    let parts = tpcr_partitions(scale);
    let cluster = cluster_of(&parts, N_SITES);
    let expr = group_reduction_query(Cardinality::High);
    let planner = Planner::new(cluster.distribution());

    println!("\n| plan | topology | root-link bytes | site-link bytes |");
    println!("|------|----------|----------------:|----------------:|");
    let mut star_root = 0u64;
    let mut tree2_root = 0u64;
    for (label, flags) in [
        ("unoptimized", OptFlags::none()),
        ("all reductions", OptFlags::all()),
    ] {
        let plan = planner.optimize(&expr, flags);
        let star = cluster.execute(&plan).expect("star runs");
        println!(
            "| {label} | star (8 direct) | {:>15} | {:>15} |",
            fmt_bytes(star.stats.total_bytes()),
            fmt_bytes(star.stats.total_bytes()),
        );
        if label == "unoptimized" {
            star_root = star.stats.total_bytes();
        }
        for regions in [2usize, 4] {
            let topo = TreeTopology::balanced(N_SITES, regions);
            let tree = execute_tree(&cluster, &plan, &topo).expect("tree runs");
            assert!(
                tree.relation.same_bag(&star.relation),
                "tree answer differs from star"
            );
            println!(
                "| {label} | tree ({regions} regions) | {:>15} | {:>15} |",
                fmt_bytes(tree.root_bytes()),
                fmt_bytes(tree.site_bytes()),
            );
            if label == "unoptimized" && regions == 2 {
                tree2_root = tree.root_bytes();
            }
        }
    }

    if has_flag(&args, "--check") {
        assert!(
            tree2_root < star_root / 2,
            "2-region tree root traffic {tree2_root} should be well below star {star_root}"
        );
        println!("\nshape checks passed ✓");
    }
}
