//! # skalla-bench — benchmark harness for every figure of the paper
//!
//! Workload definitions ([`workloads`]) and measurement utilities
//! ([`harness`]) shared by the `fig2`…`fig5` harness binaries (which print
//! the series each paper figure plots) and the criterion benches.
//!
//! Regenerate the evaluation with:
//!
//! ```text
//! cargo run -p skalla-bench --release --bin fig2   # group reduction
//! cargo run -p skalla-bench --release --bin fig3   # coalescing
//! cargo run -p skalla-bench --release --bin fig4   # synchronization reduction
//! cargo run -p skalla-bench --release --bin fig5   # scale-up
//! ```
//!
//! Each accepts `--quick` (smaller data), `--check` (assert the paper's
//! curve shapes) and `--repeats N`.

#![warn(missing_docs)]

pub mod harness;
pub mod workloads;
