//! The paper's experimental workloads (Sect. 5.1) at configurable scale.
//!
//! Setup mirrors the paper: a denormalized TPCR relation partitioned on
//! `nation_key` across eight sites — which also partitions `cust_key` /
//! `cust_name` (high-cardinality grouping, 100,000 values in the paper)
//! and `cust_group` (the 2,000–4,000-value low-cardinality attribute).
//! Every test query computes a COUNT and an AVG per GMDJ operator, as in
//! the paper.

use skalla_core::Cluster;
use skalla_datagen::partition::{observe_int_ranges, Partition};
use skalla_datagen::tpcr::{generate_tpcr, TpcrConfig};
use skalla_gmdj::prelude::*;

/// Number of warehouse sites in the speed-up experiments.
pub const N_SITES: usize = 8;

/// Grouping cardinality of a workload query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// Group per customer (`cust_key`, stands in 1:1 for `Customer.Name`).
    High,
    /// Group per customer block (`cust_group`).
    Low,
}

impl Cardinality {
    /// The grouping column.
    pub fn column(self) -> &'static str {
        match self {
            Cardinality::High => "cust_key",
            Cardinality::Low => "cust_group",
        }
    }
}

/// Scale knobs for the benchmark datasets.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Fact rows per site.
    pub rows_per_site: usize,
    /// Distinct customers overall (must stay divisible by 8 × 32 so both
    /// grouping attributes stay partition-aligned).
    pub customers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BenchScale {
    /// The default laptop-scale setup: 20k rows/site, 6,400 customers
    /// (→ 200 `cust_group` values).
    pub fn default_scale() -> BenchScale {
        BenchScale {
            rows_per_site: 20_000,
            customers: 6_400,
            seed: 2002,
        }
    }

    /// A fast setup for CI / criterion runs.
    pub fn quick() -> BenchScale {
        BenchScale {
            rows_per_site: 4_000,
            customers: 1_280,
            seed: 2002,
        }
    }

    /// Multiply rows (and optionally customers) by `factor` — the Fig. 5
    /// scale-up axis.
    pub fn scaled(self, factor: usize, grow_groups: bool) -> BenchScale {
        BenchScale {
            rows_per_site: self.rows_per_site * factor,
            customers: if grow_groups {
                self.customers * factor
            } else {
                self.customers
            },
            seed: self.seed,
        }
    }
}

/// Generate the 8-way nation-partitioned TPCR fragments with observed
/// `cust_key`/`cust_group` ranges declared (the coordinator's φ knowledge).
pub fn tpcr_partitions(scale: BenchScale) -> Vec<Partition> {
    assert_eq!(
        scale.customers % (N_SITES * 32),
        0,
        "customers must keep cust_group partition-aligned"
    );
    let cfg = TpcrConfig {
        rows: scale.rows_per_site * N_SITES,
        customers: scale.customers,
        nations: N_SITES,
        suppliers: 400,
        parts: 2_000,
        skew: 0.0,
        seed: scale.seed,
    };
    let tpcr = generate_tpcr(&cfg);
    let mut parts =
        skalla_datagen::partition::partition_by_int_ranges(&tpcr, "nation_key", N_SITES);
    observe_int_ranges(&mut parts, &["cust_key", "cust_group"]);
    parts
}

/// A cluster over the first `k` of the 8 fragments (the paper's "vary the
/// number of sites participating" axis — data per site is constant, total
/// data and groups grow with `k`).
pub fn cluster_of(parts: &[Partition], k: usize) -> Cluster {
    Cluster::from_partitions("tpcr", parts[..k].to_vec())
}

/// The **group reduction query** (Fig. 2): two correlated GMDJs grouped on
/// the partition attribute; COUNT + AVG on each operator. The correlation
/// (θ₂ references `avg1`) prevents coalescing, isolating group reduction.
pub fn group_reduction_query(card: Cardinality) -> GmdjExpr {
    let g = card.column();
    GmdjExprBuilder::distinct_base("tpcr", &[g])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&[g]).build(),
            vec![
                AggSpec::count("cnt1"),
                AggSpec::avg("extended_price", "avg1"),
            ],
        ))
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&[g])
                .and(Expr::dcol("extended_price").ge(Expr::bcol("avg1")))
                .build(),
            vec![AggSpec::count("cnt2"), AggSpec::avg("quantity", "avg2")],
        ))
        .build()
}

/// The **coalescing query** (Fig. 3): two *independent* GMDJs over the
/// same grouping (θ₂ uses only a constant filter), so coalescing merges
/// them into one operator.
pub fn coalescing_query(card: Cardinality) -> GmdjExpr {
    let g = card.column();
    GmdjExprBuilder::distinct_base("tpcr", &[g])
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&[g]).build(),
            vec![
                AggSpec::count("cnt1"),
                AggSpec::avg("extended_price", "avg1"),
            ],
        ))
        .gmdj(Gmdj::new("tpcr").block(
            ThetaBuilder::group_by(&[g])
                .and(Expr::dcol("quantity").ge(Expr::lit(25i64)))
                .build(),
            vec![AggSpec::count("cnt2"), AggSpec::avg("quantity", "avg2")],
        ))
        .build()
}

/// The **synchronization reduction query** (Fig. 4): the correlated pair
/// again — not coalescible — but groupings entail equality on the
/// partition attribute, so sync reduction evaluates the whole chain
/// locally in one round (Prop 2 + Cor 1).
pub fn sync_reduction_query(card: Cardinality) -> GmdjExpr {
    group_reduction_query(card)
}

/// The **combined reductions query** (Fig. 5): same correlated shape,
/// executed with all reductions on or all off.
pub fn combined_query(card: Cardinality) -> GmdjExpr {
    group_reduction_query(card)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_core::{OptFlags, Planner};
    use skalla_gmdj::eval::EvalOptions;

    fn tiny() -> Vec<Partition> {
        tpcr_partitions(BenchScale {
            rows_per_site: 300,
            customers: 256,
            seed: 5,
        })
    }

    #[test]
    fn partitions_declare_partition_attributes() {
        let parts = tiny();
        let c = cluster_of(&parts, N_SITES);
        let d = c.distribution();
        assert!(d.is_partition_attribute("tpcr", "cust_key"));
        assert!(d.is_partition_attribute("tpcr", "cust_group"));
        assert!(d.is_partition_attribute("tpcr", "nation_key"));
    }

    #[test]
    fn all_workload_queries_run_and_match_oracle() {
        let parts = tiny();
        let c = cluster_of(&parts, 4);
        for expr in [
            group_reduction_query(Cardinality::High),
            group_reduction_query(Cardinality::Low),
            coalescing_query(Cardinality::High),
            coalescing_query(Cardinality::Low),
        ] {
            let oracle = expr
                .eval_centralized(&c.global_catalog(), EvalOptions::default())
                .unwrap();
            for flags in [OptFlags::none(), OptFlags::all()] {
                let plan = Planner::new(c.distribution()).optimize(&expr, flags);
                let out = c.execute(&plan).unwrap();
                assert!(out.relation.same_bag(&oracle), "{flags:?}");
            }
        }
    }

    #[test]
    fn sync_reduction_single_rounds_the_workload() {
        let parts = tiny();
        let c = cluster_of(&parts, 4);
        let plan = Planner::new(c.distribution()).optimize(
            &sync_reduction_query(Cardinality::High),
            OptFlags::sync_reduction_only(),
        );
        assert_eq!(plan.n_rounds(), 1, "{}", plan.explain());
    }

    #[test]
    fn coalescing_query_is_coalescible_and_correlated_is_not() {
        let parts = tiny();
        let c = cluster_of(&parts, 2);
        let planner = Planner::new(c.distribution());
        let p1 = planner.optimize(&coalescing_query(Cardinality::Low), OptFlags::coalesce_only());
        assert_eq!(p1.expr.ops.len(), 1);
        let p2 = planner.optimize(
            &group_reduction_query(Cardinality::Low),
            OptFlags::coalesce_only(),
        );
        assert_eq!(p2.expr.ops.len(), 2);
    }
}
