//! Observability overhead: instrumentation calls on a disabled [`Obs`]
//! handle must cost no more than a null check — no allocation, no lock.
//! Compares span/event/counter calls through a disabled handle against a
//! recording one, and measures a full query execution both ways.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skalla_core::{Cluster, OptFlags, Planner};
use skalla_datagen::flow::{generate_flows, FlowConfig};
use skalla_datagen::partition::partition_by_int_ranges;
use skalla_obs::{Obs, Track};

const CALLS: usize = 10_000;

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_primitives");
    g.sample_size(20);

    let disabled = Obs::disabled();
    g.bench_function("span_disabled_x10k", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                let guard = disabled.span(Track::Coordinator, "work");
                black_box((&guard, i));
            }
        })
    });
    g.bench_function("event_disabled_x10k", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                disabled.event(Track::Net, "msg", vec![("i", i.into())]);
            }
        })
    });
    g.bench_function("counter_disabled_x10k", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                disabled.counter_add("bytes", i as f64);
            }
        })
    });

    g.bench_function("span_recording_x10k", |b| {
        b.iter(|| {
            let obs = Obs::recording();
            for i in 0..CALLS {
                let guard = obs.span(Track::Coordinator, "work");
                black_box((&guard, i));
            }
        })
    });
    g.finish();
}

/// The per-query telemetry cycle a distributed run pays after every
/// `QUERY_DONE`: the site drains its delta, serializes it for the wire,
/// and the coordinator parses and merges it into its own recorder. Keeps
/// the export path honest — it runs once per query, so it must stay far
/// below query cost.
fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_telemetry");
    g.sample_size(20);
    g.bench_function("export_ship_import_100spans", |b| {
        b.iter(|| {
            let site = Obs::recording();
            let rec = site.recorder().unwrap();
            rec.set_process(2, "site-0");
            for i in 0..100u32 {
                site.span(Track::SiteQuery(0, 1), "task md1").finish();
                site.counter_add("net.msgs", 1.0);
                site.hist("task.busy_s", f64::from(i) * 1e-4);
            }
            let mut cursor = skalla_obs::ExportCursor::default();
            let wire = rec.take_delta(&mut cursor).to_string();
            let parsed = skalla_obs::TelemetryDelta::parse(black_box(&wire)).unwrap();
            let coord = Obs::recording();
            let coord_rec = coord.recorder().unwrap();
            coord_rec.import_remote(parsed, 125);
            black_box(coord_rec.remote_parts().len())
        })
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let flows = generate_flows(&FlowConfig::new(5_000, 7));
    let parts = partition_by_int_ranges(&flows, "source_as", 4);
    let cluster = Cluster::from_partitions("flow", parts);
    let expr = skalla_query::compile_text(
        "BASE SELECT DISTINCT source_as FROM flow;\n\
         MD cnt = COUNT(*), s = SUM(num_bytes) OVER flow WHERE source_as = b.source_as;",
    )
    .unwrap();
    let plan = Planner::new(cluster.distribution()).optimize(&expr, OptFlags::all());

    let mut g = c.benchmark_group("obs_query");
    g.sample_size(10);
    g.bench_function("execute_untraced", |b| {
        b.iter(|| black_box(cluster.execute(&plan).unwrap()))
    });
    g.bench_function("execute_traced", |b| {
        let mut traced = cluster.clone();
        traced.configure(&skalla_core::EngineConfig {
            obs: Obs::recording(),
            ..skalla_core::EngineConfig::default()
        });
        b.iter(|| black_box(traced.execute(&plan).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_primitives, bench_telemetry, bench_query);
criterion_main!(benches);
