//! Criterion bench for Figure 3: the coalescing query, non-coalesced vs
//! coalesced, at high and low grouping cardinality (8 sites).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use skalla_bench::workloads::*;
use skalla_core::{OptFlags, Planner};

fn bench(c: &mut Criterion) {
    let parts = tpcr_partitions(BenchScale::quick());
    let cluster = cluster_of(&parts, N_SITES);
    let planner = Planner::new(cluster.distribution());
    let mut g = c.benchmark_group("fig3_coalescing");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for card in [Cardinality::High, Cardinality::Low] {
        let expr = coalescing_query(card);
        for (label, flags) in [
            ("non_coalesced", OptFlags::none()),
            (
                "coalesced",
                OptFlags {
                    coalesce: true,
                    sync_reduction: true,
                    ..OptFlags::none()
                },
            ),
        ] {
            let plan = planner.optimize(&expr, flags);
            g.bench_with_input(
                BenchmarkId::new(label, format!("{card:?}")),
                &plan,
                |b, plan| {
                    b.iter(|| cluster.execute(plan).expect("query runs"));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
