//! Regression guard: the GMDJ hash-probe loop performs **zero heap
//! allocations per detail-tuple miss**.
//!
//! The legacy probe materialized a `Vec<Value>` key per detail tuple
//! (`Row::key`) even when the index missed; the bucket index probes with a
//! precomputed hash and in-place column comparisons instead. This guard
//! measures allocator activity with a counting `#[global_allocator]` while
//! evaluating two all-miss workloads that differ only in detail size: for
//! the fast path the difference must be (near) zero, while the legacy path
//! is kept as a positive control proving the instrument actually counts
//! per-probe allocations.
//!
//! The same guard covers the columnar kernel: its canonical-key probe and
//! typed aggregate inner loops must also perform zero per-row heap
//! allocations (its setup allocates a constant *number* of typed vectors,
//! independent of detail size, so the size delta still isolates the
//! per-row cost).
//!
//! Not a timing benchmark — plain assertions, run by `ci.sh`.

use skalla_gmdj::prelude::*;
use skalla_gmdj::{eval_local, EvalOptions};
use skalla_relation::{DataType, Row};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Detail rows whose keys all miss the base index (base keys are < 1000).
fn miss_detail(rows: usize) -> Relation {
    Relation::new(
        Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]),
        (0..rows)
            .map(|i| Row::new(vec![(1000 + i as i64).into(), (i as i64).into()]))
            .collect(),
    )
    .unwrap()
}

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

fn main() {
    let base = Relation::new(
        Schema::of(&[("g", DataType::Int)]),
        (0..64).map(|g: i64| Row::new(vec![g.into()])).collect(),
    )
    .unwrap();
    let op = Gmdj::new("t").block(
        ThetaBuilder::group_by(&["g"]).build(),
        vec![AggSpec::count("cnt")],
    );
    // Single morsel, single worker: the only size-dependent work is the
    // probe loop itself.
    let opts = |legacy_probe: bool, columnar: bool| EvalOptions {
        hash_path: true,
        parallelism: 1,
        morsel_rows: 1 << 30,
        legacy_probe,
        columnar,
        skew_balance: true,
        cache: true,
        fault_panic_morsel: None,
    };

    const SMALL: usize = 1_000;
    const LARGE: usize = 11_000;
    let small = miss_detail(SMALL);
    let large = miss_detail(LARGE);

    // Warm up every path (lazy one-time allocations — including the cached
    // columnar layout — must not skew counts).
    for legacy in [false, true] {
        eval_local(&base, &small, &op, opts(legacy, false)).unwrap();
        eval_local(&base, &large, &op, opts(legacy, false)).unwrap();
    }
    eval_local(&base, &small, &op, opts(false, true)).unwrap();
    eval_local(&base, &large, &op, opts(false, true)).unwrap();

    let fast_small = allocs_during(|| {
        eval_local(&base, &small, &op, opts(false, false)).unwrap();
    });
    let fast_large = allocs_during(|| {
        eval_local(&base, &large, &op, opts(false, false)).unwrap();
    });
    let col_small = allocs_during(|| {
        eval_local(&base, &small, &op, opts(false, true)).unwrap();
    });
    let col_large = allocs_during(|| {
        eval_local(&base, &large, &op, opts(false, true)).unwrap();
    });
    let legacy_small = allocs_during(|| {
        eval_local(&base, &small, &op, opts(true, false)).unwrap();
    });
    let legacy_large = allocs_during(|| {
        eval_local(&base, &large, &op, opts(true, false)).unwrap();
    });

    let fast_delta = fast_large.saturating_sub(fast_small);
    let col_delta = col_large.saturating_sub(col_small);
    let legacy_delta = legacy_large.saturating_sub(legacy_small);
    let extra_rows = (LARGE - SMALL) as u64;

    println!("probe_alloc guard ({extra_rows} extra all-miss probes)");
    println!("  fast probe     allocation delta: {fast_delta}");
    println!("  columnar       allocation delta: {col_delta}");
    println!("  legacy probe   allocation delta: {legacy_delta}");

    // Fast path: probing must not allocate per miss. Allow a tiny slack for
    // allocator-internal noise, but nothing proportional to row count.
    assert!(
        fast_delta <= 16,
        "fast probe allocated {fast_delta} times for {extra_rows} extra misses \
         — the zero-allocation probe regressed"
    );
    // Columnar kernel: canonical-key probing and the typed inner loops
    // must not allocate per row either.
    assert!(
        col_delta <= 16,
        "columnar kernel allocated {col_delta} times for {extra_rows} extra \
         rows — its inner loops regressed to per-row allocation"
    );
    // Positive control: the legacy probe allocates a key per miss, so the
    // counter must see at least one allocation per extra row.
    assert!(
        legacy_delta >= extra_rows,
        "legacy probe delta {legacy_delta} < {extra_rows}: the tracking \
         allocator is not observing per-probe allocations"
    );
    println!("probe_alloc guard passed ✓");
}
