//! Criterion bench for Figure 5: the combined reductions query on 4 sites
//! at data scales ×1 and ×2 (criterion-sized; the `fig5` binary covers the
//! full ×1…×4 sweep), all optimizations on vs off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use skalla_bench::workloads::*;
use skalla_core::{OptFlags, Planner};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_scaleup");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let expr = combined_query(Cardinality::High);
    for factor in [1usize, 2] {
        let parts = tpcr_partitions(BenchScale::quick().scaled(factor, true));
        let cluster = cluster_of(&parts, 4);
        let planner = Planner::new(cluster.distribution());
        for (label, flags) in [
            ("none", OptFlags::none()),
            ("all", OptFlags::all()),
        ] {
            let plan = planner.optimize(&expr, flags);
            g.bench_with_input(BenchmarkId::new(label, factor), &plan, |b, plan| {
                b.iter(|| cluster.execute(plan).expect("query runs"));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
