//! Criterion bench for Figure 4: the synchronization reduction query with
//! and without the optimization, at high and low cardinality (8 sites).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use skalla_bench::workloads::*;
use skalla_core::{OptFlags, Planner};

fn bench(c: &mut Criterion) {
    let parts = tpcr_partitions(BenchScale::quick());
    let cluster = cluster_of(&parts, N_SITES);
    let planner = Planner::new(cluster.distribution());
    let mut g = c.benchmark_group("fig4_sync_reduction");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for card in [Cardinality::High, Cardinality::Low] {
        let expr = sync_reduction_query(card);
        for (label, flags) in [
            ("no_sync_reduction", OptFlags::none()),
            ("sync_reduction", OptFlags::sync_reduction_only()),
        ] {
            let plan = planner.optimize(&expr, flags);
            g.bench_with_input(
                BenchmarkId::new(label, format!("{card:?}")),
                &plan,
                |b, plan| {
                    b.iter(|| cluster.execute(plan).expect("query runs"));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
