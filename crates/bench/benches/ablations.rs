//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **GMDJ evaluation strategy** — hash fast path vs nested loop at the
//!   sites (the centralized-evaluation efficiency the paper cites from
//!   [2, 7]);
//! * **serialization** — codec encode/decode of a shipped base structure
//!   (the per-round fixed cost of exact byte accounting);
//! * **local GMDJ evaluation** — the single-site evaluator on its own,
//!   isolating site compute from distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use skalla_bench::workloads::*;
use skalla_core::{OptFlags, Planner};
use skalla_gmdj::eval::{eval_local, EvalOptions};
use skalla_relation::codec::{decode_relation, encode_relation};

fn bench_eval_strategy(c: &mut Criterion) {
    let parts = tpcr_partitions(BenchScale::quick());
    let expr = group_reduction_query(Cardinality::Low);
    let mut g = c.benchmark_group("ablation_eval_strategy");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for (label, hash) in [("hash_path", true), ("nested_loop", false)] {
        let mut cluster = cluster_of(&parts, 4);
        cluster.configure(&skalla_core::EngineConfig {
            eval: EvalOptions {
                hash_path: hash,
                ..EvalOptions::default()
            },
            ..skalla_core::EngineConfig::default()
        });
        let plan = Planner::new(cluster.distribution()).optimize(&expr, OptFlags::all());
        g.bench_function(label, |b| {
            b.iter(|| cluster.execute(&plan).expect("query runs"));
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let parts = tpcr_partitions(BenchScale::quick());
    let base = parts[0]
        .relation
        .project_distinct(&["cust_key"])
        .expect("projects");
    let bytes = encode_relation(&base);
    let mut g = c.benchmark_group("ablation_codec");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.bench_with_input(BenchmarkId::new("encode", base.len()), &base, |b, rel| {
        b.iter(|| encode_relation(rel));
    });
    g.bench_with_input(BenchmarkId::new("decode", base.len()), &bytes, |b, bytes| {
        b.iter(|| decode_relation(bytes).expect("round-trips"));
    });
    g.finish();
}

fn bench_local_gmdj(c: &mut Criterion) {
    let parts = tpcr_partitions(BenchScale::quick());
    let detail = &parts[0].relation;
    let base = detail.project_distinct(&["cust_group"]).expect("projects");
    let op = coalescing_query(Cardinality::Low).ops[0].clone();
    let mut g = c.benchmark_group("ablation_local_gmdj");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for (label, hash) in [("hash_path", true), ("nested_loop", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                eval_local(&base, detail, &op, EvalOptions { hash_path: hash, ..EvalOptions::default() })
                    .expect("evaluates")
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eval_strategy, bench_codec, bench_local_gmdj);
criterion_main!(benches);
