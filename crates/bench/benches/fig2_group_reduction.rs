//! Criterion bench for Figure 2: the group reduction query at 4 and 8
//! sites, with and without group reduction. Wall-clock complement to the
//! `fig2` harness binary (which reports simulated time and exact bytes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use skalla_bench::workloads::*;
use skalla_core::{OptFlags, Planner};

fn bench(c: &mut Criterion) {
    let parts = tpcr_partitions(BenchScale::quick());
    let expr = group_reduction_query(Cardinality::High);
    let mut g = c.benchmark_group("fig2_group_reduction");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for k in [4usize, 8] {
        let cluster = cluster_of(&parts, k);
        let planner = Planner::new(cluster.distribution());
        for (label, flags) in [
            ("none", OptFlags::none()),
            ("site_gr", OptFlags {
                group_reduction_site: true,
                ..OptFlags::none()
            }),
            ("site_coord_gr", OptFlags::group_reduction_only()),
        ] {
            let plan = planner.optimize(&expr, flags);
            g.bench_with_input(BenchmarkId::new(label, k), &plan, |b, plan| {
                b.iter(|| cluster.execute(plan).expect("query runs"));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
