//! Prometheus-style text exposition.
//!
//! [`prometheus_text`] renders a [`Recorder`] as the flat
//! `name value` / `name{label="v"} value` text format scraped by
//! Prometheus-compatible collectors (version 0.0.4, the plain-text
//! subset — no protobuf, no exemplars). Every metric is prefixed
//! `skalla_` and names are sanitized to the `[a-zA-Z0-9_:]` charset.
//!
//! Counters export as-is; histograms export `_count`, `_sum`, `_min`,
//! `_max` plus `{quantile="…"}` series for p50/p90/p95/p99 (summary
//! convention — the log-bucketed histogram gives ~19% relative error).
//! Counters imported from remote processes carry a
//! `{process="site-N"}` label.

use crate::Recorder;
use std::fmt::Write as _;

/// Sanitize a metric name into the Prometheus charset and prefix it.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("skalla_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn write_value(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = writeln!(out, "{v}");
    } else {
        out.push_str("NaN\n");
    }
}

/// Render the recorder's counters and histograms in the Prometheus
/// text exposition format.
pub fn prometheus_text(rec: &Recorder) -> String {
    let mut out = String::new();

    let mut counters: Vec<(String, f64)> = rec.counters().into_iter().collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, v) in counters {
        out.push_str(&metric_name(&name));
        out.push(' ');
        write_value(&mut out, v);
    }

    // Remote-process counters: same metric name, process label.
    let mut parts = rec.remote_parts();
    parts.sort_by_key(|p| p.process_id);
    for part in parts {
        let mut finals: Vec<(String, f64)> = Vec::new();
        for c in &part.counters {
            match finals.iter_mut().find(|(name, _)| *name == c.name) {
                Some((_, v)) => *v = c.value,
                None => finals.push((c.name.clone(), c.value)),
            }
        }
        finals.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in finals {
            let _ = write!(
                out,
                "{}{{process=\"{}\"}} ",
                metric_name(&name),
                part.process_name
            );
            write_value(&mut out, v);
        }
    }

    let mut hists: Vec<_> = rec.histograms().into_iter().collect();
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, h) in hists {
        let base = metric_name(&name);
        let _ = writeln!(out, "{base}_count {}", h.count());
        let _ = write!(out, "{base}_sum ");
        write_value(&mut out, h.sum());
        let _ = write!(out, "{base}_min ");
        write_value(&mut out, h.min());
        let _ = write!(out, "{base}_max ");
        write_value(&mut out, h.max());
        for (q, p) in [(0.5, 50.0), (0.9, 90.0), (0.95, 95.0), (0.99, 99.0)] {
            let _ = write!(out, "{base}{{quantile=\"{q}\"}} ");
            write_value(&mut out, h.percentile(p));
        }
    }

    let _ = writeln!(out, "skalla_uptime_seconds {}", rec.now_us() as f64 / 1e6);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExportCursor, Obs, Track};

    #[test]
    fn exposition_covers_counters_hists_and_remote_labels() {
        let obs = Obs::recording();
        obs.counter("scheduler.running", 3.0);
        obs.counter_add("net.bytes-up", 512.0); // '-' sanitized to '_'
        for i in 1..=100 {
            obs.hist("query.wall_s", i as f64 / 100.0);
        }
        let site = Obs::recording();
        site.recorder().unwrap().set_process(2, "site-0");
        site.counter("rows_shipped", 42.0);
        {
            let _keep_span_shape = site.span(Track::Site(0), "task");
        }
        let delta = site
            .recorder()
            .unwrap()
            .take_delta(&mut ExportCursor::default());
        obs.recorder().unwrap().import_remote(delta, 0);

        let text = prometheus_text(obs.recorder().unwrap());
        assert!(text.contains("skalla_scheduler_running 3\n"), "{text}");
        assert!(text.contains("skalla_net_bytes_up 512\n"), "{text}");
        assert!(text.contains("skalla_query_wall_s_count 100\n"));
        assert!(text.contains("skalla_query_wall_s{quantile=\"0.5\"} "));
        assert!(text.contains("skalla_query_wall_s{quantile=\"0.99\"} "));
        assert!(
            text.contains("skalla_rows_shipped{process=\"site-0\"} 42\n"),
            "{text}"
        );
        assert!(text.contains("skalla_uptime_seconds "));
        // Every line is `name[{labels}] value`.
        for line in text.lines() {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(name.starts_with("skalla_"), "{line}");
            assert!(value.parse::<f64>().is_ok() || value == "NaN", "{line}");
        }
    }
}
