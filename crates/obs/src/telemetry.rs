//! Portable telemetry deltas: what a remote process ships back to the
//! coordinator so one merged trace can span the whole cluster.
//!
//! A [`TelemetryDelta`] is everything a [`Recorder`](crate::Recorder)
//! accumulated since the previous export — closed spans, instant
//! events, counter samples, and histogram *deltas* — plus the exporting
//! process's identity and clock anchors. It serializes through the
//! hand-rolled [`json`](crate::json) codec (this workspace has no
//! serde) and round-trips exactly, which the property tests pin.
//!
//! Clock alignment: timestamps inside a delta are microseconds since
//! the *exporting* recorder's epoch. [`estimate_offset_us`] maps them
//! onto the importing recorder's timeline, anchored on the two
//! recorders' `wall_start_unix_us` and tightened by a Cristian-style
//! request/response bound when the importer knows when (on its own
//! clock) it asked for and received the delta.

use crate::json::Json;
use crate::{ArgValue, CounterSample, EventRecord, Histogram, SpanRecord, Track};
use parking_lot::Mutex;
use std::collections::BTreeSet;

/// One process's exported telemetry since the previous export.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryDelta {
    /// Exporting process's pid lane (see `Recorder::set_process`).
    pub process_id: u32,
    /// Exporting process's lane name (e.g. `site-2`).
    pub process_name: String,
    /// Wall-clock time of the exporter's epoch, µs since UNIX epoch.
    pub wall_start_unix_us: u64,
    /// Exporter-relative time the delta was taken (its `now_us()`).
    pub export_now_us: u64,
    /// Closed spans (exporter-relative timestamps).
    pub spans: Vec<SpanRecord>,
    /// Instant events.
    pub events: Vec<EventRecord>,
    /// Counter samples.
    pub counters: Vec<CounterSample>,
    /// Per-name histogram deltas (sample-exact count/sum/buckets).
    pub hists: Vec<(String, Histogram)>,
}

/// Per-exporter state for [`crate::Recorder::take_delta`]: the previous
/// histogram snapshot, so consecutive deltas don't double-count.
#[derive(Debug, Default)]
pub struct ExportCursor {
    pub(crate) prev_hists: std::collections::HashMap<String, Histogram>,
}

/// Estimate the µs offset that maps `delta`'s timestamps onto the
/// timeline of an importing recorder whose epoch is
/// `coord_wall_start_unix_us`.
///
/// The anchor is the wall-clock difference of the two epochs. When the
/// importer knows, on its own timeline, when it requested the delta and
/// when the reply arrived (`req_resp_us`), the export instant must lie
/// between the two, which bounds the offset to
/// `[req − export_now, resp − export_now]` (Cristian's algorithm); the
/// anchor is clamped into that interval, correcting wall-clock skew
/// between the processes up to the one-way message latency.
pub fn estimate_offset_us(
    coord_wall_start_unix_us: u64,
    delta: &TelemetryDelta,
    req_resp_us: Option<(u64, u64)>,
) -> i64 {
    let anchor = delta.wall_start_unix_us as i64 - coord_wall_start_unix_us as i64;
    match req_resp_us {
        Some((req, resp)) if req <= resp => {
            let lo = req as i64 - delta.export_now_us as i64;
            let hi = resp as i64 - delta.export_now_us as i64;
            anchor.clamp(lo, hi)
        }
        _ => anchor,
    }
}

/// Span/event attribute keys are `&'static str` throughout the recorder
/// (they come from instrumentation literals); keys parsed back from
/// JSON are interned here. The set is bounded by the instrumentation
/// vocabulary, so the leak is a one-time cost per distinct key.
fn intern(s: &str) -> &'static str {
    static KEYS: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut keys = KEYS.lock();
    match keys.get(s) {
        Some(k) => k,
        None => {
            let k: &'static str = Box::leak(s.to_string().into_boxed_str());
            keys.insert(k);
            k
        }
    }
}

fn track_to_json(t: Track) -> Json {
    match t {
        Track::Coordinator => Json::obj(vec![("t", Json::from("coord"))]),
        Track::Optimizer => Json::obj(vec![("t", Json::from("opt"))]),
        Track::Net => Json::obj(vec![("t", Json::from("net"))]),
        Track::Site(i) => Json::obj(vec![("t", Json::from("site")), ("i", Json::UInt(i as u64))]),
        Track::Worker(site, w) => Json::obj(vec![
            ("t", Json::from("worker")),
            ("i", Json::UInt(site as u64)),
            ("w", Json::UInt(w as u64)),
        ]),
        Track::Query(q) => Json::obj(vec![("t", Json::from("query")), ("q", Json::UInt(q as u64))]),
        Track::SiteQuery(site, q) => Json::obj(vec![
            ("t", Json::from("site-query")),
            ("i", Json::UInt(site as u64)),
            ("q", Json::UInt(q as u64)),
        ]),
    }
}

fn track_from_json(j: &Json) -> Result<Track, String> {
    let kind = j
        .get("t")
        .and_then(Json::as_str)
        .ok_or("track without a kind tag")?;
    let idx = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("track {kind:?} missing field {key:?}"))
    };
    Ok(match kind {
        "coord" => Track::Coordinator,
        "opt" => Track::Optimizer,
        "net" => Track::Net,
        "site" => Track::Site(idx("i")? as usize),
        "worker" => Track::Worker(idx("i")? as usize, idx("w")? as usize),
        "query" => Track::Query(idx("q")? as u32),
        "site-query" => Track::SiteQuery(idx("i")? as usize, idx("q")? as u32),
        other => return Err(format!("unknown track kind {other:?}")),
    })
}

fn args_to_json(args: &[(&'static str, ArgValue)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| (k.to_string(), v.to_json()))
            .collect(),
    )
}

fn args_from_json(j: Option<&Json>) -> Result<Vec<(&'static str, ArgValue)>, String> {
    let Some(Json::Obj(pairs)) = j else {
        return Ok(Vec::new());
    };
    pairs
        .iter()
        .map(|(k, v)| {
            let v = match v {
                Json::Int(i) if *i >= 0 => ArgValue::UInt(*i as u64),
                Json::Int(i) => ArgValue::Int(*i),
                Json::UInt(u) => ArgValue::UInt(*u),
                Json::Float(f) => ArgValue::Float(*f),
                Json::Str(s) => ArgValue::Str(s.clone()),
                Json::Bool(b) => ArgValue::Bool(*b),
                other => return Err(format!("unsupported arg value {other:?}")),
            };
            Ok((intern(k), v))
        })
        .collect()
}

fn hist_to_json(h: &Histogram) -> Json {
    let buckets: Vec<Json> = h
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(i, c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(*c)]))
        .collect();
    Json::obj(vec![
        ("count", Json::UInt(h.count())),
        ("sum", Json::Float(h.sum())),
        ("min", Json::Float(h.min())),
        ("max", Json::Float(h.max())),
        ("buckets", Json::Arr(buckets)),
    ])
}

fn hist_from_json(j: &Json) -> Result<Histogram, String> {
    let num = |key: &str| -> Result<f64, String> {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("histogram missing field {key:?}"))
    };
    let count = j
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("histogram missing count")?;
    let mut buckets = vec![0u64; Histogram::n_buckets()];
    for pair in j
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing buckets")?
    {
        let items = pair.as_arr().ok_or("bucket entry is not a pair")?;
        let (Some(i), Some(c)) = (
            items.first().and_then(Json::as_u64),
            items.get(1).and_then(Json::as_u64),
        ) else {
            return Err("bucket entry is not [index, count]".into());
        };
        if let Some(slot) = buckets.get_mut(i as usize) {
            *slot = c;
        }
    }
    Ok(Histogram::from_parts(
        count,
        num("sum")?,
        num("min")?,
        num("max")?,
        &buckets,
    ))
}

impl TelemetryDelta {
    /// Serialize the delta as a JSON document.
    pub fn to_json(&self) -> Json {
        let spans: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("id", Json::UInt(s.id as u64)),
                    (
                        "parent",
                        s.parent.map(|p| Json::UInt(p as u64)).unwrap_or(Json::Null),
                    ),
                    ("track", track_to_json(s.track)),
                    ("name", Json::from(s.name.as_str())),
                    ("start_us", Json::UInt(s.start_us)),
                    (
                        "dur_us",
                        s.dur_us.map(Json::UInt).unwrap_or(Json::Null),
                    ),
                    ("args", args_to_json(&s.args)),
                ])
            })
            .collect();
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("track", track_to_json(e.track)),
                    ("name", Json::from(e.name.as_str())),
                    ("ts_us", Json::UInt(e.ts_us)),
                    ("args", args_to_json(&e.args)),
                ])
            })
            .collect();
        let counters: Vec<Json> = self
            .counters
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("name", Json::from(c.name.as_str())),
                    ("ts_us", Json::UInt(c.ts_us)),
                    ("value", Json::Float(c.value)),
                ])
            })
            .collect();
        let hists: Vec<(String, Json)> = self
            .hists
            .iter()
            .map(|(name, h)| (name.clone(), hist_to_json(h)))
            .collect();
        Json::obj(vec![
            ("process_id", Json::UInt(self.process_id as u64)),
            ("process_name", Json::from(self.process_name.as_str())),
            ("wall_start_unix_us", Json::UInt(self.wall_start_unix_us)),
            ("export_now_us", Json::UInt(self.export_now_us)),
            ("spans", Json::Arr(spans)),
            ("events", Json::Arr(events)),
            ("counters", Json::Arr(counters)),
            ("hists", Json::Obj(hists)),
        ])
    }

    /// Parse a delta back from [`TelemetryDelta::to_json`] output.
    pub fn from_json(j: &Json) -> Result<TelemetryDelta, String> {
        let u = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("telemetry missing field {key:?}"))
        };
        let list = |key: &str| -> Result<&[Json], String> {
            j.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("telemetry missing array {key:?}"))
        };
        let name = |e: &Json| -> Result<String, String> {
            e.get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("record missing name".to_string())
        };
        let mut spans = Vec::new();
        for s in list("spans")? {
            spans.push(SpanRecord {
                id: s.get("id").and_then(Json::as_u64).ok_or("span missing id")? as u32,
                parent: s.get("parent").and_then(Json::as_u64).map(|p| p as u32),
                track: track_from_json(s.get("track").ok_or("span missing track")?)?,
                name: name(s)?,
                start_us: s
                    .get("start_us")
                    .and_then(Json::as_u64)
                    .ok_or("span missing start_us")?,
                dur_us: s.get("dur_us").and_then(Json::as_u64),
                args: args_from_json(s.get("args"))?,
            });
        }
        let mut events = Vec::new();
        for e in list("events")? {
            events.push(EventRecord {
                track: track_from_json(e.get("track").ok_or("event missing track")?)?,
                name: name(e)?,
                ts_us: e
                    .get("ts_us")
                    .and_then(Json::as_u64)
                    .ok_or("event missing ts_us")?,
                args: args_from_json(e.get("args"))?,
            });
        }
        let mut counters = Vec::new();
        for c in list("counters")? {
            counters.push(CounterSample {
                name: name(c)?,
                ts_us: c
                    .get("ts_us")
                    .and_then(Json::as_u64)
                    .ok_or("counter missing ts_us")?,
                value: c
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or("counter missing value")?,
            });
        }
        let Some(Json::Obj(hist_pairs)) = j.get("hists") else {
            return Err("telemetry missing hists".into());
        };
        let mut hists = Vec::new();
        for (hname, h) in hist_pairs {
            hists.push((hname.clone(), hist_from_json(h)?));
        }
        Ok(TelemetryDelta {
            process_id: u("process_id")? as u32,
            process_name: j
                .get("process_name")
                .and_then(Json::as_str)
                .ok_or("telemetry missing process_name")?
                .to_string(),
            wall_start_unix_us: u("wall_start_unix_us")?,
            export_now_us: u("export_now_us")?,
            spans,
            events,
            counters,
            hists,
        })
    }

    /// Parse from a JSON string.
    pub fn parse(text: &str) -> Result<TelemetryDelta, String> {
        let doc = crate::json::parse(text).map_err(|e| format!("telemetry JSON: {e}"))?;
        TelemetryDelta::from_json(&doc)
    }
}

/// Displays as the compact JSON wire form ([`TelemetryDelta::parse`]
/// inverts it).
impl std::fmt::Display for TelemetryDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json().to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obs, Track};

    #[test]
    fn delta_round_trips_through_json() {
        let obs = Obs::recording();
        obs.recorder().unwrap().set_process(4, "site-2");
        {
            let _g = obs
                .span(Track::SiteQuery(2, 7), "task md1")
                .with("rows_up", 128u64)
                .with("label", "gmdj 1")
                .with("skewed", true)
                .with("delta", -3i64)
                .with("busy_s", 0.125f64);
            obs.event(Track::Net, "msg up", vec![("bytes", 512u64.into())]);
            obs.counter_add("net.bytes_up", 512.0);
            obs.hist("site_busy_s", 0.25);
            obs.hist("site_busy_s", 0.75);
        }
        let mut cursor = ExportCursor::default();
        let delta = obs.recorder().unwrap().take_delta(&mut cursor);
        assert_eq!(delta.process_name, "site-2");
        assert_eq!(delta.spans.len(), 1);
        let parsed = TelemetryDelta::parse(&delta.to_string()).unwrap();
        assert_eq!(parsed, delta);
    }

    #[test]
    fn take_delta_drains_and_windows() {
        let obs = Obs::recording();
        let rec = obs.recorder().unwrap();
        let mut cursor = ExportCursor::default();
        obs.span(Track::Site(0), "a").finish();
        obs.counter_add("msgs", 1.0);
        obs.hist("h", 1.0);
        let open = obs.span(Track::Site(0), "open");
        let d1 = rec.take_delta(&mut cursor);
        assert_eq!(d1.spans.len(), 1, "only the closed span exports");
        assert_eq!(d1.hists.len(), 1);
        assert_eq!(d1.hists[0].1.count(), 1);
        // The drained counter still reads through the base.
        assert_eq!(rec.counters()["msgs"], 1.0);
        obs.counter_add("msgs", 1.0);
        assert_eq!(rec.counters()["msgs"], 2.0, "counter_add resumes from base");
        drop(open);
        obs.hist("h", 2.0);
        obs.hist("h", 3.0);
        let d2 = rec.take_delta(&mut cursor);
        assert_eq!(d2.spans.len(), 1, "the span exports once it closes");
        assert_eq!(d2.spans[0].name, "open");
        assert_eq!(d2.hists[0].1.count(), 2, "histogram delta is windowed");
        assert_eq!(d2.counters.len(), 1);
        let d3 = rec.take_delta(&mut cursor);
        assert!(d3.spans.is_empty() && d3.hists.is_empty() && d3.counters.is_empty());
    }

    /// Histograms imported from a remote delta merge *sample-exactly*
    /// into the local recorder: every remote observation lands in the
    /// same bucket it occupied at the site, and count/sum/min/max add
    /// up exactly — no re-quantization, no lost samples.
    #[test]
    fn imported_histograms_merge_sample_exactly() {
        let site = Obs::recording();
        let coord = Obs::recording();
        let site_values = [0.001, 0.5, 0.5, 7.25, 1e-12];
        let coord_values = [0.25, 3.0];
        for v in site_values {
            site.hist("query.wall_s", v);
        }
        for v in coord_values {
            coord.hist("query.wall_s", v);
        }
        let mut expected = crate::Histogram::default();
        for v in site_values.iter().chain(&coord_values) {
            expected.record(*v);
        }

        let mut cursor = ExportCursor::default();
        let delta = site.recorder().unwrap().take_delta(&mut cursor);
        // The JSON wire format must preserve exactness too.
        let delta = TelemetryDelta::parse(&delta.to_string()).unwrap();
        let rec = coord.recorder().unwrap();
        rec.import_remote(delta, 0);

        let merged = &rec.histograms()["query.wall_s"];
        assert_eq!(merged, &expected, "merge must be sample-exact");
        assert_eq!(merged.count(), 7);
    }

    /// Repeated imports from one site pin the first offset, so merged
    /// span timestamps stay monotone on the coordinator's timeline even
    /// if later offset estimates would differ.
    #[test]
    fn merged_span_timestamps_stay_monotone_across_imports() {
        let site = Obs::recording();
        let site_rec = site.recorder().unwrap();
        site_rec.set_process(2, "site-0");
        let coord = Obs::recording();
        let rec = coord.recorder().unwrap();

        let mut cursor = ExportCursor::default();
        site.span(Track::Site(0), "first").finish();
        rec.import_remote(site_rec.take_delta(&mut cursor), 250);
        site.span(Track::Site(0), "second").finish();
        // A later, wildly different estimate must NOT re-shift the lane.
        rec.import_remote(site_rec.take_delta(&mut cursor), -1_000_000);

        let parts = rec.remote_parts();
        assert_eq!(parts.len(), 1, "one lane per remote process id");
        let part = &parts[0];
        assert_eq!(part.offset_us, 250, "first offset is pinned");
        assert_eq!(part.spans.len(), 2);
        let shifted: Vec<u64> = part
            .spans
            .iter()
            .map(|s| part.shift_us(s.start_us))
            .collect();
        assert!(
            shifted.windows(2).all(|w| w[0] <= w[1]),
            "aligned span starts must be monotone: {shifted:?}"
        );
    }

    #[test]
    fn offset_estimation_clamps_anchor_into_rtt_bound() {
        let mk = |wall: u64, export_now: u64| TelemetryDelta {
            process_id: 2,
            process_name: "site-0".into(),
            wall_start_unix_us: wall,
            export_now_us: export_now,
            spans: vec![],
            events: vec![],
            counters: vec![],
            hists: vec![],
        };
        // Clocks agree: anchor (1000) already inside the bound.
        let d = mk(1_001_000, 500);
        assert_eq!(estimate_offset_us(1_000_000, &d, Some((1400, 1600))), 1000);
        // Site wall clock is 1 s fast: the anchor (1_001_000) violates
        // the request/response bound and gets clamped to it.
        let d = mk(2_000_000, 500);
        assert_eq!(
            estimate_offset_us(1_000_000, &d, Some((1400, 1600))),
            1100,
            "clamped to resp - export_now"
        );
        // No request/response info: fall back to the wall anchor.
        assert_eq!(estimate_offset_us(1_000_000, &d, None), 1_000_000);
    }
}
