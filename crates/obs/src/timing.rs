//! Busy-time measurement for site stage tasks.
//!
//! The in-process engine simulates a distributed warehouse with one
//! thread per site, so on a machine with fewer cores than sites the
//! threads timeshare: wall-clock timing of a stage task then charges a
//! site for time it spent *descheduled* while other sites (or loan
//! helpers) ran. That both inflates every per-site busy figure and adds
//! run-to-run noise exactly when work overlaps — the situation the skew
//! balancer creates on purpose.
//!
//! [`BusyTimer`] therefore measures *thread CPU time* where the
//! platform provides it (Linux, via a dependency-free `clock_gettime`
//! syscall on `CLOCK_THREAD_CPUTIME_ID` — this workspace deliberately
//! has no libc binding) and falls back to monotonic wall time
//! elsewhere. On a real deployment, where each site is its own machine,
//! the two clocks coincide; under simulation, CPU time is the faithful
//! stand-in for "what this site would have computed alone".

use std::time::Instant;

/// Nanoseconds of CPU time consumed by the calling thread, if the
/// platform exposes a thread CPU clock.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn thread_cpu_ns() -> Option<u64> {
    // Raw clock_gettime(CLOCK_THREAD_CPUTIME_ID): syscall 228 on
    // x86_64, clock id 3. vDSO would be faster but needs a loader;
    // one true syscall per stage task is far below measurement noise.
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    let mut ts = Timespec { sec: 0, nsec: 0 };
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 228i64 => ret,
            in("rdi") 3i64,
            in("rsi") &mut ts as *mut Timespec,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    (ret == 0).then(|| ts.sec as u64 * 1_000_000_000 + ts.nsec as u64)
}

/// Fallback: no thread CPU clock on this platform.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn thread_cpu_ns() -> Option<u64> {
    None
}

/// Times one stage task's *compute*: thread CPU time when available,
/// monotonic wall time otherwise. Start and stop on the same thread.
pub struct BusyTimer {
    cpu_ns: Option<u64>,
    wall: Instant,
}

impl BusyTimer {
    /// Start timing on the calling thread.
    pub fn start() -> BusyTimer {
        BusyTimer {
            cpu_ns: thread_cpu_ns(),
            wall: Instant::now(),
        }
    }

    /// Seconds of compute since [`BusyTimer::start`].
    pub fn elapsed_s(&self) -> f64 {
        match (self.cpu_ns, thread_cpu_ns()) {
            (Some(a), Some(b)) => (b.saturating_sub(a)) as f64 / 1e9,
            _ => self.wall.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_clock_advances_with_work() {
        let t = BusyTimer::start();
        // Spin long enough to register on any clock granularity.
        let mut x = 0u64;
        for i in 0..5_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let s = t.elapsed_s();
        assert!(s > 0.0, "busy timer did not advance: {s}");
        assert!(s < 60.0, "busy timer jumped implausibly: {s}");
    }

    #[test]
    fn cpu_time_ignores_sleep() {
        // Only meaningful where the thread CPU clock exists.
        if thread_cpu_ns().is_none() {
            return;
        }
        let t = BusyTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let s = t.elapsed_s();
        assert!(s < 0.040, "sleep was charged as compute: {s}");
    }
}
