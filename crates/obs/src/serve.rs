//! Live metrics exposition over HTTP.
//!
//! [`MetricsServer::bind`] starts a minimal, dependency-free HTTP/1.0
//! responder on a background thread, serving the recorder's current
//! state on every request:
//!
//! - `/metrics` — Prometheus text format ([`crate::expo::prometheus_text`])
//! - `/metrics.json` — the [`crate::chrome::metrics_snapshot`] document
//! - `/trace.json` — the merged Chrome trace ([`crate::chrome::chrome_trace`])
//!
//! One request per connection (`Connection: close`), bounded reads, no
//! keep-alive, no TLS — this is an operator endpoint for `curl` and
//! scrapers on a trusted network, not a general web server.

use crate::{chrome, expo, Recorder};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running metrics endpoint. Dropping the handle asks the
/// serving thread to wind down (it exits after the next connection or
/// accept wakeup rather than blocking process exit).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9100`, port 0 for ephemeral) and
    /// serve `rec` until the process exits or the handle is dropped.
    pub fn bind(addr: &str, rec: Arc<Recorder>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("skalla-metrics".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One slow client must not wedge the endpoint.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                        let _ = serve_one(stream, &rec);
                    }
                }
            })?;
        Ok(MetricsServer { addr: local, stop })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

fn serve_one(stream: TcpStream, rec: &Recorder) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line so the client isn't reset
    // mid-send; bound the total to keep rude clients cheap.
    let mut drained = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        drained += n;
        if n == 0 || line == "\r\n" || line == "\n" || drained > 16 * 1024 {
            break;
        }
    }

    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" | "/" => (
            "200 OK",
            "text/plain; version=0.0.4",
            expo::prometheus_text(rec),
        ),
        "/metrics.json" => (
            "200 OK",
            "application/json",
            chrome::metrics_snapshot(rec).to_json(),
        ),
        "/trace.json" => ("200 OK", "application/json", chrome::write_chrome_trace(rec)),
        _ => (
            "404 Not Found",
            "text/plain; version=0.0.4",
            "not found: try /metrics, /metrics.json or /trace.json\n".to_string(),
        ),
    };

    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Obs};
    use std::io::Read as _;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_snapshot_and_trace() {
        let obs = Obs::recording();
        obs.counter("scheduler.running", 2.0);
        obs.hist("query.wall_s", 0.125);
        let server =
            MetricsServer::bind("127.0.0.1:0", Arc::clone(obs.recorder().unwrap())).unwrap();
        let addr = server.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        assert!(body.contains("skalla_scheduler_running 2\n"), "{body}");
        assert!(body.contains("skalla_query_wall_s_count 1\n"));

        let (_, body) = http_get(addr, "/metrics.json");
        let doc = json::parse(&body).expect("snapshot is valid JSON");
        assert!(doc.get("counters").is_some());

        let (_, body) = http_get(addr, "/trace.json");
        assert!(json::parse(&body).unwrap().get("traceEvents").is_some());

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
    }
}
