//! Observability for Skalla: a dependency-free span/event/metric
//! recorder with Chrome-trace export.
//!
//! The execution engine is threaded (one coordinator plus one thread
//! per site), so the recorder is a shared-state sink: any thread can
//! open spans, emit instant events, bump counters, or feed histograms
//! through a cheaply-cloneable [`Obs`] handle. Spans nest per *track*
//! (one logical timeline per coordinator / site / optimizer / network),
//! which matches how the engine parallelizes and renders directly as
//! one row per track in a trace viewer.
//!
//! **Cost when disabled.** `Obs` is `Option<Arc<Recorder>>` inside;
//! a disabled handle makes every call a branch on a null pointer — no
//! allocation, no locking, no formatting. The optional process-global
//! recorder adds one relaxed atomic load. `crates/bench/benches/
//! obs_overhead.rs` measures both paths.
//!
//! Export goes through [`chrome::chrome_trace`] (Chrome trace-event
//! JSON, loadable in Perfetto or `chrome://tracing`) and
//! [`chrome::metrics_snapshot`] (flat counters + histogram summary),
//! both emitted by the hand-rolled [`json`] writer — this workspace has
//! no serde.

pub mod chrome;
pub mod expo;
pub mod json;
pub mod serve;
pub mod telemetry;
pub mod timing;

pub use telemetry::{estimate_offset_us, ExportCursor, TelemetryDelta};
pub use timing::BusyTimer;

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A logical timeline. Spans nest within their track, mirroring the
/// engine's thread structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The coordinator's control flow (stages, synchronizations).
    Coordinator,
    /// Plan construction and rewrite decisions.
    Optimizer,
    /// Message-level network activity.
    Net,
    /// One executing site.
    Site(usize),
    /// One kernel worker thread within a site (`(site, worker)`). The
    /// morsel-parallel GMDJ kernel opens per-morsel spans here; a
    /// dedicated track per worker keeps span nesting (which is
    /// per-track) correct when workers run concurrently.
    Worker(usize, usize),
    /// One query's coordinator-side control flow in a concurrent
    /// multi-query engine. Span nesting is per-track, so concurrent
    /// queries must not share [`Track::Coordinator`]; each gets its own
    /// timeline keyed by query id.
    Query(u32),
    /// One query's execution on one site (`(site, query_id)`) under the
    /// concurrent engine's demultiplexing loop, where several query
    /// workers run on the same site at once.
    SiteQuery(usize, u32),
}

impl Track {
    /// Stable thread id for trace export (sites start at 16, kernel
    /// workers at 4096 in blocks of 64 per site, per-query coordinator
    /// tracks at 1024, per-site query tracks at 65536 in blocks of 256
    /// per site).
    pub fn tid(self) -> u64 {
        match self {
            Track::Coordinator => 1,
            Track::Optimizer => 2,
            Track::Net => 3,
            Track::Site(i) => 16 + i as u64,
            Track::Worker(site, w) => 4096 + (site as u64) * 64 + (w as u64).min(63),
            Track::Query(q) => 1024 + (q as u64).min(3071),
            Track::SiteQuery(site, q) => 65536 + (site as u64) * 256 + (q as u64).min(255),
        }
    }

    /// Human-readable timeline name.
    pub fn label(self) -> String {
        match self {
            Track::Coordinator => "coordinator".to_string(),
            Track::Optimizer => "optimizer".to_string(),
            Track::Net => "net".to_string(),
            Track::Site(i) => format!("site {i}"),
            Track::Worker(site, w) => format!("site {site} worker {w}"),
            Track::Query(q) => format!("query {q}"),
            Track::SiteQuery(site, q) => format!("site {site} query {q}"),
        }
    }

    /// Trace category string.
    pub fn category(self) -> &'static str {
        match self {
            Track::Coordinator => "coord",
            Track::Optimizer => "opt",
            Track::Net => "net",
            Track::Site(_) => "site",
            Track::Worker(_, _) => "worker",
            Track::Query(_) => "query",
            Track::SiteQuery(_, _) => "site-query",
        }
    }
}

/// An attribute value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A signed integer attribute.
    Int(i64),
    /// An unsigned integer attribute (counts, ids).
    UInt(u64),
    /// A float attribute.
    Float(f64),
    /// A string attribute.
    Str(String),
    /// A boolean attribute.
    Bool(bool),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Int(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::UInt(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::UInt(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::Float(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}

impl ArgValue {
    pub(crate) fn to_json(&self) -> json::Json {
        match self {
            ArgValue::Int(i) => json::Json::Int(*i),
            ArgValue::UInt(u) => json::Json::UInt(*u),
            ArgValue::Float(f) => json::Json::Float(*f),
            ArgValue::Str(s) => json::Json::Str(s.clone()),
            ArgValue::Bool(b) => json::Json::Bool(*b),
        }
    }
}

/// A completed or in-flight span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Recorder-unique id.
    pub id: u32,
    /// Enclosing span on the same track, if any.
    pub parent: Option<u32>,
    /// Timeline this span belongs to.
    pub track: Track,
    /// Span name (e.g. `stage md1` or `sync merge`).
    pub name: String,
    /// Start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds; `None` while still open.
    pub dur_us: Option<u64>,
    /// Attached attributes.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// An instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Timeline the event belongs to.
    pub track: Track,
    /// Event name.
    pub name: String,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Attached attributes.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// One counter observation (counters are gauges with history).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Counter name.
    pub name: String,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Value at that instant.
    pub value: f64,
}

/// Log-bucketed histogram: exact count/sum/min/max, ~19% relative
/// resolution (base 2¼ buckets) for percentile estimates. Covers
/// values from 1e-9 up; smaller values clamp into the first bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

const HIST_BUCKETS: usize = 256;
const HIST_FLOOR: f64 = 1e-9;

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    fn bucket_of(v: f64) -> usize {
        if v <= HIST_FLOOR {
            return 0;
        }
        (((v / HIST_FLOOR).log2() * 4.0).floor() as usize).min(HIST_BUCKETS - 1)
    }

    fn bucket_mid(i: usize) -> f64 {
        HIST_FLOOR * 2f64.powf((i as f64 + 0.5) / 4.0)
    }

    /// Record one observation (non-finite values are dropped).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The raw bucket counts (length [`Histogram::n_buckets`]); bucket
    /// `i` covers `[1e-9·2^(i/4), 1e-9·2^((i+1)/4))`. Exported so
    /// snapshots from different processes merge without precision loss.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Number of buckets every histogram has.
    pub fn n_buckets() -> usize {
        HIST_BUCKETS
    }

    /// Rebuild a histogram from exported parts (the inverse of reading
    /// [`Histogram::buckets`] plus the count/sum/min/max accessors).
    /// `buckets` longer than [`Histogram::n_buckets`] is truncated,
    /// shorter is zero-padded. An empty (`count == 0`) histogram resets
    /// min/max to their identity values regardless of the inputs.
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64, buckets: &[u64]) -> Histogram {
        let mut b = vec![0u64; HIST_BUCKETS];
        for (dst, src) in b.iter_mut().zip(buckets) {
            *dst = *src;
        }
        if count == 0 {
            Histogram {
                buckets: b,
                ..Histogram::default()
            }
        } else {
            Histogram {
                count,
                sum,
                min,
                max,
                buckets: b,
            }
        }
    }

    /// Merge another histogram's samples into this one. Count, sum and
    /// the bucket array add exactly; min/max take the tighter bound —
    /// merging is sample-exact relative to recording every observation
    /// into a single histogram (min/max/count/sum/buckets all agree).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += *src;
        }
    }

    /// The samples `newer` has accumulated beyond `older` (two snapshots
    /// of the same growing histogram). Count, sum and buckets subtract
    /// exactly; min/max carry `newer`'s overall-so-far bounds, so a
    /// stream of window deltas still merges to the true overall min/max.
    pub fn diff(newer: &Histogram, older: &Histogram) -> Histogram {
        let count = newer.count.saturating_sub(older.count);
        if count == 0 {
            return Histogram::default();
        }
        let mut buckets = newer.buckets.clone();
        for (dst, src) in buckets.iter_mut().zip(&older.buckets) {
            *dst = dst.saturating_sub(*src);
        }
        Histogram {
            count,
            sum: newer.sum - older.sum,
            min: newer.min,
            max: newer.max,
            buckets,
        }
    }

    /// Estimated `p`-th percentile (`p` in 0..=100), within one bucket
    /// (~19% relative error), clamped to the observed min/max.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
struct Timeline {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: Vec<CounterSample>,
    /// Final value of every counter whose sample history was drained by
    /// [`Recorder::take_delta`]; [`Recorder::counters`] overlays live
    /// samples on top of this, so draining never loses gauge values.
    counter_base: HashMap<String, f64>,
    stacks: HashMap<Track, Vec<u32>>,
    next_id: u32,
}

/// Telemetry imported from another process's recorder, kept alongside
/// the local timeline for merged export: the process keeps its own pid
/// lane in the Chrome trace, and its timestamps are shifted by
/// `offset_us` (its clock mapped onto this recorder's epoch).
#[derive(Debug, Clone)]
pub struct RemotePart {
    /// Originating process id (distinct pid lane in the merged trace).
    pub process_id: u32,
    /// Originating process name (e.g. `site-0`).
    pub process_name: String,
    /// Microseconds to add to the part's timestamps to land on this
    /// recorder's timeline (estimated once per process and then pinned,
    /// so later imports from the same process stay monotone).
    pub offset_us: i64,
    /// Spans recorded by the remote process (its own epoch).
    pub spans: Vec<SpanRecord>,
    /// Instant events recorded by the remote process.
    pub events: Vec<EventRecord>,
    /// Counter samples recorded by the remote process.
    pub counters: Vec<CounterSample>,
}

impl RemotePart {
    /// Map a remote timestamp onto the importing recorder's timeline.
    pub fn shift_us(&self, us: u64) -> u64 {
        (us as i64 + self.offset_us).max(0) as u64
    }
}

/// The shared recording sink. Create one per traced execution via
/// [`Obs::recording`], or install a process-global one with
/// [`install_global`].
pub struct Recorder {
    epoch: Instant,
    wall_start_unix_us: u64,
    timeline: Mutex<Timeline>,
    hists: Mutex<HashMap<String, Histogram>>,
    process: Mutex<(u32, String)>,
    remote: Mutex<Vec<RemotePart>>,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            wall_start_unix_us: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            timeline: Mutex::new(Timeline::default()),
            hists: Mutex::new(HashMap::new()),
            process: Mutex::new((1, "skalla".to_string())),
            remote: Mutex::new(Vec::new()),
        }
    }

    /// Name this recorder's process for multi-process trace export
    /// (e.g. `coordinator` / `site-3`). The id becomes the pid lane in
    /// merged Chrome traces, so each process needs a distinct one.
    pub fn set_process(&self, id: u32, name: impl Into<String>) {
        *self.process.lock() = (id, name.into());
    }

    /// The pid lane this recorder's own events export under.
    pub fn process_id(&self) -> u32 {
        self.process.lock().0
    }

    /// The process lane name (default `skalla`).
    pub fn process_name(&self) -> String {
        self.process.lock().1.clone()
    }

    /// Microseconds elapsed since this recorder was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Wall-clock time of the recorder's epoch, µs since UNIX epoch.
    pub fn wall_start_unix_us(&self) -> u64 {
        self.wall_start_unix_us
    }

    /// Snapshot of all spans recorded so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.timeline.lock().spans.clone()
    }

    /// Snapshot of all instant events recorded so far.
    pub fn events(&self) -> Vec<EventRecord> {
        self.timeline.lock().events.clone()
    }

    /// Snapshot of all counter samples recorded so far.
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        self.timeline.lock().counters.clone()
    }

    /// Latest value of each counter (including counters whose sample
    /// history was drained by [`Recorder::take_delta`]).
    pub fn counters(&self) -> HashMap<String, f64> {
        let tl = self.timeline.lock();
        let mut out = tl.counter_base.clone();
        for s in &tl.counters {
            out.insert(s.name.clone(), s.value);
        }
        out
    }

    /// Snapshot of all histograms.
    pub fn histograms(&self) -> HashMap<String, Histogram> {
        self.hists.lock().clone()
    }

    /// Drain everything recorded since the cursor's last export into a
    /// portable [`TelemetryDelta`]: closed spans, events and counter
    /// samples are *removed* (keeping a long-running process's memory
    /// bounded — final counter values are folded into a base so
    /// [`Recorder::counters`] still reports them), histograms are
    /// diffed against the cursor's previous snapshot. Still-open spans
    /// stay behind and export once they close. Deltas taken through one
    /// cursor are disjoint: every observation is exported exactly once.
    pub fn take_delta(&self, cursor: &mut ExportCursor) -> TelemetryDelta {
        let export_now_us = self.now_us();
        let (process_id, process_name) = self.process.lock().clone();
        let mut tl = self.timeline.lock();
        let mut spans = Vec::new();
        let mut kept = Vec::with_capacity(tl.stacks.values().map(Vec::len).sum());
        for s in tl.spans.drain(..) {
            if s.dur_us.is_some() {
                spans.push(s);
            } else {
                kept.push(s);
            }
        }
        tl.spans = kept;
        let events = std::mem::take(&mut tl.events);
        let counters = std::mem::take(&mut tl.counters);
        for s in &counters {
            tl.counter_base.insert(s.name.clone(), s.value);
        }
        drop(tl);

        let current = self.hists.lock().clone();
        let mut hists = Vec::new();
        for (name, h) in &current {
            let delta = match cursor.prev_hists.get(name) {
                Some(old) => Histogram::diff(h, old),
                None => h.clone(),
            };
            if delta.count() > 0 {
                hists.push((name.clone(), delta));
            }
        }
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        cursor.prev_hists = current;

        TelemetryDelta {
            process_id,
            process_name,
            wall_start_unix_us: self.wall_start_unix_us,
            export_now_us,
            spans,
            events,
            counters,
            hists,
        }
    }

    /// Merge telemetry from another process into this recorder.
    /// Histograms merge sample-exactly into the same-named local
    /// histograms; spans/events/counters are kept as a [`RemotePart`]
    /// under the delta's process identity, timestamp-shifted by
    /// `offset_us` at export (see [`estimate_offset_us`]). The offset of
    /// the *first* import from a given process id is pinned and reused
    /// for its later deltas, keeping merged timestamps monotone.
    pub fn import_remote(&self, delta: TelemetryDelta, offset_us: i64) {
        {
            let mut hists = self.hists.lock();
            for (name, h) in &delta.hists {
                hists.entry(name.clone()).or_default().merge(h);
            }
        }
        let mut remote = self.remote.lock();
        match remote.iter_mut().find(|p| p.process_id == delta.process_id) {
            Some(part) => {
                part.spans.extend(delta.spans);
                part.events.extend(delta.events);
                part.counters.extend(delta.counters);
            }
            None => remote.push(RemotePart {
                process_id: delta.process_id,
                process_name: delta.process_name,
                offset_us,
                spans: delta.spans,
                events: delta.events,
                counters: delta.counters,
            }),
        }
    }

    /// Telemetry imported from other processes, for merged export.
    pub fn remote_parts(&self) -> Vec<RemotePart> {
        self.remote.lock().clone()
    }

    fn open_span(self: &Arc<Self>, track: Track, name: String) -> u32 {
        let start_us = self.now_us();
        let mut tl = self.timeline.lock();
        let id = tl.next_id;
        tl.next_id += 1;
        let stack = tl.stacks.entry(track).or_default();
        let parent = stack.last().copied();
        stack.push(id);
        tl.spans.push(SpanRecord {
            id,
            parent,
            track,
            name,
            start_us,
            dur_us: None,
            args: Vec::new(),
        });
        id
    }

    fn close_span(&self, id: u32, args: Vec<(&'static str, ArgValue)>) {
        let end = self.now_us();
        let mut tl = self.timeline.lock();
        if let Some(span) = tl.spans.iter_mut().rev().find(|s| s.id == id) {
            span.dur_us = Some(end.saturating_sub(span.start_us));
            span.args = args;
            let track = span.track;
            if let Some(stack) = tl.stacks.get_mut(&track) {
                if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                    stack.remove(pos);
                }
            }
        }
    }
}

/// RAII handle for an open span. The span closes (and records its
/// duration) when the guard drops; attach attributes with
/// [`SpanGuard::with`] or [`SpanGuard::arg`].
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    rec: Option<(Arc<Recorder>, u32)>,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    /// Attach an attribute, builder-style.
    pub fn with(mut self, key: &'static str, value: impl Into<ArgValue>) -> SpanGuard {
        self.arg(key, value);
        self
    }

    /// Attach an attribute to the open span (e.g. a row count known
    /// only at the end).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.rec.is_some() {
            self.args.push((key, value.into()));
        }
    }

    /// Close the span now instead of at end of scope.
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((rec, id)) = self.rec.take() {
            rec.close_span(id, std::mem::take(&mut self.args));
        }
    }
}

/// A cheap, cloneable handle to a [`Recorder`] — or to nothing.
/// Every instrumented component holds one; the disabled handle makes
/// all recording calls near-free (a null check).
#[derive(Clone, Default)]
pub struct Obs {
    rec: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.rec.is_some() {
            "Obs(recording)"
        } else {
            "Obs(disabled)"
        })
    }
}

impl Obs {
    /// The no-op handle. All calls return immediately.
    pub fn disabled() -> Obs {
        Obs { rec: None }
    }

    /// A fresh recording handle backed by a new [`Recorder`].
    pub fn recording() -> Obs {
        Obs {
            rec: Some(Arc::new(Recorder::new())),
        }
    }

    /// Whether a recorder is attached.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// The backing recorder, for export.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.rec.as_ref()
    }

    /// Open a span on `track`. Returns a no-op guard when disabled.
    pub fn span(&self, track: Track, name: impl Into<String>) -> SpanGuard {
        match &self.rec {
            None => SpanGuard {
                rec: None,
                args: Vec::new(),
            },
            Some(rec) => {
                let id = rec.open_span(track, name.into());
                SpanGuard {
                    rec: Some((Arc::clone(rec), id)),
                    args: Vec::new(),
                }
            }
        }
    }

    /// Record an instant event with attributes.
    pub fn event(
        &self,
        track: Track,
        name: impl Into<String>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(rec) = &self.rec {
            let ts_us = rec.now_us();
            rec.timeline.lock().events.push(EventRecord {
                track,
                name: name.into(),
                ts_us,
                args,
            });
        }
    }

    /// Set a counter's current value (gauge semantics; the full sample
    /// history is kept for the trace's counter track).
    pub fn counter(&self, name: &str, value: f64) {
        if let Some(rec) = &self.rec {
            let ts_us = rec.now_us();
            rec.timeline.lock().counters.push(CounterSample {
                name: name.to_string(),
                ts_us,
                value,
            });
        }
    }

    /// Add `delta` to a counter (starting from 0).
    pub fn counter_add(&self, name: &str, delta: f64) {
        if let Some(rec) = &self.rec {
            let ts_us = rec.now_us();
            let mut tl = rec.timeline.lock();
            let prev = tl
                .counters
                .iter()
                .rev()
                .find(|s| s.name == name)
                .map(|s| s.value)
                .or_else(|| tl.counter_base.get(name).copied())
                .unwrap_or(0.0);
            tl.counters.push(CounterSample {
                name: name.to_string(),
                ts_us,
                value: prev + delta,
            });
        }
    }

    /// Feed one observation into a named histogram.
    pub fn hist(&self, name: &str, value: f64) {
        if let Some(rec) = &self.rec {
            rec.hists
                .lock()
                .entry(name.to_string())
                .or_default()
                .record(value);
        }
    }
}

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Arc<Recorder>> = OnceLock::new();

/// Install (or fetch) the process-global recorder and return a handle
/// to it. Subsequent [`global`] calls return recording handles.
pub fn install_global() -> Obs {
    let rec = GLOBAL.get_or_init(|| Arc::new(Recorder::new()));
    GLOBAL_ENABLED.store(true, Ordering::Release);
    Obs {
        rec: Some(Arc::clone(rec)),
    }
}

/// The global handle: disabled until [`install_global`] runs. The
/// disabled path is one relaxed atomic load.
pub fn global() -> Obs {
    if !GLOBAL_ENABLED.load(Ordering::Acquire) {
        return Obs::disabled();
    }
    Obs {
        rec: GLOBAL.get().map(Arc::clone),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_per_track() {
        let obs = Obs::recording();
        {
            let _q = obs.span(Track::Coordinator, "query");
            {
                let _s = obs.span(Track::Coordinator, "stage md1");
                let _other = obs.span(Track::Site(0), "task"); // separate track
            }
            let _s2 = obs.span(Track::Coordinator, "stage md2");
        }
        let spans = obs.recorder().unwrap().spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let query = by_name("query");
        assert_eq!(query.parent, None);
        assert_eq!(by_name("stage md1").parent, Some(query.id));
        assert_eq!(by_name("stage md2").parent, Some(query.id));
        assert_eq!(by_name("task").parent, None, "other track doesn't nest");
        assert!(spans.iter().all(|s| s.dur_us.is_some()), "all closed");
    }

    #[test]
    fn span_args_are_recorded() {
        let obs = Obs::recording();
        {
            let mut g = obs
                .span(Track::Site(2), "ship")
                .with("rows", 42u64)
                .with("kind", "base");
            g.arg("bytes", 1024u64);
        }
        let spans = obs.recorder().unwrap().spans();
        assert_eq!(spans[0].args.len(), 3);
        assert_eq!(spans[0].args[0], ("rows", ArgValue::UInt(42)));
        assert_eq!(spans[0].args[2], ("bytes", ArgValue::UInt(1024)));
    }

    #[test]
    fn concurrent_writers_are_safe() {
        let obs = Obs::recording();
        let handles: Vec<_> = (0..8)
            .map(|site| {
                let obs = obs.clone();
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let _g = obs
                            .span(Track::Site(site), format!("task r{round}"))
                            .with("round", round as u64);
                        obs.event(Track::Site(site), "tick", vec![]);
                        obs.counter_add("msgs", 1.0);
                        obs.hist("busy_s", 0.001 * (site + 1) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rec = obs.recorder().unwrap();
        assert_eq!(rec.spans().len(), 8 * 50);
        assert!(rec.spans().iter().all(|s| s.dur_us.is_some()));
        assert_eq!(rec.events().len(), 8 * 50);
        assert_eq!(rec.counters()["msgs"], 400.0);
        let hists = rec.histograms();
        assert_eq!(hists["busy_s"].count(), 400);
        // Per-track nesting stayed consistent: each site's spans are
        // all top-level (opened and closed sequentially per thread).
        assert!(rec.spans().iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn histogram_percentiles_are_close() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // uniform 0.001..=1.0
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.5005).abs() < 1e-9);
        let p50 = h.percentile(50.0);
        assert!((0.40..0.62).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(99.0);
        assert!((0.80..=1.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(100.0), 1.0);
        assert!(h.min() >= 0.001 && h.max() <= 1.0);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_recording());
        let g = obs.span(Track::Coordinator, "query").with("rows", 1u64);
        drop(g);
        obs.event(Track::Net, "msg", vec![("bytes", 8u64.into())]);
        obs.counter("x", 1.0);
        obs.hist("h", 1.0);
        assert!(obs.recorder().is_none());
    }

    #[test]
    fn global_is_disabled_until_installed() {
        // Note: runs in the same process as other tests, so only check
        // the install transition, not the initial state.
        let before = global();
        let installed = install_global();
        assert!(installed.is_recording());
        let after = global();
        assert!(after.is_recording());
        drop(before);
    }
}
