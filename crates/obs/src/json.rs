//! Hand-rolled JSON tree, writer, and minimal parser.
//!
//! The workspace has no serde; trace and metrics files are emitted
//! through this module instead. The writer produces compact, valid JSON
//! (objects keep insertion order, strings are escaped per RFC 8259,
//! non-finite floats become `null`). The parser implements just enough
//! of the grammar to round-trip the writer's output — it backs the
//! golden tests that pin the Chrome-trace export to well-formed JSON.

use std::fmt::Write as _;

/// A JSON value. Integers and floats are kept apart so `u64` counters
/// and timestamps serialize exactly rather than through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, serialized without a decimal point.
    Int(i64),
    /// An unsigned integer (counters, timestamps), serialized exactly.
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string, escaped per RFC 8259.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64` (ints, uints and floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Serialize compactly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the serialized form to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{f}` never prints exponents for f64 Display and
                    // always round-trips, so it stays valid JSON.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset where parsing failed.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document (must consume the whole input).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_json() {
        let v = Json::obj(vec![
            ("name", Json::from("q\"1\"\n")),
            ("n", Json::UInt(18_446_744_073_709_551_615)),
            ("neg", Json::Int(-3)),
            ("pi", Json::Float(0.25)),
            ("ok", Json::Bool(true)),
            ("nil", Json::Null),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"name":"q\"1\"\n","n":18446744073709551615,"neg":-3,"pi":0.25,"ok":true,"nil":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_json(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn round_trips_through_parser() {
        let v = Json::obj(vec![
            ("s", Json::from("tab\there \\ \"quoted\" \u{1} café")),
            ("big", Json::UInt(u64::MAX)),
            ("also_big", Json::Int(1 << 62)),
            ("f", Json::Float(1.5e-3)),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![("k", Json::Null)]), Json::Bool(false)]),
            ),
        ]);
        let text = v.to_json();
        let back = parse(&text).expect("parses");
        // Floats may come back as Float even when written from Int, but
        // the writer emits ints for ints, so exact equality holds here.
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_rejects_garbage() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"x\" ] } ").expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_navigate_documents() {
        let v = parse(r#"{"m":{"count":7},"arr":[true]}"#).unwrap();
        assert_eq!(v.get("m").unwrap().get("count").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("arr").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
    }
}
