//! Trace and metrics export.
//!
//! [`chrome_trace`] renders a [`Recorder`] into Chrome trace-event
//! JSON (the `{"traceEvents": [...]}` object form), which loads in
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`. Each
//! [`Track`] becomes one named thread; spans are complete (`"X"`)
//! events, instant events are `"i"`, counter histories are `"C"`.
//!
//! [`metrics_snapshot`] renders the same recorder as a flat metrics
//! document: final counter values plus count/sum/min/max/mean and
//! p50/p90/p99 for every histogram.

use crate::json::Json;
use crate::{Recorder, Track};

const PID: u64 = 1;

fn args_json(args: &[(&'static str, crate::ArgValue)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| (k.to_string(), v.to_json()))
            .collect(),
    )
}

/// Render the recorder as a Chrome trace-event document.
pub fn chrome_trace(rec: &Recorder) -> Json {
    let spans = rec.spans();
    let events = rec.events();
    let counters = rec.counter_samples();
    let now = rec.now_us();

    let mut out: Vec<Json> = Vec::with_capacity(spans.len() + events.len() + counters.len() + 8);

    out.push(Json::obj(vec![
        ("ph", Json::from("M")),
        ("pid", Json::UInt(PID)),
        ("name", Json::from("process_name")),
        (
            "args",
            Json::obj(vec![("name", Json::from("skalla"))]),
        ),
    ]));

    // One thread-name metadata record per track that appears.
    let mut tracks: Vec<Track> = spans
        .iter()
        .map(|s| s.track)
        .chain(events.iter().map(|e| e.track))
        .collect();
    tracks.sort_by_key(|t| t.tid());
    tracks.dedup();
    for t in tracks {
        out.push(Json::obj(vec![
            ("ph", Json::from("M")),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(t.tid())),
            ("name", Json::from("thread_name")),
            ("args", Json::obj(vec![("name", Json::from(t.label()))])),
        ]));
    }

    for s in &spans {
        // A span still open at export time is drawn up to "now".
        let dur = s.dur_us.unwrap_or_else(|| now.saturating_sub(s.start_us));
        out.push(Json::obj(vec![
            ("ph", Json::from("X")),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(s.track.tid())),
            ("ts", Json::UInt(s.start_us)),
            ("dur", Json::UInt(dur)),
            ("name", Json::from(s.name.as_str())),
            ("cat", Json::from(s.track.category())),
            ("args", args_json(&s.args)),
        ]));
    }

    for e in &events {
        out.push(Json::obj(vec![
            ("ph", Json::from("i")),
            ("s", Json::from("t")),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(e.track.tid())),
            ("ts", Json::UInt(e.ts_us)),
            ("name", Json::from(e.name.as_str())),
            ("cat", Json::from(e.track.category())),
            ("args", args_json(&e.args)),
        ]));
    }

    for c in &counters {
        out.push(Json::obj(vec![
            ("ph", Json::from("C")),
            ("pid", Json::UInt(PID)),
            ("ts", Json::UInt(c.ts_us)),
            ("name", Json::from(c.name.as_str())),
            (
                "args",
                Json::obj(vec![("value", Json::Float(c.value))]),
            ),
        ]));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj(vec![(
                "wall_start_unix_us",
                Json::UInt(rec.wall_start_unix_us()),
            )]),
        ),
    ])
}

/// Serialize [`chrome_trace`] to a JSON string.
pub fn write_chrome_trace(rec: &Recorder) -> String {
    chrome_trace(rec).to_json()
}

/// Render final counter values and histogram summaries.
pub fn metrics_snapshot(rec: &Recorder) -> Json {
    let mut counters: Vec<(String, Json)> = rec
        .counters()
        .into_iter()
        .map(|(k, v)| (k, Json::Float(v)))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let mut hists: Vec<(String, Json)> = rec
        .histograms()
        .into_iter()
        .map(|(k, h)| {
            (
                k,
                Json::obj(vec![
                    ("count", Json::UInt(h.count())),
                    ("sum", Json::Float(h.sum())),
                    ("min", Json::Float(h.min())),
                    ("max", Json::Float(h.max())),
                    ("mean", Json::Float(h.mean())),
                    ("p50", Json::Float(h.percentile(50.0))),
                    ("p90", Json::Float(h.percentile(90.0))),
                    ("p99", Json::Float(h.percentile(99.0))),
                ]),
            )
        })
        .collect();
    hists.sort_by(|a, b| a.0.cmp(&b.0));

    Json::obj(vec![
        ("wall_start_unix_us", Json::UInt(rec.wall_start_unix_us())),
        ("elapsed_us", Json::UInt(rec.now_us())),
        ("counters", Json::Obj(counters)),
        ("histograms", Json::Obj(hists)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::{Obs, Track};

    fn sample_obs() -> Obs {
        let obs = Obs::recording();
        {
            let _q = obs.span(Track::Coordinator, "query").with("stages", 2u64);
            {
                let _s = obs.span(Track::Coordinator, "stage md1");
                let _t = obs
                    .span(Track::Site(0), "task md1")
                    .with("rows_up", 128u64);
                obs.event(
                    Track::Net,
                    "send",
                    vec![("bytes", 512u64.into()), ("site", 0usize.into())],
                );
                obs.counter("bytes_total", 512.0);
            }
            obs.hist("site_busy_s", 0.25);
        }
        obs
    }

    /// Golden test: the Chrome trace is well-formed JSON and carries
    /// the expected event structure (round-trips through the parser).
    #[test]
    fn chrome_trace_round_trips() {
        let obs = sample_obs();
        let text = write_chrome_trace(obs.recorder().unwrap());
        let doc = parse(&text).expect("trace is valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

        let of_ph = |ph: &str| -> Vec<&Json> {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                .collect()
        };
        // process_name + 3 thread names (coordinator, net, site 0).
        assert_eq!(of_ph("M").len(), 4);
        let spans = of_ph("X");
        assert_eq!(spans.len(), 3);
        for s in &spans {
            assert!(s.get("ts").unwrap().as_u64().is_some());
            assert!(s.get("dur").unwrap().as_u64().is_some());
            assert!(s.get("name").unwrap().as_str().is_some());
        }
        let task = spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("task md1"))
            .unwrap();
        assert_eq!(
            task.get("args").unwrap().get("rows_up").unwrap().as_u64(),
            Some(128)
        );
        assert_eq!(task.get("tid").unwrap().as_u64(), Some(16));
        let instants = of_ph("i");
        assert_eq!(instants.len(), 1);
        assert_eq!(
            instants[0].get("args").unwrap().get("bytes").unwrap().as_u64(),
            Some(512)
        );
        assert_eq!(of_ph("C").len(), 1);
    }

    #[test]
    fn metrics_snapshot_summarizes() {
        let obs = sample_obs();
        let text = metrics_snapshot(obs.recorder().unwrap()).to_json();
        let doc = parse(&text).expect("snapshot is valid JSON");
        assert_eq!(
            doc.get("counters").unwrap().get("bytes_total").unwrap().as_f64(),
            Some(512.0)
        );
        let h = doc.get("histograms").unwrap().get("site_busy_s").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("min").unwrap().as_f64(), Some(0.25));
        assert_eq!(h.get("max").unwrap().as_f64(), Some(0.25));
        let p50 = h.get("p50").unwrap().as_f64().unwrap();
        assert_eq!(p50, 0.25, "single observation clamps to min/max");
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let obs = Obs::recording();
        let doc = parse(&write_chrome_trace(obs.recorder().unwrap())).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
        let snap = parse(&metrics_snapshot(obs.recorder().unwrap()).to_json()).unwrap();
        assert_eq!(snap.get("counters").unwrap(), &Json::Obj(vec![]));
    }
}
