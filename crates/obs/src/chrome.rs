//! Trace and metrics export.
//!
//! [`chrome_trace`] renders a [`Recorder`] into Chrome trace-event
//! JSON (the `{"traceEvents": [...]}` object form), which loads in
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`. Each
//! [`Track`] becomes one named thread; spans are complete (`"X"`)
//! events, instant events are `"i"`, counter histories are `"C"`.
//!
//! [`metrics_snapshot`] renders the same recorder as a flat metrics
//! document: final counter values plus count/sum/min/max/mean and
//! p50/p90/p99 for every histogram.

use crate::json::Json;
use crate::{CounterSample, EventRecord, Recorder, SpanRecord, Track};

fn args_json(args: &[(&'static str, crate::ArgValue)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| (k.to_string(), v.to_json()))
            .collect(),
    )
}

/// Emit the `process_name` / `thread_name` metadata records and the
/// span/event/counter records for one process lane. `shift` maps the
/// part's own timestamps onto the merged timeline; `now` bounds any
/// still-open span.
#[allow(clippy::too_many_arguments)]
fn emit_process(
    out: &mut Vec<Json>,
    pid: u64,
    process_name: &str,
    spans: &[SpanRecord],
    events: &[EventRecord],
    counters: &[CounterSample],
    now: Option<u64>,
    shift: impl Fn(u64) -> u64,
) {
    out.push(Json::obj(vec![
        ("ph", Json::from("M")),
        ("pid", Json::UInt(pid)),
        ("name", Json::from("process_name")),
        ("args", Json::obj(vec![("name", Json::from(process_name))])),
    ]));

    // One thread-name metadata record per track that appears.
    let mut tracks: Vec<Track> = spans
        .iter()
        .map(|s| s.track)
        .chain(events.iter().map(|e| e.track))
        .collect();
    tracks.sort_by_key(|t| t.tid());
    tracks.dedup();
    for t in tracks {
        out.push(Json::obj(vec![
            ("ph", Json::from("M")),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(t.tid())),
            ("name", Json::from("thread_name")),
            ("args", Json::obj(vec![("name", Json::from(t.label()))])),
        ]));
    }

    for s in spans {
        // A span still open at export time is drawn up to "now" (remote
        // parts only ship closed spans, so `now` is None there).
        let dur = s.dur_us.unwrap_or_else(|| {
            now.unwrap_or(s.start_us).saturating_sub(s.start_us)
        });
        out.push(Json::obj(vec![
            ("ph", Json::from("X")),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(s.track.tid())),
            ("ts", Json::UInt(shift(s.start_us))),
            ("dur", Json::UInt(dur)),
            ("name", Json::from(s.name.as_str())),
            ("cat", Json::from(s.track.category())),
            ("args", args_json(&s.args)),
        ]));
    }

    for e in events {
        out.push(Json::obj(vec![
            ("ph", Json::from("i")),
            ("s", Json::from("t")),
            ("pid", Json::UInt(pid)),
            ("tid", Json::UInt(e.track.tid())),
            ("ts", Json::UInt(shift(e.ts_us))),
            ("name", Json::from(e.name.as_str())),
            ("cat", Json::from(e.track.category())),
            ("args", args_json(&e.args)),
        ]));
    }

    for c in counters {
        out.push(Json::obj(vec![
            ("ph", Json::from("C")),
            ("pid", Json::UInt(pid)),
            ("ts", Json::UInt(shift(c.ts_us))),
            ("name", Json::from(c.name.as_str())),
            ("args", Json::obj(vec![("value", Json::Float(c.value))])),
        ]));
    }
}

/// Render the recorder as a Chrome trace-event document. Telemetry
/// imported from other processes ([`Recorder::import_remote`]) renders
/// as additional pid lanes with clock-aligned timestamps — one merged
/// trace spanning the whole cluster.
pub fn chrome_trace(rec: &Recorder) -> Json {
    let spans = rec.spans();
    let events = rec.events();
    let counters = rec.counter_samples();
    let remote = rec.remote_parts();
    let now = rec.now_us();

    let mut out: Vec<Json> = Vec::with_capacity(spans.len() + events.len() + counters.len() + 8);
    emit_process(
        &mut out,
        rec.process_id() as u64,
        &rec.process_name(),
        &spans,
        &events,
        &counters,
        Some(now),
        |ts| ts,
    );
    for part in &remote {
        emit_process(
            &mut out,
            part.process_id as u64,
            &part.process_name,
            &part.spans,
            &part.events,
            &part.counters,
            None,
            |ts| part.shift_us(ts),
        );
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj(vec![(
                "wall_start_unix_us",
                Json::UInt(rec.wall_start_unix_us()),
            )]),
        ),
    ])
}

/// Serialize [`chrome_trace`] to a JSON string.
pub fn write_chrome_trace(rec: &Recorder) -> String {
    chrome_trace(rec).to_json()
}

/// Render final counter values and histogram summaries. Histograms
/// include their full (sparsely encoded) bucket arrays so snapshots
/// from different processes merge and diff without precision loss;
/// counters imported from remote processes appear prefixed with the
/// originating process name (`site-0/net.bytes_up`).
pub fn metrics_snapshot(rec: &Recorder) -> Json {
    let mut counters: Vec<(String, Json)> = rec
        .counters()
        .into_iter()
        .map(|(k, v)| (k, Json::Float(v)))
        .collect();
    for part in rec.remote_parts() {
        // Last sample per remote counter name wins (gauge semantics).
        let mut finals: Vec<(String, f64)> = Vec::new();
        for c in &part.counters {
            match finals.iter_mut().find(|(name, _)| *name == c.name) {
                Some((_, v)) => *v = c.value,
                None => finals.push((c.name.clone(), c.value)),
            }
        }
        for (name, v) in finals {
            counters.push((format!("{}/{name}", part.process_name), Json::Float(v)));
        }
    }
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let mut hists: Vec<(String, Json)> = rec
        .histograms()
        .into_iter()
        .map(|(k, h)| {
            let buckets: Vec<Json> = h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(*c)]))
                .collect();
            (
                k,
                Json::obj(vec![
                    ("count", Json::UInt(h.count())),
                    ("sum", Json::Float(h.sum())),
                    ("min", Json::Float(h.min())),
                    ("max", Json::Float(h.max())),
                    ("mean", Json::Float(h.mean())),
                    ("p50", Json::Float(h.percentile(50.0))),
                    ("p90", Json::Float(h.percentile(90.0))),
                    ("p99", Json::Float(h.percentile(99.0))),
                    ("buckets", Json::Arr(buckets)),
                ]),
            )
        })
        .collect();
    hists.sort_by(|a, b| a.0.cmp(&b.0));

    Json::obj(vec![
        ("wall_start_unix_us", Json::UInt(rec.wall_start_unix_us())),
        ("elapsed_us", Json::UInt(rec.now_us())),
        ("counters", Json::Obj(counters)),
        ("histograms", Json::Obj(hists)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::{Obs, Track};

    fn sample_obs() -> Obs {
        let obs = Obs::recording();
        {
            let _q = obs.span(Track::Coordinator, "query").with("stages", 2u64);
            {
                let _s = obs.span(Track::Coordinator, "stage md1");
                let _t = obs
                    .span(Track::Site(0), "task md1")
                    .with("rows_up", 128u64);
                obs.event(
                    Track::Net,
                    "send",
                    vec![("bytes", 512u64.into()), ("site", 0usize.into())],
                );
                obs.counter("bytes_total", 512.0);
            }
            obs.hist("site_busy_s", 0.25);
        }
        obs
    }

    /// Golden test: the Chrome trace is well-formed JSON and carries
    /// the expected event structure (round-trips through the parser).
    #[test]
    fn chrome_trace_round_trips() {
        let obs = sample_obs();
        let text = write_chrome_trace(obs.recorder().unwrap());
        let doc = parse(&text).expect("trace is valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

        let of_ph = |ph: &str| -> Vec<&Json> {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                .collect()
        };
        // process_name + 3 thread names (coordinator, net, site 0).
        assert_eq!(of_ph("M").len(), 4);
        let spans = of_ph("X");
        assert_eq!(spans.len(), 3);
        for s in &spans {
            assert!(s.get("ts").unwrap().as_u64().is_some());
            assert!(s.get("dur").unwrap().as_u64().is_some());
            assert!(s.get("name").unwrap().as_str().is_some());
        }
        let task = spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("task md1"))
            .unwrap();
        assert_eq!(
            task.get("args").unwrap().get("rows_up").unwrap().as_u64(),
            Some(128)
        );
        assert_eq!(task.get("tid").unwrap().as_u64(), Some(16));
        let instants = of_ph("i");
        assert_eq!(instants.len(), 1);
        assert_eq!(
            instants[0].get("args").unwrap().get("bytes").unwrap().as_u64(),
            Some(512)
        );
        assert_eq!(of_ph("C").len(), 1);
    }

    #[test]
    fn metrics_snapshot_summarizes() {
        let obs = sample_obs();
        let text = metrics_snapshot(obs.recorder().unwrap()).to_json();
        let doc = parse(&text).expect("snapshot is valid JSON");
        assert_eq!(
            doc.get("counters").unwrap().get("bytes_total").unwrap().as_f64(),
            Some(512.0)
        );
        let h = doc.get("histograms").unwrap().get("site_busy_s").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("min").unwrap().as_f64(), Some(0.25));
        assert_eq!(h.get("max").unwrap().as_f64(), Some(0.25));
        let p50 = h.get("p50").unwrap().as_f64().unwrap();
        assert_eq!(p50, 0.25, "single observation clamps to min/max");
    }

    /// A recorder with imported remote telemetry renders each remote
    /// process as its own pid lane with clock-shifted timestamps.
    #[test]
    fn merged_trace_has_one_pid_lane_per_process() {
        let obs = sample_obs();
        let rec = obs.recorder().unwrap();
        rec.set_process(1, "coordinator");

        let site = Obs::recording();
        site.recorder().unwrap().set_process(2, "site-0");
        {
            let _t = site.span(Track::SiteQuery(0, 7), "task md1");
            site.counter_add("net.bytes_up", 64.0);
        }
        let delta = site
            .recorder()
            .unwrap()
            .take_delta(&mut crate::ExportCursor::default());
        rec.import_remote(delta, 1_000);

        let doc = parse(&write_chrome_trace(rec)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let pid_of = |e: &Json| e.get("pid").and_then(|p| p.as_u64()).unwrap();
        let procs: Vec<(u64, String)> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("process_name")
            })
            .map(|e| {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .unwrap()
                    .to_string();
                (pid_of(e), name)
            })
            .collect();
        assert_eq!(
            procs,
            vec![(1, "coordinator".to_string()), (2, "site-0".to_string())]
        );
        // The remote span landed on pid 2, timestamp-shifted by +1000.
        let remote_span = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X") && pid_of(e) == 2
            })
            .expect("remote span present");
        assert!(remote_span.get("ts").unwrap().as_u64().unwrap() >= 1_000);
        assert_eq!(
            remote_span.get("tid").unwrap().as_u64(),
            Some(Track::SiteQuery(0, 7).tid())
        );
        // Remote counters surface in the snapshot under a process prefix.
        let snap = metrics_snapshot(rec);
        assert_eq!(
            snap.get("counters")
                .unwrap()
                .get("site-0/net.bytes_up")
                .and_then(|v| v.as_f64()),
            Some(64.0)
        );
    }

    #[test]
    fn snapshot_histograms_carry_bucket_arrays() {
        let obs = sample_obs();
        let doc = parse(&metrics_snapshot(obs.recorder().unwrap()).to_json()).unwrap();
        let h = doc.get("histograms").unwrap().get("site_busy_s").unwrap();
        let buckets = h.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 1, "one sample, one occupied bucket");
        let pair = buckets[0].as_arr().unwrap();
        assert_eq!(pair[1].as_u64(), Some(1));
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let obs = Obs::recording();
        let doc = parse(&write_chrome_trace(obs.recorder().unwrap())).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
        let snap = parse(&metrics_snapshot(obs.recorder().unwrap()).to_json()).unwrap();
        assert_eq!(snap.get("counters").unwrap(), &Json::Obj(vec![]));
    }
}
