//! Hash indexes on key columns.
//!
//! The coordinator's base-result structure "is indexed on K, which allows us
//! to efficiently determine RNG(X, t, θ_K) for any tuple t in H" (paper
//! Sect. 3.2) — synchronization is O(|H|). The same structure powers the
//! hash fast path of the centralized GMDJ evaluator.

use crate::relation::Relation;
use crate::row::Row;
use crate::value::Value;
use std::collections::HashMap;

/// A multimap from key-column values to row positions.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    key_columns: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Build an index over `relation` keyed on the columns at
    /// `key_columns` (positional).
    pub fn build(relation: &Relation, key_columns: &[usize]) -> HashIndex {
        let mut map: HashMap<Vec<Value>, Vec<usize>> =
            HashMap::with_capacity(relation.len());
        for (pos, row) in relation.iter().enumerate() {
            map.entry(row.key(key_columns)).or_default().push(pos);
        }
        HashIndex {
            key_columns: key_columns.to_vec(),
            map,
        }
    }

    /// Build an index keyed on named columns.
    pub fn build_on(relation: &Relation, columns: &[&str]) -> crate::Result<HashIndex> {
        let idx = relation.schema().indexes_of(columns)?;
        Ok(HashIndex::build(relation, &idx))
    }

    /// The key column positions.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Row positions whose key equals `key`.
    pub fn get(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row positions matching the key extracted from `probe` at
    /// `probe_columns`.
    pub fn probe(&self, probe: &Row, probe_columns: &[usize]) -> &[usize] {
        self.map
            .get(&probe.key(probe_columns))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is over a unique key (every key → one row).
    pub fn is_unique(&self) -> bool {
        self.map.values().all(|v| v.len() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn rel() -> Relation {
        Relation::new(
            Schema::of(&[("k", DataType::Int), ("v", DataType::Str)]),
            vec![row![1i64, "a"], row![2i64, "b"], row![1i64, "c"]],
        )
        .unwrap()
    }

    #[test]
    fn build_and_probe() {
        let r = rel();
        let ix = HashIndex::build_on(&r, &["k"]).unwrap();
        assert_eq!(ix.get(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(ix.get(&[Value::Int(9)]), &[] as &[usize]);
        assert_eq!(ix.distinct_keys(), 2);
        assert!(!ix.is_unique());
    }

    #[test]
    fn probe_via_row() {
        let r = rel();
        let ix = HashIndex::build_on(&r, &["k"]).unwrap();
        let probe = row!["ignored", 2i64];
        assert_eq!(ix.probe(&probe, &[1]), &[1]);
    }

    #[test]
    fn unique_index() {
        let r = rel();
        let ix = HashIndex::build_on(&r, &["v"]).unwrap();
        assert!(ix.is_unique());
    }

    #[test]
    fn unknown_column_errors() {
        assert!(HashIndex::build_on(&rel(), &["zz"]).is_err());
    }
}
