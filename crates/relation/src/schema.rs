//! Relation schemas.
//!
//! A [`Schema`] is an ordered list of named, typed columns. Schemas are
//! wrapped in [`std::sync::Arc`] by [`crate::Relation`] so that projections
//! and shipped fragments share them cheaply.

use crate::error::{Error, Result};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// A single column: name and type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    name: String,
    data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field {
            name: name.into(),
            data_type,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }
}

/// An ordered list of fields. Column names are unique within a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

/// A shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields, checking name uniqueness.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name() == f.name()) {
                return Err(Error::DuplicateColumn(f.name().to_string()));
            }
        }
        Ok(Schema { fields })
    }

    /// Convenience constructor from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names; intended for statically-known
    /// schemas in tests and generators.
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema has unique column names")
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name()).collect()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name() == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Indexes for a list of column names.
    pub fn indexes_of(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// Whether a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name() == name)
    }

    /// A new schema consisting of the columns at `indexes`, in that order.
    pub fn project(&self, indexes: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indexes.len());
        for &i in indexes {
            let f = self
                .fields
                .get(i)
                .ok_or_else(|| Error::UnknownColumn(format!("#{i}")))?;
            fields.push(f.clone());
        }
        Schema::new(fields)
    }

    /// A new schema with `extra` fields appended.
    pub fn extend(&self, extra: &[Field]) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.extend_from_slice(extra);
        Schema::new(fields)
    }

    /// Approximate serialized size of the schema itself (codec accounting).
    pub fn encoded_size(&self) -> usize {
        4 + self
            .fields
            .iter()
            .map(|f| 4 + f.name().len() + 1)
            .sum::<usize>()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name(), field.data_type())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_column_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert!(matches!(err, Error::DuplicateColumn(c) if c == "a"));
    }

    #[test]
    fn index_lookup() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("c").is_err());
        assert_eq!(s.indexes_of(&["b", "a"]).unwrap(), vec![1, 0]);
        assert!(s.contains("a"));
        assert!(!s.contains("z"));
    }

    #[test]
    fn project_and_extend() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.column_names(), ["b"]);
        let e = s.extend(&[Field::new("c", DataType::Double)]).unwrap();
        assert_eq!(e.column_names(), ["a", "b", "c"]);
        assert!(s.extend(&[Field::new("a", DataType::Int)]).is_err());
        assert!(s.project(&[5]).is_err());
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.to_string(), "(a INT, b STR)");
    }
}
