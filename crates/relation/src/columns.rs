//! Columnar physical layout for relations.
//!
//! A [`Columns`] store holds one typed vector per column — `Vec<i64>` for
//! integer columns, `Vec<f64>` for doubles, dictionary-encoded `u32` codes
//! plus an interned string table for strings, each with an optional
//! validity [`Bitmap`] marking non-`NULL` rows. Columns whose values do not
//! all share one type (legal: type conformance is checked lazily) fall back
//! to a [`Column::Mixed`] vector of [`Value`]s.
//!
//! The store is a *projection* of a relation's rows: [`Columns::from_rows`]
//! is lossless (`NaN` bit patterns, `-0.0`, `NULL`s and shared `Str`
//! handles all survive the round trip through [`Columns::to_rows`]), and
//! the wire codec keeps serializing through the row encoding — columnar
//! layout never changes what travels between sites.
//!
//! The vectorized GMDJ kernel consumes this layout: aggregate inner loops
//! run over `&[i64]` / `&[f64]` slices, and group-key probes compare
//! *canonical keys* ([`canon_i64`] / [`canon_f64`] plus dictionary codes)
//! instead of hashing [`Value`] enums row by row.

use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A fixed-length bitmap (one bit per row). Used as a validity mask:
/// a set bit means the row holds a real value, a clear bit means `NULL`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-clear bitmap of `len` bits.
    pub fn new(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }
}

/// One physical column: a typed vector with an optional validity bitmap
/// (`None` ⇒ no `NULL`s), or a [`Value`] vector for mixed-type columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// All non-`NULL` values are `Int`. `data[i]` is meaningful only where
    /// `valid` is set (or everywhere when `valid` is `None`).
    Int {
        /// The integer values (0 at `NULL` rows).
        data: Vec<i64>,
        /// Validity mask; `None` means no `NULL`s.
        valid: Option<Bitmap>,
    },
    /// All non-`NULL` values are `Double`. Bit patterns are preserved
    /// exactly (`NaN` payloads, `-0.0`).
    Double {
        /// The double values (0.0 at `NULL` rows).
        data: Vec<f64>,
        /// Validity mask; `None` means no `NULL`s.
        valid: Option<Bitmap>,
    },
    /// All non-`NULL` values are `Str`, dictionary-encoded: `codes[i]`
    /// indexes `dict`, which holds each distinct string once (first
    /// occurrence order). Rows sharing a string share one `Arc`.
    Str {
        /// Per-row dictionary codes (0 at `NULL` rows).
        codes: Vec<u32>,
        /// The interned string table.
        dict: Vec<Arc<str>>,
        /// Validity mask; `None` means no `NULL`s.
        valid: Option<Bitmap>,
    },
    /// Fallback for columns mixing value types: plain values.
    Mixed(Vec<Value>),
}

impl Column {
    /// The value at row `i` (clones are cheap: `Str` shares the interned
    /// `Arc`).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int { data, valid } => match valid {
                Some(v) if !v.get(i) => Value::Null,
                _ => Value::Int(data[i]),
            },
            Column::Double { data, valid } => match valid {
                Some(v) if !v.get(i) => Value::Null,
                _ => Value::Double(data[i]),
            },
            Column::Str { codes, dict, valid } => match valid {
                Some(v) if !v.get(i) => Value::Null,
                _ => Value::Str(Arc::clone(&dict[codes[i] as usize])),
            },
            Column::Mixed(vs) => vs[i].clone(),
        }
    }

    /// Is row `i` non-`NULL`?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Column::Int { valid, .. }
            | Column::Double { valid, .. }
            | Column::Str { valid, .. } => valid.as_ref().is_none_or(|v| v.get(i)),
            Column::Mixed(vs) => !vs[i].is_null(),
        }
    }

    /// The typed integer slice and validity, if this is an `Int` column.
    pub fn as_int(&self) -> Option<(&[i64], Option<&Bitmap>)> {
        match self {
            Column::Int { data, valid } => Some((data, valid.as_ref())),
            _ => None,
        }
    }

    /// The typed double slice and validity, if this is a `Double` column.
    pub fn as_double(&self) -> Option<(&[f64], Option<&Bitmap>)> {
        match self {
            Column::Double { data, valid } => Some((data, valid.as_ref())),
            _ => None,
        }
    }

    /// The dictionary codes, string table and validity, if this is a
    /// `Str` column.
    pub fn as_str_dict(&self) -> Option<StrDictView<'_>> {
        match self {
            Column::Str { codes, dict, valid } => Some((codes, dict, valid.as_ref())),
            _ => None,
        }
    }
}

/// Borrowed view of a dictionary-encoded string column: `(codes, dict,
/// validity)`.
pub type StrDictView<'a> = (&'a [u32], &'a [Arc<str>], Option<&'a Bitmap>);

/// The columnar store of one relation: `arity` typed columns of equal
/// length. Built lazily by [`crate::Relation::columns`] and cached.
#[derive(Debug, Clone, PartialEq)]
pub struct Columns {
    len: usize,
    cols: Vec<Column>,
}

/// What a column scan found, before committing to a representation.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Unknown,
    Int,
    Double,
    Str,
    Mixed,
}

impl Columns {
    /// Build the columnar store from row-major data.
    ///
    /// Column representations are chosen from the values actually present
    /// (the declared schema type only breaks ties for all-`NULL` columns):
    /// a column whose non-`NULL` values are all of one type gets the typed
    /// vector, anything else falls back to [`Column::Mixed`].
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> Columns {
        let arity = schema.len();
        let mut cols = Vec::with_capacity(arity);
        for c in 0..arity {
            // Pass 1: classify.
            let mut kind = Kind::Unknown;
            let mut nulls = false;
            for r in rows {
                let k = match r.get(c) {
                    Value::Null => {
                        nulls = true;
                        continue;
                    }
                    Value::Int(_) => Kind::Int,
                    Value::Double(_) => Kind::Double,
                    Value::Str(_) => Kind::Str,
                };
                if kind == Kind::Unknown {
                    kind = k;
                } else if kind != k {
                    kind = Kind::Mixed;
                    break;
                }
            }
            if kind == Kind::Unknown {
                // Empty or all-NULL: the declared type picks the layout.
                kind = match schema.field(c).data_type() {
                    DataType::Int => Kind::Int,
                    DataType::Double => Kind::Double,
                    DataType::Str => Kind::Str,
                };
            }
            // Pass 2: build.
            cols.push(build_column(kind, nulls, rows, c));
        }
        Columns {
            len: rows.len(),
            cols,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// The value at (`c`, `row`).
    #[inline]
    pub fn value(&self, c: usize, row: usize) -> Value {
        self.cols[c].value(row)
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.cols.iter().map(|c| c.value(i)).collect::<Vec<_>>())
    }

    /// Materialize all rows (the inverse of [`Columns::from_rows`]).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }
}

fn build_column(kind: Kind, nulls: bool, rows: &[Row], c: usize) -> Column {
    let n = rows.len();
    let mut valid = nulls.then(|| Bitmap::new(n));
    match kind {
        Kind::Unknown => unreachable!("classified above"),
        Kind::Mixed => Column::Mixed(rows.iter().map(|r| r.get(c).clone()).collect()),
        Kind::Int => {
            let mut data = vec![0i64; n];
            for (i, r) in rows.iter().enumerate() {
                if let Value::Int(v) = r.get(c) {
                    data[i] = *v;
                    if let Some(b) = &mut valid {
                        b.set(i);
                    }
                }
            }
            Column::Int { data, valid }
        }
        Kind::Double => {
            let mut data = vec![0f64; n];
            for (i, r) in rows.iter().enumerate() {
                if let Value::Double(v) = r.get(c) {
                    data[i] = *v;
                    if let Some(b) = &mut valid {
                        b.set(i);
                    }
                }
            }
            Column::Double { data, valid }
        }
        Kind::Str => {
            let mut codes = vec![0u32; n];
            let mut dict: Vec<Arc<str>> = Vec::new();
            let mut intern: HashMap<Arc<str>, u32> = HashMap::new();
            for (i, r) in rows.iter().enumerate() {
                if let Value::Str(s) = r.get(c) {
                    let code = *intern.entry(Arc::clone(s)).or_insert_with(|| {
                        dict.push(Arc::clone(s));
                        (dict.len() - 1) as u32
                    });
                    codes[i] = code;
                    if let Some(b) = &mut valid {
                        b.set(i);
                    }
                }
            }
            Column::Str { codes, dict, valid }
        }
    }
}

/// Canonical key of an integer value: the `(tag, word)` pair such that two
/// values compare [`Value`]-equal iff their canonical keys are equal
/// (strings are interned to codes by the caller; `NULL` is [`CANON_NULL`]).
/// Mirrors [`Value`]'s `Hash` normalization: integral doubles share the
/// integer tag, so `Int(2)` and `Double(2.0)` canonicalize identically.
#[inline]
pub fn canon_i64(i: i64) -> (u8, u64) {
    (1, i as u64)
}

/// Canonical key of a double value — see [`canon_i64`]. `NaN` collapses to
/// one bit pattern and `-0.0` to `+0.0` (integral, hence `Int(0)`).
#[inline]
pub fn canon_f64(d: f64) -> (u8, u64) {
    if d.fract() == 0.0 && d >= i64::MIN as f64 && d <= i64::MAX as f64 {
        (1, d as i64 as u64)
    } else if d.is_nan() {
        (2, f64::NAN.to_bits())
    } else {
        (2, d.to_bits())
    }
}

/// Canonical key of `NULL`. `NULL = NULL` holds under the total value
/// order, so equi-key probes must treat two `NULL` keys as a match.
pub const CANON_NULL: (u8, u64) = (0, 0);

/// The tag canonical string keys use; the word is a dictionary code.
pub const CANON_STR_TAG: u8 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;

    fn schema3() -> Schema {
        Schema::of(&[
            ("i", DataType::Int),
            ("d", DataType::Double),
            ("s", DataType::Str),
        ])
    }

    #[test]
    fn typed_columns_round_trip() {
        let rows = vec![
            row![1i64, 1.5, "a"],
            row![2i64, -0.0, "b"],
            row![3i64, f64::NAN, "a"],
        ];
        let cols = Columns::from_rows(&schema3(), &rows);
        assert!(matches!(cols.col(0), Column::Int { valid: None, .. }));
        assert!(matches!(cols.col(1), Column::Double { valid: None, .. }));
        let (codes, dict, _) = cols.col(2).as_str_dict().unwrap();
        assert_eq!(dict.len(), 2, "dictionary holds distinct strings once");
        assert_eq!(codes, &[0, 1, 0]);
        let back = cols.to_rows();
        assert_eq!(back.len(), 3);
        // Bit-exact doubles: -0.0 and NaN survive.
        match back[1].get(1) {
            Value::Double(d) => assert_eq!(d.to_bits(), (-0.0f64).to_bits()),
            other => panic!("unexpected {other:?}"),
        }
        match back[2].get(1) {
            Value::Double(d) => assert!(d.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
        // Interning: equal strings share one Arc.
        match (back[0].get(2), back[2].get(2)) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected strings"),
        }
    }

    #[test]
    fn nulls_get_validity_bitmaps() {
        let rows = vec![
            row![1i64, Value::Null, "a"],
            row![Value::Null, 2.0, Value::Null],
        ];
        let cols = Columns::from_rows(&schema3(), &rows);
        for c in 0..3 {
            assert!(cols.col(c).is_valid(0) != (c == 1));
        }
        assert_eq!(cols.value(0, 1), Value::Null);
        assert_eq!(cols.value(1, 0), Value::Null);
        assert_eq!(cols.to_rows(), rows);
    }

    #[test]
    fn mixed_column_falls_back() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows = vec![row![1i64], row!["s"], row![Value::Null]];
        let cols = Columns::from_rows(&schema, &rows);
        assert!(matches!(cols.col(0), Column::Mixed(_)));
        assert_eq!(cols.to_rows(), rows);
    }

    #[test]
    fn empty_and_all_null_use_schema_type() {
        let schema = schema3();
        let cols = Columns::from_rows(&schema, &[]);
        assert!(matches!(cols.col(0), Column::Int { .. }));
        assert!(matches!(cols.col(1), Column::Double { .. }));
        assert!(matches!(cols.col(2), Column::Str { .. }));
        let rows = vec![row![Value::Null, Value::Null, Value::Null]];
        let cols = Columns::from_rows(&schema, &rows);
        assert!(matches!(cols.col(2), Column::Str { .. }));
        assert_eq!(cols.to_rows(), rows);
    }

    #[test]
    fn bitmap_ops() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129) && !b.get(1));
        assert_eq!(b.count_ones(), 3);
        assert!(!b.all_set());
    }

    #[test]
    fn canonical_keys_mirror_value_equality() {
        // Int(2) == Double(2.0).
        assert_eq!(canon_i64(2), canon_f64(2.0));
        // -0.0 == 0.0 == Int(0).
        assert_eq!(canon_f64(-0.0), canon_i64(0));
        // NaN == NaN regardless of payload.
        assert_eq!(canon_f64(f64::NAN), canon_f64(-f64::NAN));
        // Non-integral doubles differ from every integer.
        assert_ne!(canon_f64(2.5).0, canon_i64(2).0);
        // Distinct values get distinct keys.
        assert_ne!(canon_i64(1), canon_i64(2));
        assert_ne!(canon_f64(1.25), canon_f64(1.5));
    }
}
