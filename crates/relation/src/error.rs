//! Error type shared across the workspace's relational layers.

use std::fmt;

/// Errors raised by the relational substrate and layers built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column name was not found in a schema.
    UnknownColumn(String),
    /// A schema was constructed with a duplicate column name.
    DuplicateColumn(String),
    /// Two relations or rows had incompatible schemas for an operation.
    SchemaMismatch(String),
    /// An expression was applied to values of an unsupported type.
    TypeError(String),
    /// Malformed bytes while decoding.
    Codec(String),
    /// Malformed text while parsing (CSV or query text).
    Parse(String),
    /// A planner or executor invariant was violated.
    Plan(String),
    /// A site or the coordinator failed during distributed execution.
    Execution(String),
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::DuplicateColumn(c) => write!(f, "duplicate column: {c}"),
            Error::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            Error::TypeError(m) => write!(f, "type error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::UnknownColumn("x".into()).to_string(),
            "unknown column: x"
        );
        assert_eq!(Error::Codec("bad tag".into()).to_string(), "codec error: bad tag");
    }
}
