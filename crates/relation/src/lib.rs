//! # skalla-relation — relational substrate
//!
//! The storage and expression layer underneath the Skalla distributed OLAP
//! engine: scalar [`Value`]s, [`Schema`]s, [`Row`]s, in-memory
//! [`Relation`]s with the usual operators plus a cached [`Columns`]
//! physical layout (typed vectors, dictionary-encoded strings, validity
//! bitmaps) for the vectorized kernel, two-sided scalar [`Expr`]essions
//! (GMDJ conditions θ(b, r)), interval/domain analysis for deriving the
//! paper's ¬ψ group-reduction filters, hash indexes, a binary codec with
//! exact byte accounting, and CSV import/export.
//!
//! The paper ran each warehouse site on AT&T's Daytona DBMS; this crate is
//! the equivalent local substrate, built from scratch.

#![warn(missing_docs)]

mod error;
mod value;

pub mod codec;
pub mod columns;
pub mod csv;
pub mod expr;
pub mod index;
pub mod interval;
pub mod parse;
pub mod relation;
pub mod row;
pub mod schema;

pub use columns::{Bitmap, Column, Columns, StrDictView};
pub use error::{Error, Result};
pub use expr::{ArithOp, BoundExpr, CmpOp, Expr, Side};
pub use index::HashIndex;
pub use parse::parse_expr;
pub use interval::{derive_base_constraint, BaseConstraint, Domain, DomainMap, Interval};
pub use relation::Relation;
pub use row::Row;
pub use schema::{Field, Schema, SchemaRef};
pub use value::{DataType, Value};
