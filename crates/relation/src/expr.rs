//! Scalar expressions over one or two rows.
//!
//! GMDJ conditions θ(b, r) relate a *base* tuple `b` (a tuple of the
//! base-values relation `B`) and a *detail* tuple `r` (a tuple of a fact
//! relation `R`). An [`Expr`] therefore references columns tagged with a
//! [`Side`]. Expressions that only reference [`Side::Base`] double as
//! ordinary single-row predicates (selections, derived ¬ψ filters).
//!
//! Expressions are built *by name* and then [bound](Expr::bind) against
//! concrete schemas, producing a [`BoundExpr`] with positional column
//! references for fast evaluation.
//!
//! ### Null semantics
//! Comparisons involving `NULL` evaluate to `NULL` (not truthy); arithmetic
//! involving `NULL` yields `NULL`; `AND`/`OR` treat `NULL` as false. This is
//! a pragmatic two-valued reading that matches how the paper's conditions
//! behave over non-null warehouse data.

use crate::columns::Columns;
use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// Which input row a column reference points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The base-values tuple `b` (written `b.col`).
    Base,
    /// The detail tuple `r` (written `r.col`).
    Detail,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Base => write!(f, "b"),
            Side::Detail => write!(f, "r"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Apply to two non-null values using the total value order.
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        let ord = a.cmp(b);
        match self {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division always produces a `Double`; division by zero yields `NULL`.
    Div,
    /// Integer modulo; non-integer operands or zero divisor yield `NULL`.
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        };
        write!(f, "{s}")
    }
}

/// Evaluate an arithmetic operator over two values.
pub fn eval_arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match op {
        ArithOp::Mod => match (a, b) {
            (Value::Int(x), Value::Int(y)) => {
                if *y == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(x.rem_euclid(*y)))
                }
            }
            _ => Ok(Value::Null),
        },
        ArithOp::Div => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                if y == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Double(x / y))
                }
            }
            _ => Err(Error::TypeError(format!("cannot divide {a} by {b}"))),
        },
        _ => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(match op {
                ArithOp::Add => x.wrapping_add(*y),
                ArithOp::Sub => x.wrapping_sub(*y),
                ArithOp::Mul => x.wrapping_mul(*y),
                _ => unreachable!(),
            })),
            _ => {
                let (x, y) = (
                    a.as_f64().ok_or_else(|| {
                        Error::TypeError(format!("non-numeric operand {a} for {op}"))
                    })?,
                    b.as_f64().ok_or_else(|| {
                        Error::TypeError(format!("non-numeric operand {b} for {op}"))
                    })?,
                );
                Ok(Value::Double(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    _ => unreachable!(),
                }))
            }
        },
    }
}

/// A scalar expression with named column references.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference `side.name`.
    Col(Side, String),
    /// Literal value.
    Lit(Value),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Membership in a literal set.
    InList(Box<Expr>, Vec<Value>),
    /// Constant true (the empty condition).
    True,
}

#[allow(clippy::should_implement_trait)] // fluent DSL methods, not operator impls
impl Expr {
    /// Base-side column `b.name`.
    pub fn bcol(name: impl Into<String>) -> Expr {
        Expr::Col(Side::Base, name.into())
    }

    /// Detail-side column `r.name`.
    pub fn dcol(name: impl Into<String>) -> Expr {
        Expr::Col(Side::Detail, name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self AND other`, simplifying `True` operands away.
    pub fn and(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::True, e) | (e, Expr::True) => e,
            (a, b) => Expr::And(Box::new(a), Box::new(b)),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IN (values…)`.
    pub fn in_list(self, values: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), values)
    }

    /// `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`.
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other`.
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(other))
    }

    /// Conjunction of a list of expressions (`True` if empty).
    pub fn conjunction(mut exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::True,
            1 => exprs.pop().expect("len checked"),
            _ => {
                let mut it = exprs.into_iter();
                let first = it.next().expect("non-empty");
                it.fold(first, Expr::and)
            }
        }
    }

    /// Disjunction of a list of expressions (`True` if empty — callers use
    /// this only for non-empty θ lists, where the paper's θ₁ ∨ … ∨ θₘ is
    /// well-defined).
    pub fn disjunction(mut exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::True,
            1 => exprs.pop().expect("len checked"),
            _ => {
                let mut it = exprs.into_iter();
                let first = it.next().expect("non-empty");
                it.fold(first, Expr::or)
            }
        }
    }

    /// Flatten the top-level `AND` tree into conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expr::True => {}
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Column names referenced on `side`.
    pub fn columns(&self, side: Side) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit_columns(&mut |s, name| {
            if s == side {
                out.insert(name.to_string());
            }
        });
        out
    }

    /// Whether the expression references any column on `side`.
    pub fn references_side(&self, side: Side) -> bool {
        let mut found = false;
        self.visit_columns(&mut |s, _| {
            if s == side {
                found = true;
            }
        });
        found
    }

    /// Visit all column references.
    pub fn visit_columns(&self, f: &mut impl FnMut(Side, &str)) {
        match self {
            Expr::Col(s, n) => f(*s, n),
            Expr::Lit(_) | Expr::True => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit_columns(f);
                b.visit_columns(f);
            }
            Expr::Not(a) => a.visit_columns(f),
            Expr::InList(a, _) => a.visit_columns(f),
        }
    }

    /// Rewrite every column reference with `f` (used when GMDJ outputs are
    /// renamed, and to retarget base-side expressions at shipped fragments).
    pub fn map_columns(&self, f: &mut impl FnMut(Side, &str) -> (Side, String)) -> Expr {
        match self {
            Expr::Col(s, n) => {
                let (s2, n2) = f(*s, n);
                Expr::Col(s2, n2)
            }
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::True => Expr::True,
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.map_columns(f)),
                Box::new(b.map_columns(f)),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.map_columns(f)),
                Box::new(b.map_columns(f)),
            ),
            Expr::And(a, b) => a.map_columns(f).and(b.map_columns(f)),
            Expr::Or(a, b) => a.map_columns(f).or(b.map_columns(f)),
            Expr::Not(a) => a.map_columns(f).not(),
            Expr::InList(a, vs) => Expr::InList(Box::new(a.map_columns(f)), vs.clone()),
        }
    }

    /// Infer the result type of this expression against schemas.
    ///
    /// Comparisons and boolean operators produce `Int` (0/1); division
    /// produces `Double`; other arithmetic produces `Int` only when both
    /// operands are `Int`.
    pub fn infer_type(&self, base: &Schema, detail: Option<&Schema>) -> Result<crate::DataType> {
        use crate::DataType;
        match self {
            Expr::Col(Side::Base, n) => Ok(base.field(base.index_of(n)?).data_type()),
            Expr::Col(Side::Detail, n) => {
                let d = detail.ok_or_else(|| {
                    Error::Plan(format!("detail column r.{n} in a single-row context"))
                })?;
                Ok(d.field(d.index_of(n)?).data_type())
            }
            Expr::Lit(v) => Ok(v.data_type().unwrap_or(DataType::Int)),
            Expr::True | Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(_)
            | Expr::InList(..) => Ok(DataType::Int),
            Expr::Arith(op, a, b) => match op {
                ArithOp::Div => Ok(DataType::Double),
                ArithOp::Mod => Ok(DataType::Int),
                _ => {
                    let (ta, tb) = (a.infer_type(base, detail)?, b.infer_type(base, detail)?);
                    if ta == DataType::Int && tb == DataType::Int {
                        Ok(DataType::Int)
                    } else {
                        Ok(DataType::Double)
                    }
                }
            },
        }
    }

    /// Bind against schemas: `base` resolves `b.*` references, `detail`
    /// resolves `r.*` references. Pass `None` for `detail` when binding a
    /// single-row (base-only) predicate.
    pub fn bind(&self, base: &Schema, detail: Option<&Schema>) -> Result<BoundExpr> {
        let b = match self {
            Expr::Col(Side::Base, n) => BoundExpr::Col(Side::Base, base.index_of(n)?),
            Expr::Col(Side::Detail, n) => {
                let d = detail.ok_or_else(|| {
                    Error::Plan(format!("detail column r.{n} in a single-row context"))
                })?;
                BoundExpr::Col(Side::Detail, d.index_of(n)?)
            }
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::True => BoundExpr::Lit(Value::Int(1)),
            Expr::Cmp(op, a, c) => BoundExpr::Cmp(
                *op,
                Box::new(a.bind(base, detail)?),
                Box::new(c.bind(base, detail)?),
            ),
            Expr::Arith(op, a, c) => BoundExpr::Arith(
                *op,
                Box::new(a.bind(base, detail)?),
                Box::new(c.bind(base, detail)?),
            ),
            Expr::And(a, c) => BoundExpr::And(
                Box::new(a.bind(base, detail)?),
                Box::new(c.bind(base, detail)?),
            ),
            Expr::Or(a, c) => BoundExpr::Or(
                Box::new(a.bind(base, detail)?),
                Box::new(c.bind(base, detail)?),
            ),
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind(base, detail)?)),
            Expr::InList(a, vs) => {
                // Sort so evaluation can binary-search: IN lists derived
                // from site value-set domains can hold thousands of values.
                let mut sorted = vs.clone();
                sorted.sort();
                BoundExpr::InList(Box::new(a.bind(base, detail)?), sorted.into())
            }
        };
        Ok(b)
    }
}

/// Render a literal so that [`crate::parse_expr`] reads it back
/// (strings quoted with `''` escaping).
fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        other => write!(f, "{other}"),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(s, n) => write!(f, "{s}.{n}"),
            Expr::Lit(v) => fmt_literal(v, f),
            Expr::True => write!(f, "TRUE"),
            Expr::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT ({a})"),
            Expr::InList(a, vs) => {
                write!(f, "{a} IN (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    fmt_literal(v, f)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An [`Expr`] with column references resolved to positions.
///
/// Variants mirror [`Expr`] one-for-one.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum BoundExpr {
    Col(Side, usize),
    Lit(Value),
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    Arith(ArithOp, Box<BoundExpr>, Box<BoundExpr>),
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
    InList(Box<BoundExpr>, Box<[Value]>),
}

impl BoundExpr {
    /// Evaluate over a base row and a detail row.
    pub fn eval(&self, base: &Row, detail: &Row) -> Result<Value> {
        self.eval_inner(base, Some(detail))
    }

    /// Evaluate a base-only predicate over a single row.
    pub fn eval_row(&self, base: &Row) -> Result<Value> {
        self.eval_inner(base, None)
    }

    /// Evaluate over a base row and row `at` of a columnar detail store —
    /// the columnar kernel's equivalent of [`BoundExpr::eval`], fetching
    /// detail values from typed columns instead of a materialized [`Row`].
    pub fn eval_cols(&self, base: &Row, detail: &Columns, at: usize) -> Result<Value> {
        match self {
            BoundExpr::Col(Side::Base, i) => Ok(base.get(*i).clone()),
            BoundExpr::Col(Side::Detail, i) => Ok(detail.value(*i, at)),
            BoundExpr::Lit(v) => Ok(v.clone()),
            BoundExpr::Cmp(op, a, b) => {
                let (x, y) = (a.eval_cols(base, detail, at)?, b.eval_cols(base, detail, at)?);
                if x.is_null() || y.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Int(op.apply(&x, &y) as i64))
            }
            BoundExpr::Arith(op, a, b) => {
                let (x, y) = (a.eval_cols(base, detail, at)?, b.eval_cols(base, detail, at)?);
                eval_arith(*op, &x, &y)
            }
            BoundExpr::And(a, b) => {
                if !a.eval_cols(base, detail, at)?.is_truthy() {
                    return Ok(Value::Int(0));
                }
                Ok(Value::Int(b.eval_cols(base, detail, at)?.is_truthy() as i64))
            }
            BoundExpr::Or(a, b) => {
                if a.eval_cols(base, detail, at)?.is_truthy() {
                    return Ok(Value::Int(1));
                }
                Ok(Value::Int(b.eval_cols(base, detail, at)?.is_truthy() as i64))
            }
            BoundExpr::Not(a) => {
                Ok(Value::Int(!a.eval_cols(base, detail, at)?.is_truthy() as i64))
            }
            BoundExpr::InList(a, vs) => {
                let x = a.eval_cols(base, detail, at)?;
                if x.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Int(vs.binary_search(&x).is_ok() as i64))
            }
        }
    }

    fn eval_inner(&self, base: &Row, detail: Option<&Row>) -> Result<Value> {
        match self {
            BoundExpr::Col(Side::Base, i) => Ok(base.get(*i).clone()),
            BoundExpr::Col(Side::Detail, i) => detail
                .map(|d| d.get(*i).clone())
                .ok_or_else(|| Error::Plan("detail column in single-row eval".into())),
            BoundExpr::Lit(v) => Ok(v.clone()),
            BoundExpr::Cmp(op, a, b) => {
                let (x, y) = (a.eval_inner(base, detail)?, b.eval_inner(base, detail)?);
                if x.is_null() || y.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Int(op.apply(&x, &y) as i64))
            }
            BoundExpr::Arith(op, a, b) => {
                let (x, y) = (a.eval_inner(base, detail)?, b.eval_inner(base, detail)?);
                eval_arith(*op, &x, &y)
            }
            BoundExpr::And(a, b) => {
                if !a.eval_inner(base, detail)?.is_truthy() {
                    return Ok(Value::Int(0));
                }
                Ok(Value::Int(b.eval_inner(base, detail)?.is_truthy() as i64))
            }
            BoundExpr::Or(a, b) => {
                if a.eval_inner(base, detail)?.is_truthy() {
                    return Ok(Value::Int(1));
                }
                Ok(Value::Int(b.eval_inner(base, detail)?.is_truthy() as i64))
            }
            BoundExpr::Not(a) => Ok(Value::Int(!a.eval_inner(base, detail)?.is_truthy() as i64)),
            BoundExpr::InList(a, vs) => {
                let x = a.eval_inner(base, detail)?;
                if x.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Int(vs.binary_search(&x).is_ok() as i64))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::of(&[("k", DataType::Int), ("avg", DataType::Double)]),
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
    }

    #[test]
    fn equi_condition_evaluates() {
        let (b, d) = schemas();
        let theta = Expr::bcol("k").eq(Expr::dcol("k"));
        let bound = theta.bind(&b, Some(&d)).unwrap();
        assert!(bound
            .eval(&row![1i64, 0.0], &row![1i64, 5i64])
            .unwrap()
            .is_truthy());
        assert!(!bound
            .eval(&row![1i64, 0.0], &row![2i64, 5i64])
            .unwrap()
            .is_truthy());
    }

    #[test]
    fn correlated_condition_with_arithmetic() {
        let (b, d) = schemas();
        // r.v >= b.avg * 2
        let theta = Expr::dcol("v").ge(Expr::bcol("avg").mul(Expr::lit(2i64)));
        let bound = theta.bind(&b, Some(&d)).unwrap();
        assert!(bound
            .eval(&row![0i64, 2.5], &row![0i64, 5i64])
            .unwrap()
            .is_truthy());
        assert!(!bound
            .eval(&row![0i64, 2.6], &row![0i64, 5i64])
            .unwrap()
            .is_truthy());
    }

    #[test]
    fn null_comparison_is_not_truthy() {
        let (b, d) = schemas();
        let theta = Expr::bcol("avg").lt(Expr::dcol("v"));
        let bound = theta.bind(&b, Some(&d)).unwrap();
        let r = bound.eval(&row![0i64, Value::Null], &row![0i64, 5i64]).unwrap();
        assert!(r.is_null());
        assert!(!r.is_truthy());
    }

    #[test]
    fn division_yields_double_and_by_zero_null() {
        assert_eq!(
            eval_arith(ArithOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Double(3.5)
        );
        assert_eq!(
            eval_arith(ArithOp::Div, &Value::Int(7), &Value::Int(0)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn modulo() {
        assert_eq!(
            eval_arith(ArithOp::Mod, &Value::Int(-7), &Value::Int(3)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_arith(ArithOp::Mod, &Value::Double(1.5), &Value::Int(3)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn conjuncts_flatten() {
        let e = Expr::bcol("a")
            .eq(Expr::dcol("a"))
            .and(Expr::bcol("b").eq(Expr::dcol("b")))
            .and(Expr::dcol("v").gt(Expr::lit(0i64)));
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(Expr::True.conjuncts().len(), 0);
    }

    #[test]
    fn side_column_sets() {
        let e = Expr::bcol("x")
            .add(Expr::bcol("y"))
            .lt(Expr::dcol("z").mul(Expr::lit(2i64)));
        assert_eq!(
            e.columns(Side::Base).into_iter().collect::<Vec<_>>(),
            ["x", "y"]
        );
        assert_eq!(
            e.columns(Side::Detail).into_iter().collect::<Vec<_>>(),
            ["z"]
        );
        assert!(e.references_side(Side::Detail));
        assert!(!Expr::lit(1i64).references_side(Side::Base));
    }

    #[test]
    fn binding_unknown_column_fails() {
        let (b, d) = schemas();
        assert!(Expr::bcol("nope").bind(&b, Some(&d)).is_err());
        assert!(Expr::dcol("v").bind(&b, None).is_err());
    }

    #[test]
    fn in_list_and_not() {
        let (b, d) = schemas();
        let e = Expr::bcol("k")
            .in_list(vec![Value::Int(1), Value::Int(3)])
            .not();
        let bound = e.bind(&b, Some(&d)).unwrap();
        assert!(!bound.eval_row(&row![1i64, 0.0]).unwrap().is_truthy());
        assert!(bound.eval_row(&row![2i64, 0.0]).unwrap().is_truthy());
    }

    #[test]
    fn and_short_circuits_on_false() {
        let (b, _) = schemas();
        // (k = 99) AND (r.k = 0) — detail side would error in single-row
        // eval, but the false left side short-circuits it.
        let e = Expr::bcol("k").eq(Expr::lit(99i64)).and(Expr::dcol("k").eq(Expr::lit(0i64)));
        let bound = e.bind(&b, Some(&Schema::of(&[("k", DataType::Int)]))).unwrap();
        assert!(!bound.eval_row(&row![1i64, 0.0]).unwrap().is_truthy());
    }

    #[test]
    fn display_round_trips_reasonably() {
        let e = Expr::bcol("sas")
            .eq(Expr::dcol("sas"))
            .and(Expr::dcol("nb").ge(Expr::bcol("sum1").div(Expr::bcol("cnt1"))));
        assert_eq!(
            e.to_string(),
            "(b.sas = r.sas AND r.nb >= (b.sum1 / b.cnt1))"
        );
    }

    #[test]
    fn conjunction_disjunction_builders() {
        assert_eq!(Expr::conjunction(vec![]), Expr::True);
        let c = Expr::conjunction(vec![Expr::lit(1i64), Expr::lit(2i64)]);
        assert!(matches!(c, Expr::And(_, _)));
        let d = Expr::disjunction(vec![Expr::lit(1i64), Expr::lit(0i64)]);
        assert!(matches!(d, Expr::Or(_, _)));
    }

    #[test]
    fn map_columns_renames() {
        let e = Expr::bcol("a").eq(Expr::dcol("a"));
        let renamed = e.map_columns(&mut |s, n| (s, format!("{n}_{s}")));
        assert_eq!(renamed.to_string(), "b.a_b = r.a_r");
    }
}
