//! Binary codec for values, rows, schemas and relations.
//!
//! Everything shipped between sites and the coordinator passes through this
//! codec, so the network layer's byte accounting reflects real serialized
//! sizes — the quantity the paper's Figure 2 (right) plots and that
//! Theorem 2 bounds. The format is a simple length-prefixed tag encoding
//! (little-endian), independent of platform.

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_STR: u8 = 3;

/// A byte sink with primitive writers.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// An encoder pre-sized for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Finish, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a value.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(TAG_NULL),
            Value::Int(i) => {
                self.put_u8(TAG_INT);
                self.put_i64(*i);
            }
            Value::Double(d) => {
                self.put_u8(TAG_DOUBLE);
                self.put_f64(*d);
            }
            Value::Str(s) => {
                self.put_u8(TAG_STR);
                self.put_str(s);
            }
        }
    }

    /// Write a row (the reader must know the arity from the schema).
    pub fn put_row(&mut self, row: &Row) {
        for v in row.values() {
            self.put_value(v);
        }
    }

    /// Write a schema.
    pub fn put_schema(&mut self, schema: &Schema) {
        self.put_u32(schema.len() as u32);
        for f in schema.fields() {
            self.put_str(f.name());
            self.put_u8(match f.data_type() {
                DataType::Int => TAG_INT,
                DataType::Double => TAG_DOUBLE,
                DataType::Str => TAG_STR,
            });
        }
    }

    /// Write a whole relation (schema + row count + rows).
    pub fn put_relation(&mut self, rel: &Relation) {
        self.put_schema(rel.schema());
        self.put_u32(rel.len() as u32);
        for row in rel {
            self.put_row(row);
        }
    }
}

/// A byte source with primitive readers.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Codec(format!(
                "unexpected end of input: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian i64.
    pub fn get_i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a little-endian f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| Error::Codec(format!("invalid utf-8: {e}")))
    }

    /// Read a value.
    pub fn get_value(&mut self) -> Result<Value> {
        match self.get_u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_INT => Ok(Value::Int(self.get_i64()?)),
            TAG_DOUBLE => Ok(Value::Double(self.get_f64()?)),
            TAG_STR => Ok(Value::str(self.get_str()?)),
            t => Err(Error::Codec(format!("bad value tag {t}"))),
        }
    }

    /// Read a row of `arity` values.
    pub fn get_row(&mut self, arity: usize) -> Result<Row> {
        // Capacity capped by the bytes actually left, so a corrupt count
        // can't balloon the allocation before the decode fails.
        let mut vs = Vec::with_capacity(arity.min(self.remaining()));
        for _ in 0..arity {
            vs.push(self.get_value()?);
        }
        Ok(Row::new(vs))
    }

    /// Read a schema.
    pub fn get_schema(&mut self) -> Result<Schema> {
        let n = self.get_u32()? as usize;
        let mut fields = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            let name = self.get_str()?;
            let ty = match self.get_u8()? {
                TAG_INT => DataType::Int,
                TAG_DOUBLE => DataType::Double,
                TAG_STR => DataType::Str,
                t => return Err(Error::Codec(format!("bad type tag {t}"))),
            };
            fields.push(Field::new(name, ty));
        }
        Schema::new(fields)
    }

    /// Read a relation.
    pub fn get_relation(&mut self) -> Result<Relation> {
        let schema = self.get_schema()?;
        let n = self.get_u32()? as usize;
        let arity = schema.len();
        let mut rows = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            rows.push(self.get_row(arity)?);
        }
        Relation::new(schema, rows)
    }
}

const EXPR_COL: u8 = 0;
const EXPR_LIT: u8 = 1;
const EXPR_CMP: u8 = 2;
const EXPR_ARITH: u8 = 3;
const EXPR_AND: u8 = 4;
const EXPR_OR: u8 = 5;
const EXPR_NOT: u8 = 6;
const EXPR_IN: u8 = 7;
const EXPR_TRUE: u8 = 8;

impl Encoder {
    /// Write an expression tree.
    pub fn put_expr(&mut self, e: &crate::Expr) {
        use crate::{ArithOp, CmpOp, Expr, Side};
        match e {
            Expr::Col(side, name) => {
                self.put_u8(EXPR_COL);
                self.put_u8(matches!(side, Side::Detail) as u8);
                self.put_str(name);
            }
            Expr::Lit(v) => {
                self.put_u8(EXPR_LIT);
                self.put_value(v);
            }
            Expr::Cmp(op, a, b) => {
                self.put_u8(EXPR_CMP);
                self.put_u8(match op {
                    CmpOp::Eq => 0,
                    CmpOp::Ne => 1,
                    CmpOp::Lt => 2,
                    CmpOp::Le => 3,
                    CmpOp::Gt => 4,
                    CmpOp::Ge => 5,
                });
                self.put_expr(a);
                self.put_expr(b);
            }
            Expr::Arith(op, a, b) => {
                self.put_u8(EXPR_ARITH);
                self.put_u8(match op {
                    ArithOp::Add => 0,
                    ArithOp::Sub => 1,
                    ArithOp::Mul => 2,
                    ArithOp::Div => 3,
                    ArithOp::Mod => 4,
                });
                self.put_expr(a);
                self.put_expr(b);
            }
            Expr::And(a, b) => {
                self.put_u8(EXPR_AND);
                self.put_expr(a);
                self.put_expr(b);
            }
            Expr::Or(a, b) => {
                self.put_u8(EXPR_OR);
                self.put_expr(a);
                self.put_expr(b);
            }
            Expr::Not(a) => {
                self.put_u8(EXPR_NOT);
                self.put_expr(a);
            }
            Expr::InList(a, vs) => {
                self.put_u8(EXPR_IN);
                self.put_expr(a);
                self.put_u32(vs.len() as u32);
                for v in vs {
                    self.put_value(v);
                }
            }
            Expr::True => self.put_u8(EXPR_TRUE),
        }
    }
}

impl Decoder<'_> {
    /// Read an expression tree.
    pub fn get_expr(&mut self) -> Result<crate::Expr> {
        use crate::{ArithOp, CmpOp, Expr, Side};
        Ok(match self.get_u8()? {
            EXPR_COL => {
                let side = if self.get_u8()? == 1 {
                    Side::Detail
                } else {
                    Side::Base
                };
                Expr::Col(side, self.get_str()?)
            }
            EXPR_LIT => Expr::Lit(self.get_value()?),
            EXPR_CMP => {
                let op = match self.get_u8()? {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Lt,
                    3 => CmpOp::Le,
                    4 => CmpOp::Gt,
                    5 => CmpOp::Ge,
                    t => return Err(Error::Codec(format!("bad cmp op {t}"))),
                };
                Expr::Cmp(op, Box::new(self.get_expr()?), Box::new(self.get_expr()?))
            }
            EXPR_ARITH => {
                let op = match self.get_u8()? {
                    0 => ArithOp::Add,
                    1 => ArithOp::Sub,
                    2 => ArithOp::Mul,
                    3 => ArithOp::Div,
                    4 => ArithOp::Mod,
                    t => return Err(Error::Codec(format!("bad arith op {t}"))),
                };
                Expr::Arith(op, Box::new(self.get_expr()?), Box::new(self.get_expr()?))
            }
            EXPR_AND => Expr::And(Box::new(self.get_expr()?), Box::new(self.get_expr()?)),
            EXPR_OR => Expr::Or(Box::new(self.get_expr()?), Box::new(self.get_expr()?)),
            EXPR_NOT => Expr::Not(Box::new(self.get_expr()?)),
            EXPR_IN => {
                let inner = self.get_expr()?;
                let n = self.get_u32()? as usize;
                let mut vs = Vec::with_capacity(n.min(self.remaining()));
                for _ in 0..n {
                    vs.push(self.get_value()?);
                }
                Expr::InList(Box::new(inner), vs)
            }
            EXPR_TRUE => Expr::True,
            t => Err(Error::Codec(format!("bad expr tag {t}")))?,
        })
    }
}

/// Encode a relation to bytes.
pub fn encode_relation(rel: &Relation) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(rel.encoded_size());
    enc.put_relation(rel);
    enc.finish()
}

/// Decode a relation from bytes, requiring full consumption.
pub fn decode_relation(bytes: &[u8]) -> Result<Relation> {
    let mut dec = Decoder::new(bytes);
    let rel = dec.get_relation()?;
    if dec.remaining() != 0 {
        return Err(Error::Codec(format!(
            "{} trailing bytes after relation",
            dec.remaining()
        )));
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Relation {
        Relation::new(
            Schema::of(&[
                ("k", DataType::Int),
                ("name", DataType::Str),
                ("x", DataType::Double),
            ]),
            vec![
                row![1i64, "alpha", 1.5],
                Row::new(vec![Value::Int(-7), Value::Null, Value::Double(f64::MAX)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn relation_round_trip() {
        let r = sample();
        let bytes = encode_relation(&r);
        let back = decode_relation(&bytes).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn value_round_trip_all_kinds() {
        for v in [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Double(-0.0),
            Value::str("héllo"),
            Value::str(""),
        ] {
            let mut e = Encoder::new();
            e.put_value(&v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.get_value().unwrap(), v);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = encode_relation(&sample());
        for cut in [0usize, 1, 5, bytes.len() - 1] {
            assert!(decode_relation(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_fails() {
        let mut bytes = encode_relation(&sample());
        bytes.push(0);
        assert!(decode_relation(&bytes).is_err());
    }

    #[test]
    fn bad_tag_fails() {
        let mut d = Decoder::new(&[9u8]);
        assert!(d.get_value().is_err());
    }

    #[test]
    fn encoded_size_estimate_close_to_actual() {
        let r = sample();
        let actual = encode_relation(&r).len();
        let estimate = r.encoded_size();
        // The estimate is used for accounting; keep it within 20%.
        let diff = (actual as f64 - estimate as f64).abs() / actual as f64;
        assert!(diff < 0.2, "estimate {estimate} vs actual {actual}");
    }

    #[test]
    fn expr_round_trip() {
        use crate::{Expr, Side};
        let exprs = [
            Expr::True,
            Expr::bcol("sas").eq(Expr::dcol("sas")),
            Expr::dcol("nb")
                .ge(Expr::bcol("sum1").div(Expr::bcol("cnt1")))
                .and(Expr::dcol("p").in_list(vec![Value::Int(80), Value::str("x")]))
                .or(Expr::bcol("g").add(Expr::lit(2i64)).lt(Expr::lit(5.5)).not()),
            crate::parse_expr("b.a * 3 % 2 - 1 <> r.b", Side::Base).unwrap(),
        ];
        for e in exprs {
            let mut enc = Encoder::new();
            enc.put_expr(&e);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.get_expr().unwrap(), e);
            assert_eq!(dec.remaining(), 0);
        }
    }

    #[test]
    fn expr_bad_tags_rejected() {
        for bytes in [[99u8].as_slice(), &[2, 9], &[3, 9]] {
            assert!(Decoder::new(bytes).get_expr().is_err());
        }
    }

    #[test]
    fn empty_relation_round_trip() {
        let r = Relation::empty(Schema::of(&[("a", DataType::Int)]));
        assert_eq!(decode_relation(&encode_relation(&r)).unwrap(), r);
    }
}
