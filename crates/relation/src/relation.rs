//! In-memory relations (multisets of rows) and basic relational operators.

use crate::columns::Columns;
use crate::error::{Error, Result};
use crate::expr::BoundExpr;
use crate::row::Row;
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A multiset of rows sharing one schema.
///
/// This is the storage unit of each warehouse site's local detail relation
/// and of every structure shipped between sites and the coordinator. Rows
/// remain the interchange representation (the codec and CSV loader read
/// them unchanged); the columnar physical layout used by the vectorized
/// kernel is built lazily by [`Relation::columns`] and cached — clones
/// share the cache, mutation invalidates it.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: SchemaRef,
    rows: Vec<Row>,
    columns: OnceLock<Arc<Columns>>,
}

/// Equality is over schema and rows only — whether the columnar cache has
/// been built is invisible.
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema: Arc::new(schema),
            rows: Vec::new(),
            columns: OnceLock::new(),
        }
    }

    /// A relation from a schema and rows.
    ///
    /// Validates that every row has the schema's arity. (Type conformance is
    /// checked lazily by expressions; generators produce well-typed rows.)
    pub fn new(schema: Schema, rows: Vec<Row>) -> Result<Relation> {
        let schema = Arc::new(schema);
        for r in &rows {
            if r.len() != schema.len() {
                return Err(Error::SchemaMismatch(format!(
                    "row arity {} vs schema arity {}",
                    r.len(),
                    schema.len()
                )));
            }
        }
        Ok(Relation {
            schema,
            rows,
            columns: OnceLock::new(),
        })
    }

    /// A relation reusing an existing shared schema (no arity re-check; used
    /// on hot paths where rows are constructed against that schema).
    pub fn from_shared(schema: SchemaRef, rows: Vec<Row>) -> Relation {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Relation {
            schema,
            rows,
            columns: OnceLock::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared schema handle.
    pub fn schema_ref(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to the rows (coordinator-side in-place merges).
    /// Invalidates the cached columnar layout.
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        self.columns.take();
        &mut self.rows
    }

    /// Append a row. Invalidates the cached columnar layout.
    ///
    /// # Panics
    /// Debug-asserts the arity matches.
    pub fn push(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.schema.len());
        self.columns.take();
        self.rows.push(row);
    }

    /// The columnar physical layout of this relation (typed vectors,
    /// dictionary-encoded strings, validity bitmaps). Built on first use
    /// and cached; clones of this relation share the cache.
    pub fn columns(&self) -> &Columns {
        self.columns
            .get_or_init(|| Arc::new(Columns::from_rows(&self.schema, &self.rows)))
    }

    /// Iterate over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Projection onto named columns (π). Multiset semantics: keeps
    /// duplicates.
    pub fn project(&self, columns: &[&str]) -> Result<Relation> {
        let idx = self.schema.indexes_of(columns)?;
        let schema = self.schema.project(&idx)?;
        let rows = self.rows.iter().map(|r| r.project(&idx)).collect();
        Relation::new(schema, rows)
    }

    /// Duplicate-eliminating projection (π with DISTINCT) preserving first
    /// occurrence order — used to build base-values relations.
    pub fn project_distinct(&self, columns: &[&str]) -> Result<Relation> {
        let idx = self.schema.indexes_of(columns)?;
        let schema = self.schema.project(&idx)?;
        let mut seen: HashSet<Row> = HashSet::with_capacity(self.rows.len());
        let mut rows = Vec::new();
        for r in &self.rows {
            let p = r.project(&idx);
            if seen.insert(p.clone()) {
                rows.push(p);
            }
        }
        Relation::new(schema, rows)
    }

    /// Selection (σ) by a bound predicate.
    pub fn select(&self, pred: &BoundExpr) -> Result<Relation> {
        let mut rows = Vec::new();
        for r in &self.rows {
            if pred.eval_row(r)?.is_truthy() {
                rows.push(r.clone());
            }
        }
        Ok(Relation::from_shared(self.schema_ref(), rows))
    }

    /// Selection by an arbitrary row predicate closure.
    pub fn filter(&self, mut keep: impl FnMut(&Row) -> bool) -> Relation {
        Relation::from_shared(
            self.schema_ref(),
            self.rows.iter().filter(|r| keep(r)).cloned().collect(),
        )
    }

    /// Multiset union (⊔). Schemas must be identical.
    pub fn union_all(&self, other: &Relation) -> Result<Relation> {
        if self.schema() != other.schema() {
            return Err(Error::SchemaMismatch(format!(
                "union of {} and {}",
                self.schema(),
                other.schema()
            )));
        }
        let mut rows = Vec::with_capacity(self.len() + other.len());
        rows.extend_from_slice(&self.rows);
        rows.extend_from_slice(&other.rows);
        Ok(Relation::from_shared(self.schema_ref(), rows))
    }

    /// Distinct rows, preserving first-occurrence order.
    pub fn distinct(&self) -> Relation {
        let mut seen: HashSet<Row> = HashSet::with_capacity(self.rows.len());
        let rows = self
            .rows
            .iter()
            .filter(|r| seen.insert((*r).clone()))
            .cloned()
            .collect();
        Relation::from_shared(self.schema_ref(), rows)
    }

    /// Rows sorted by the named columns (ascending, total value order).
    pub fn sorted_by(&self, columns: &[&str]) -> Result<Relation> {
        let idx = self.schema.indexes_of(columns)?;
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for &i in &idx {
                let ord = a.get(i).cmp(b.get(i));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(Relation::from_shared(self.schema_ref(), rows))
    }

    /// A canonical form for multiset comparison in tests: all rows sorted.
    pub fn canonicalized(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort();
        Relation::from_shared(self.schema_ref(), rows)
    }

    /// Multiset equality irrespective of row order and of schema sharing.
    pub fn same_bag(&self, other: &Relation) -> bool {
        self.schema() == other.schema()
            && self.canonicalized().rows == other.canonicalized().rows
    }

    /// The distinct values of one column.
    pub fn column_values(&self, column: &str) -> Result<Vec<Value>> {
        let i = self.schema.index_of(column)?;
        let mut set: HashSet<Value> = HashSet::new();
        let mut out = Vec::new();
        for r in &self.rows {
            let v = r.get(i).clone();
            if set.insert(v.clone()) {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// Approximate serialized size in bytes (schema + rows).
    pub fn encoded_size(&self) -> usize {
        self.schema.encoded_size() + 4 + self.rows.iter().map(Row::encoded_size).sum::<usize>()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for r in &self.rows {
            writeln!(f, "{r}")?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn sample() -> Relation {
        Relation::new(
            Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]),
            vec![row![1i64, "x"], row![2i64, "y"], row![1i64, "x"]],
        )
        .unwrap()
    }

    #[test]
    fn arity_checked() {
        let err = Relation::new(Schema::of(&[("a", DataType::Int)]), vec![row![1i64, 2i64]]);
        assert!(err.is_err());
    }

    #[test]
    fn project_keeps_duplicates_distinct_removes_them() {
        let r = sample();
        assert_eq!(r.project(&["b"]).unwrap().len(), 3);
        let d = r.project_distinct(&["b"]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.rows()[0], row!["x"]);
    }

    #[test]
    fn union_requires_same_schema() {
        let r = sample();
        let other = Relation::empty(Schema::of(&[("z", DataType::Int)]));
        assert!(r.union_all(&other).is_err());
        let u = r.union_all(&r).unwrap();
        assert_eq!(u.len(), 6);
    }

    #[test]
    fn distinct_and_same_bag() {
        let r = sample();
        assert_eq!(r.distinct().len(), 2);
        let shuffled = Relation::new(
            Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]),
            vec![row![2i64, "y"], row![1i64, "x"], row![1i64, "x"]],
        )
        .unwrap();
        assert!(r.same_bag(&shuffled));
        assert!(!r.same_bag(&r.distinct()));
    }

    #[test]
    fn sorted_by_columns() {
        let r = sample();
        let s = r.sorted_by(&["b", "a"]).unwrap();
        assert_eq!(s.rows()[0], row![1i64, "x"]);
        assert_eq!(s.rows()[2], row![2i64, "y"]);
    }

    #[test]
    fn column_values_distinct_in_order() {
        let r = sample();
        assert_eq!(
            r.column_values("a").unwrap(),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn filter_closure() {
        let r = sample();
        let f = r.filter(|row| row.get(0) == &Value::Int(1));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn columns_view_round_trips_and_invalidates() {
        let mut r = sample();
        let cols = r.columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.to_rows(), r.rows());
        // Mutation invalidates the cached layout.
        r.push(row![9i64, "z"]);
        assert_eq!(r.columns().len(), 4);
        assert_eq!(r.columns().value(1, 3), Value::str("z"));
        r.rows_mut().pop();
        assert_eq!(r.columns().len(), 3);
        // The cache is invisible to equality.
        let fresh = sample();
        assert_eq!(r, fresh);
    }
}
