//! Minimal CSV import/export for relations.
//!
//! Used by the examples to inspect query results and by the data generators
//! to dump datasets. Handles quoting of fields containing separators,
//! quotes, or newlines; type inference on read is driven by a schema.

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Render a relation as CSV with a header row.
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let names: Vec<&str> = rel.schema().column_names();
    writeln_record(&mut out, names.iter().copied());
    for row in rel {
        writeln_record(
            &mut out,
            row.values().iter().map(|v| match v {
                Value::Null => String::new(),
                other => other.to_string(),
            }),
        );
    }
    out
}

fn writeln_record<S: AsRef<str>>(out: &mut String, fields: impl Iterator<Item = S>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        write_field(out, f.as_ref());
    }
    out.push('\n');
}

fn write_field(out: &mut String, field: &str) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Parse CSV text (with a header row) into a relation conforming to
/// `schema`. The header must match the schema's column names in order.
/// Empty fields become `NULL`.
pub fn from_csv(text: &str, schema: Schema) -> Result<Relation> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(Error::Parse("missing CSV header".into()));
    }
    let header = records.remove(0);
    let expected: Vec<&str> = schema.column_names();
    if header.len() != expected.len()
        || header.iter().zip(&expected).any(|(h, e)| h != e)
    {
        return Err(Error::Parse(format!(
            "CSV header {header:?} does not match schema {expected:?}"
        )));
    }
    let mut rows = Vec::with_capacity(records.len());
    for (lineno, rec) in records.into_iter().enumerate() {
        if rec.len() != schema.len() {
            return Err(Error::Parse(format!(
                "record {} has {} fields, expected {}",
                lineno + 2,
                rec.len(),
                schema.len()
            )));
        }
        let mut vs = Vec::with_capacity(rec.len());
        for (field, f) in rec.into_iter().zip(schema.fields()) {
            vs.push(parse_field(&field, f.data_type(), lineno + 2)?);
        }
        rows.push(Row::new(vs));
    }
    Relation::new(schema, rows)
}

fn parse_field(field: &str, ty: DataType, line: usize) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| Error::Parse(format!("line {line}: bad int {field:?}: {e}"))),
        DataType::Double => field
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|e| Error::Parse(format!("line {line}: bad double {field:?}: {e}"))),
        DataType::Str => Ok(Value::str(field)),
    }
}

/// Split CSV text into records of unquoted fields.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(Error::Parse("unterminated quoted CSV field".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Relation {
        Relation::new(
            Schema::of(&[("k", DataType::Int), ("name", DataType::Str)]),
            vec![
                row![1i64, "plain"],
                row![2i64, "with,comma"],
                row![3i64, "with \"quote\""],
                Row::new(vec![Value::Int(4), Value::Null]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let csv = to_csv(&r);
        let back = from_csv(&csv, r.schema().clone()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn header_mismatch_rejected() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        assert!(from_csv("k\n1\n", schema).is_err());
    }

    #[test]
    fn bad_int_rejected() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let err = from_csv("k\nabc\n", schema).unwrap_err();
        assert!(err.to_string().contains("bad int"));
    }

    #[test]
    fn quoted_newline_inside_field() {
        let schema = Schema::of(&[("s", DataType::Str)]);
        let rel = from_csv("s\n\"a\nb\"\n", schema).unwrap();
        assert_eq!(rel.rows()[0].get(0), &Value::str("a\nb"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let schema = Schema::of(&[("s", DataType::Str)]);
        assert!(from_csv("s\n\"abc\n", schema).is_err());
    }

    #[test]
    fn missing_header_rejected() {
        let schema = Schema::of(&[("s", DataType::Str)]);
        assert!(from_csv("", schema).is_err());
    }
}
