//! Scalar values and data types.
//!
//! [`Value`] is the unit of data flowing through the engine. It provides a
//! *total* order and a consistent [`Hash`] implementation (doubles hash via
//! their bit pattern) so that rows can key hash maps — the coordinator's
//! base-result structure is indexed on key attributes (Sect. 3.2 of the
//! paper), and the GMDJ fast path hash-partitions detail tuples.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Double,
    /// UTF-8 string (cheaply clonable).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A scalar value.
///
/// `Null` compares less than everything else; `Int` and `Double` compare
/// numerically with each other (so `Value::Int(2) == Value::Double(2.0)`);
/// strings compare lexicographically and are greater than all numbers.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absence of a value (e.g. an aggregate over an empty range).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is normalized to a single bit pattern and sorts
    /// after all other doubles.
    Double(f64),
    /// Shared immutable string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Is this `Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a numeric `f64` if possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Interpret as an `i64` if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret as a string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style truthiness for predicate results: `Int(0)`/`Null` are
    /// false, any other value is true.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Double(d) => *d != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Approximate size in bytes when serialized by the codec. Used by the
    /// network layer for accounting and by the planner for cost estimates.
    pub fn encoded_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 9,
            Value::Double(_) => 9,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::str(v)
    }
}

/// Rank used to order values of different types: Null < numbers < strings.
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) | Value::Double(_) => 1,
        Value::Str(_) => 2,
    }
}

/// Total order on doubles: ordinary order, with NaN greatest.
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("non-NaN doubles compare"),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => total_f64_cmp(*a, *b),
            (Value::Int(a), Value::Double(b)) => total_f64_cmp(*a as f64, *b),
            (Value::Double(a), Value::Int(b)) => total_f64_cmp(*a, *b as f64),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Ints and doubles that compare equal must hash equally:
            // hash integral doubles as their integer value.
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Double(d) => {
                if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d <= i64::MAX as f64 {
                    state.write_u8(1);
                    state.write_i64(*d as i64);
                } else {
                    state.write_u8(2);
                    // Normalize NaNs and -0.0 so equal values hash equally.
                    let bits = if d.is_nan() {
                        f64::NAN.to_bits()
                    } else if *d == 0.0 {
                        0f64.to_bits()
                    } else {
                        d.to_bits()
                    };
                    state.write_u64(bits);
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_double_equality_and_hash_agree() {
        let a = Value::Int(42);
        let b = Value::Double(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn total_order_across_types() {
        let mut vs = vec![
            Value::str("abc"),
            Value::Int(5),
            Value::Null,
            Value::Double(4.5),
            Value::str("ab"),
            Value::Int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Int(-1),
                Value::Double(4.5),
                Value::Int(5),
                Value::str("ab"),
                Value::str("abc"),
            ]
        );
    }

    #[test]
    fn nan_is_greatest_double_and_equal_to_itself() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan, Value::Double(f64::NAN));
        assert!(nan > Value::Double(f64::INFINITY));
        assert!(nan < Value::str(""));
        assert_eq!(hash_of(&nan), hash_of(&Value::Double(f64::NAN)));
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        assert_eq!(Value::Double(-0.0), Value::Double(0.0));
        assert_eq!(hash_of(&Value::Double(-0.0)), hash_of(&Value::Double(0.0)));
        assert_eq!(Value::Double(-0.0), Value::Int(0));
        assert_eq!(hash_of(&Value::Double(-0.0)), hash_of(&Value::Int(0)));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Double(0.0).is_truthy());
        assert!(Value::str("x").is_truthy());
        assert!(!Value::str("").is_truthy());
    }

    #[test]
    fn encoded_size_matches_kind() {
        assert_eq!(Value::Null.encoded_size(), 1);
        assert_eq!(Value::Int(7).encoded_size(), 9);
        assert_eq!(Value::str("abc").encoded_size(), 8);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Double(2.5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::str("hi").as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
    }
}
