//! Rows (tuples).

use crate::value::Value;
use std::fmt;

/// A tuple of values, positionally matching some [`crate::Schema`].
///
/// Rows are plain vectors of [`Value`]; the boxed-slice representation keeps
/// the per-row footprint at two words once a row is frozen.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row {
    values: Box<[Value]>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row {
            values: values.into_boxed_slice(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the row has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Replace the value at position `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// The sub-row formed by the columns at `indexes`, in that order.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row::new(indexes.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Key extraction without constructing a `Row`: clone the values at
    /// `indexes` into a `Vec` usable as a hash-map key.
    pub fn key(&self, indexes: &[usize]) -> Vec<Value> {
        indexes.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// A new row with `extra` values appended.
    pub fn extend(&self, extra: &[Value]) -> Row {
        let mut v = Vec::with_capacity(self.values.len() + extra.len());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(extra);
        Row::new(v)
    }

    /// Consume the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values.into_vec()
    }

    /// Approximate serialized size in bytes (codec accounting).
    pub fn encoded_size(&self) -> usize {
        self.values.iter().map(Value::encoded_size).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Row {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Build a row from a list of things convertible to [`Value`].
///
/// ```
/// use skalla_relation::{row, Value};
/// let r = row![1i64, 2.5, "x"];
/// assert_eq!(r.get(2), &Value::str("x"));
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn project_and_key() {
        let r = row![10i64, "a", 2.5];
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Double(2.5), Value::Int(10)]);
        assert_eq!(r.key(&[1]), vec![Value::str("a")]);
    }

    #[test]
    fn extend_and_set() {
        let mut r = row![1i64];
        r.set(0, Value::Int(2));
        let e = r.extend(&[Value::Null]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.get(0), &Value::Int(2));
        assert!(e.get(1).is_null());
    }

    #[test]
    fn display() {
        assert_eq!(row![1i64, "x"].to_string(), "[1, x]");
    }

    #[test]
    fn encoded_size_sums_values() {
        let r = row![1i64, "abc"];
        assert_eq!(r.encoded_size(), 9 + 8);
    }
}
