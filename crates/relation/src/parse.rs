//! A small expression parser.
//!
//! Parses scalar/boolean expressions such as
//! `b.sum1 / b.cnt1`, `r.num_bytes >= b.sum1 / b.cnt1 AND r.proto = 'tcp'`,
//! or `dest_as + source_as < 50`. Columns may be qualified with `b.` (base
//! side) or `r.` (detail side); unqualified names take the caller-supplied
//! default side. Used by the GMDJ condition builders and by the
//! `skalla-query` front-end.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! expr     := or
//! or       := and (OR and)*
//! and      := not (AND not)*
//! not      := NOT not | cmp
//! cmp      := sum ((= | <> | != | < | <= | > | >=) sum | IN '(' lit,* ')')?
//! sum      := term ((+ | -) term)*
//! term     := unary ((* | / | %) unary)*
//! unary    := - unary | primary
//! primary  := number | 'string' | TRUE | column | '(' expr ')'
//! column   := [bB|rR '.'] identifier
//! ```

use crate::error::{Error, Result};
use crate::expr::{ArithOp, CmpOp, Expr, Side};
use crate::value::Value;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Double(f64),
    Str(String),
    Sym(&'static str),
    And,
    Or,
    Not,
    In,
    True,
}

fn lex(text: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let b = text.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push(Tok::Sym("("));
                i += 1;
            }
            ')' => {
                toks.push(Tok::Sym(")"));
                i += 1;
            }
            ',' => {
                toks.push(Tok::Sym(","));
                i += 1;
            }
            '+' => {
                toks.push(Tok::Sym("+"));
                i += 1;
            }
            '-' => {
                toks.push(Tok::Sym("-"));
                i += 1;
            }
            '*' => {
                toks.push(Tok::Sym("*"));
                i += 1;
            }
            '/' => {
                toks.push(Tok::Sym("/"));
                i += 1;
            }
            '%' => {
                toks.push(Tok::Sym("%"));
                i += 1;
            }
            '.' => {
                toks.push(Tok::Sym("."));
                i += 1;
            }
            '=' => {
                toks.push(Tok::Sym("="));
                i += 1;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Sym("<="));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    toks.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    toks.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    return Err(Error::Parse("unexpected '!'".into()));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        None => return Err(Error::Parse("unterminated string".into())),
                        Some(b'\'') => {
                            if b.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_double = false;
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit()
                {
                    is_double = true;
                    i += 1;
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &text[start..i];
                if is_double {
                    toks.push(Tok::Double(text.parse().map_err(|e| {
                        Error::Parse(format!("bad number {text:?}: {e}"))
                    })?));
                } else {
                    toks.push(Tok::Int(text.parse().map_err(|e| {
                        Error::Parse(format!("bad number {text:?}: {e}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &text[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "AND" => toks.push(Tok::And),
                    "OR" => toks.push(Tok::Or),
                    "NOT" => toks.push(Tok::Not),
                    "IN" => toks.push(Tok::In),
                    "TRUE" => toks.push(Tok::True),
                    _ => toks.push(Tok::Ident(word.to_string())),
                }
            }
            other => return Err(Error::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    default_side: Side,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        match self.next() {
            Some(Tok::Sym(t)) if t == s => Ok(()),
            other => Err(Error::Parse(format!("expected {s:?}, found {other:?}"))),
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut e = self.parse_and()?;
        while matches!(self.peek(), Some(Tok::Or)) {
            self.next();
            e = e.or(self.parse_and()?);
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut e = self.parse_not()?;
        while matches!(self.peek(), Some(Tok::And)) {
            self.next();
            e = Expr::And(Box::new(e), Box::new(self.parse_not()?));
        }
        Ok(e)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(Tok::Not)) {
            self.next();
            return Ok(self.parse_not()?.not());
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let left = self.parse_sum()?;
        let op = match self.peek() {
            Some(Tok::Sym("=")) => Some(CmpOp::Eq),
            Some(Tok::Sym("<>")) => Some(CmpOp::Ne),
            Some(Tok::Sym("<")) => Some(CmpOp::Lt),
            Some(Tok::Sym("<=")) => Some(CmpOp::Le),
            Some(Tok::Sym(">")) => Some(CmpOp::Gt),
            Some(Tok::Sym(">=")) => Some(CmpOp::Ge),
            Some(Tok::In) => {
                self.next();
                self.expect_sym("(")?;
                let mut values = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::Int(v)) => values.push(Value::Int(v)),
                        Some(Tok::Double(v)) => values.push(Value::Double(v)),
                        Some(Tok::Str(s)) => values.push(Value::str(s)),
                        Some(Tok::Sym("-")) => match self.next() {
                            Some(Tok::Int(v)) => values.push(Value::Int(-v)),
                            Some(Tok::Double(v)) => values.push(Value::Double(-v)),
                            other => {
                                return Err(Error::Parse(format!(
                                    "expected number after '-', found {other:?}"
                                )))
                            }
                        },
                        other => {
                            return Err(Error::Parse(format!(
                                "expected literal in IN list, found {other:?}"
                            )))
                        }
                    }
                    match self.next() {
                        Some(Tok::Sym(",")) => continue,
                        Some(Tok::Sym(")")) => break,
                        other => {
                            return Err(Error::Parse(format!(
                                "expected ',' or ')' in IN list, found {other:?}"
                            )))
                        }
                    }
                }
                return Ok(left.in_list(values));
            }
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.parse_sum()?;
            return Ok(Expr::Cmp(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn parse_sum(&mut self) -> Result<Expr> {
        let mut e = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Tok::Sym("+")) => {
                    self.next();
                    e = e.add(self.parse_term()?);
                }
                Some(Tok::Sym("-")) => {
                    self.next();
                    e = e.sub(self.parse_term()?);
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr> {
        let mut e = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(Tok::Sym("*")) => {
                    self.next();
                    e = e.mul(self.parse_unary()?);
                }
                Some(Tok::Sym("/")) => {
                    self.next();
                    e = e.div(self.parse_unary()?);
                }
                Some(Tok::Sym("%")) => {
                    self.next();
                    e = Expr::Arith(
                        ArithOp::Mod,
                        Box::new(e),
                        Box::new(self.parse_unary()?),
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(Tok::Sym("-"))) {
            self.next();
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Lit(Value::Int(v)) => Expr::Lit(Value::Int(-v)),
                Expr::Lit(Value::Double(v)) => Expr::Lit(Value::Double(-v)),
                other => Expr::lit(0i64).sub(other),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::lit(v)),
            Some(Tok::Double(v)) => Ok(Expr::lit(v)),
            Some(Tok::Str(s)) => Ok(Expr::Lit(Value::str(s))),
            Some(Tok::True) => Ok(Expr::True),
            Some(Tok::Sym("(")) => {
                let e = self.parse_or()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                // Qualified column?
                if matches!(self.peek(), Some(Tok::Sym("."))) {
                    let side = match name.as_str() {
                        "b" | "B" => Some(Side::Base),
                        "r" | "R" => Some(Side::Detail),
                        _ => None,
                    };
                    if let Some(side) = side {
                        self.next();
                        match self.next() {
                            Some(Tok::Ident(col)) => return Ok(Expr::Col(side, col)),
                            other => {
                                return Err(Error::Parse(format!(
                                    "expected column after qualifier, found {other:?}"
                                )))
                            }
                        }
                    }
                    return Err(Error::Parse(format!(
                        "unknown qualifier {name:?} (use b. or r.)"
                    )));
                }
                Ok(Expr::Col(self.default_side, name))
            }
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parse an expression. Unqualified column names resolve to `default_side`.
pub fn parse_expr(text: &str, default_side: Side) -> Result<Expr> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        default_side,
    };
    let e = p.parse_or()?;
    if p.pos != p.toks.len() {
        return Err(Error::Parse(format!(
            "trailing tokens after expression: {:?}",
            &p.toks[p.pos..]
        )));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Expr {
        parse_expr(s, Side::Base).unwrap()
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(parse("1 + 2 * 3").to_string(), "(1 + (2 * 3))");
        assert_eq!(parse("(1 + 2) * 3").to_string(), "((1 + 2) * 3)");
        assert_eq!(parse("sum1 / cnt1").to_string(), "(b.sum1 / b.cnt1)");
    }

    #[test]
    fn qualified_columns() {
        assert_eq!(
            parse("r.num_bytes >= b.sum1 / b.cnt1").to_string(),
            "r.num_bytes >= (b.sum1 / b.cnt1)"
        );
    }

    #[test]
    fn default_side_applies_to_unqualified() {
        let e = parse_expr("v > 3", Side::Detail).unwrap();
        assert_eq!(e.to_string(), "r.v > 3");
    }

    #[test]
    fn boolean_precedence() {
        let e = parse("a = 1 OR a = 2 AND c = 3");
        assert_eq!(e.to_string(), "(b.a = 1 OR (b.a = 2 AND b.c = 3))");
    }

    #[test]
    fn not_and_in() {
        let e = parse("NOT x IN (1, 2, -3)");
        assert_eq!(e.to_string(), "NOT (b.x IN (1, 2, -3))");
    }

    #[test]
    fn strings_and_escapes() {
        let e = parse("name = 'it''s'");
        assert_eq!(e.to_string(), "b.name = 'it''s'");
    }

    #[test]
    fn comparison_ops() {
        for (src, disp) in [
            ("a < 1", "b.a < 1"),
            ("a <= 1", "b.a <= 1"),
            ("a > 1", "b.a > 1"),
            ("a >= 1", "b.a >= 1"),
            ("a <> 1", "b.a <> 1"),
            ("a != 1", "b.a <> 1"),
            ("a = 1", "b.a = 1"),
        ] {
            assert_eq!(parse(src).to_string(), disp);
        }
    }

    #[test]
    fn unary_minus() {
        assert_eq!(parse("-5 + x").to_string(), "(-5 + b.x)");
        assert_eq!(parse("-x").to_string(), "(0 - b.x)");
        assert_eq!(parse("2.5 % 2").to_string(), "(2.5 % 2)");
    }

    #[test]
    fn errors() {
        assert!(parse_expr("1 +", Side::Base).is_err());
        assert!(parse_expr("'unterminated", Side::Base).is_err());
        assert!(parse_expr("a ! b", Side::Base).is_err());
        assert!(parse_expr("x.y", Side::Base).is_err());
        assert!(parse_expr("1 2", Side::Base).is_err());
        assert!(parse_expr("a IN (1; 2)", Side::Base).is_err());
        assert!(parse_expr("(1", Side::Base).is_err());
    }

    #[test]
    fn true_literal() {
        assert_eq!(parse("TRUE"), Expr::True);
    }
}
