//! Interval/domain analysis used to derive ¬ψ predicates for
//! distribution-aware group reduction (Theorem 4 of the paper).
//!
//! Each site *i* is described by a predicate φ_i that holds for every detail
//! tuple stored there — here a [`DomainMap`]: per-column guarantees such as
//! `nation_key ∈ [0, 3]` or `flag ∈ {'A','N'}`. Given a GMDJ condition
//! θ(b, r), [`derive_base_constraint`] computes a *necessary* condition over
//! the base tuple `b` for `∃ r: φ_i(r) ∧ θ(b, r)` — the paper's ¬ψ_i. The
//! coordinator ships to site *i* only base tuples satisfying it.
//!
//! Soundness contract: the derived predicate may be weaker than the exact
//! ¬ψ_i (shipping a few extra groups is merely suboptimal), but it must
//! never exclude a base tuple that has a matching detail tuple at the site.
//! Every rule below over-approximates.

use crate::expr::{ArithOp, CmpOp, Expr, Side};
use crate::value::Value;
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;

/// A closed numeric interval (bounds may be infinite). Used to bound the
/// possible values of detail-side expressions at a site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Inclusive lower bound (`-inf` if unbounded).
    pub lo: f64,
    /// Inclusive upper bound (`+inf` if unbounded).
    pub hi: f64,
}

#[allow(clippy::should_implement_trait)] // fluent DSL methods, not operator impls
impl Interval {
    /// The unbounded interval.
    pub fn all() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// A single point.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An interval from bounds.
    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval { lo, hi }
    }

    /// Does the interval contain no values?
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Interval sum.
    pub fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi)
    }

    /// Interval difference.
    pub fn sub(self, o: Interval) -> Interval {
        Interval::new(self.lo - o.hi, self.hi - o.lo)
    }

    /// Interval product (min/max of endpoint products).
    pub fn mul(self, o: Interval) -> Interval {
        let cands = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cands {
            // 0 * inf = NaN; treat as 0 (a zero endpoint annihilates).
            let c = if c.is_nan() { 0.0 } else { c };
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval::new(lo, hi)
    }

    /// Interval quotient; `None` when the divisor interval contains 0 (we
    /// then give up rather than produce an unsound bound).
    pub fn div(self, o: Interval) -> Option<Interval> {
        if o.lo <= 0.0 && o.hi >= 0.0 {
            return None;
        }
        let inv = Interval::new(1.0 / o.hi, 1.0 / o.lo);
        Some(self.mul(inv))
    }

    /// Intersection.
    pub fn intersect(self, o: Interval) -> Interval {
        Interval::new(self.lo.max(o.lo), self.hi.min(o.hi))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// What a site's φ guarantees about one detail column.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// No information.
    Any,
    /// Values lie in an inclusive integer range.
    IntRange(i64, i64),
    /// Values are members of an explicit set.
    Set(BTreeSet<Value>),
}

impl Domain {
    /// Build a `Set` domain from values.
    pub fn of(values: impl IntoIterator<Item = Value>) -> Domain {
        Domain::Set(values.into_iter().collect())
    }

    /// The numeric interval covering this domain, if any.
    pub fn interval(&self) -> Interval {
        match self {
            Domain::Any => Interval::all(),
            Domain::IntRange(lo, hi) => Interval::new(*lo as f64, *hi as f64),
            Domain::Set(vs) => {
                let mut iv = Interval::new(f64::INFINITY, f64::NEG_INFINITY);
                for v in vs {
                    match v.as_f64() {
                        Some(x) => {
                            iv.lo = iv.lo.min(x);
                            iv.hi = iv.hi.max(x);
                        }
                        // Non-numeric member: fall back to "anything".
                        None => return Interval::all(),
                    }
                }
                if vs.is_empty() {
                    // Empty site partition: empty interval.
                    Interval::new(1.0, 0.0)
                } else {
                    iv
                }
            }
        }
    }

    /// The explicit value set, when finite.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Domain::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Do two domains share no values? (Used to verify partition
    /// attributes, Definition 2.)
    pub fn disjoint_from(&self, other: &Domain) -> bool {
        match (self, other) {
            (Domain::IntRange(a, b), Domain::IntRange(c, d)) => b < c || d < a,
            (Domain::Set(x), Domain::Set(y)) => x.is_disjoint(y),
            (Domain::Set(s), Domain::IntRange(lo, hi))
            | (Domain::IntRange(lo, hi), Domain::Set(s)) => !s.iter().any(|v| {
                v.as_i64().map(|i| i >= *lo && i <= *hi).unwrap_or(false)
                    || v.as_f64()
                        .map(|x| x >= *lo as f64 && x <= *hi as f64)
                        .unwrap_or(false)
            }),
            _ => false,
        }
    }
}

/// Per-column domain guarantees at one site — the structured form of φ_i.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DomainMap {
    domains: HashMap<String, Domain>,
}

impl DomainMap {
    /// No guarantees about any column.
    pub fn new() -> DomainMap {
        DomainMap::default()
    }

    /// Record a guarantee for a column.
    pub fn with(mut self, column: impl Into<String>, domain: Domain) -> DomainMap {
        self.domains.insert(column.into(), domain);
        self
    }

    /// Record a guarantee for a column (mutating form).
    pub fn insert(&mut self, column: impl Into<String>, domain: Domain) {
        self.domains.insert(column.into(), domain);
    }

    /// The guarantee for a column (`Any` if unknown).
    pub fn get(&self, column: &str) -> &Domain {
        self.domains.get(column).unwrap_or(&Domain::Any)
    }

    /// Columns with a non-trivial guarantee.
    pub fn constrained_columns(&self) -> impl Iterator<Item = &str> {
        self.domains.keys().map(String::as_str)
    }
}

/// Bound the possible values of a *detail-only* expression under `domains`.
/// Returns `None` when the expression cannot be bounded (strings, division
/// by an interval containing zero, base-side references, …).
pub fn eval_interval(expr: &Expr, domains: &DomainMap) -> Option<Interval> {
    match expr {
        Expr::Col(Side::Detail, name) => Some(domains.get(name).interval()),
        Expr::Col(Side::Base, _) => None,
        Expr::Lit(v) => v.as_f64().map(Interval::point),
        Expr::Arith(op, a, b) => {
            let (x, y) = (eval_interval(a, domains)?, eval_interval(b, domains)?);
            match op {
                ArithOp::Add => Some(x.add(y)),
                ArithOp::Sub => Some(x.sub(y)),
                ArithOp::Mul => Some(x.mul(y)),
                ArithOp::Div => x.div(y),
                // v mod m lies in [0, m-1] for a positive constant modulus.
                ArithOp::Mod => {
                    if y.lo == y.hi && y.lo > 0.0 {
                        Some(Interval::new(0.0, y.lo - 1.0))
                    } else {
                        None
                    }
                }
            }
        }
        _ => None,
    }
}

/// Outcome of analyzing one θ against one site's φ.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseConstraint {
    /// No useful restriction could be derived: ship every base tuple.
    Unrestricted,
    /// Ship only base tuples satisfying this base-only predicate (¬ψ_i).
    Filter(Expr),
    /// θ is unsatisfiable at this site: ship nothing (site does not
    /// participate in this GMDJ — the paper's S_MD ⊂ S_B case).
    Unsatisfiable,
}

impl BaseConstraint {
    /// Conjunction of two constraints on the same site.
    pub fn and(self, other: BaseConstraint) -> BaseConstraint {
        match (self, other) {
            (BaseConstraint::Unsatisfiable, _) | (_, BaseConstraint::Unsatisfiable) => {
                BaseConstraint::Unsatisfiable
            }
            (BaseConstraint::Unrestricted, o) => o,
            (s, BaseConstraint::Unrestricted) => s,
            (BaseConstraint::Filter(a), BaseConstraint::Filter(b)) => {
                BaseConstraint::Filter(a.and(b))
            }
        }
    }

    /// Disjunction of constraints (across the θ_1 ∨ … ∨ θ_m of a GMDJ: a
    /// base tuple must be shipped if *any* block might match it).
    pub fn or(self, other: BaseConstraint) -> BaseConstraint {
        match (self, other) {
            (BaseConstraint::Unrestricted, _) | (_, BaseConstraint::Unrestricted) => {
                BaseConstraint::Unrestricted
            }
            (BaseConstraint::Unsatisfiable, o) => o,
            (s, BaseConstraint::Unsatisfiable) => s,
            (BaseConstraint::Filter(a), BaseConstraint::Filter(b)) => {
                BaseConstraint::Filter(a.or(b))
            }
        }
    }
}

/// Split a comparison into (base-only side, detail-only side, op oriented as
/// `base op detail`), if it has that shape.
fn split_base_detail<'e>(
    op: CmpOp,
    a: &'e Expr,
    b: &'e Expr,
) -> Option<(CmpOp, &'e Expr, &'e Expr)> {
    let a_base = a.references_side(Side::Base);
    let a_detail = a.references_side(Side::Detail);
    let b_base = b.references_side(Side::Base);
    let b_detail = b.references_side(Side::Detail);
    if a_base && !a_detail && b_detail && !b_base {
        Some((op, a, b))
    } else if b_base && !b_detail && a_detail && !a_base {
        Some((op.flipped(), b, a))
    } else {
        None
    }
}

/// Derive the ¬ψ_i base-tuple constraint for condition `theta` at a site
/// whose detail tuples satisfy `domains` (φ_i).
pub fn derive_base_constraint(theta: &Expr, domains: &DomainMap) -> BaseConstraint {
    match theta {
        Expr::True => BaseConstraint::Unrestricted,
        Expr::And(a, b) => {
            derive_base_constraint(a, domains).and(derive_base_constraint(b, domains))
        }
        Expr::Or(a, b) => {
            derive_base_constraint(a, domains).or(derive_base_constraint(b, domains))
        }
        Expr::Cmp(op, a, b) => {
            // Base-only conjunct: it is itself a necessary condition.
            let refs_detail =
                a.references_side(Side::Detail) || b.references_side(Side::Detail);
            let refs_base = a.references_side(Side::Base) || b.references_side(Side::Base);
            if !refs_detail && refs_base {
                return BaseConstraint::Filter(theta.clone());
            }
            // Detail-only conjunct: check satisfiability under φ_i.
            if refs_detail && !refs_base {
                return detail_only_satisfiable(*op, a, b, domains);
            }
            let Some((op, base_side, detail_side)) = split_base_detail(*op, a, b) else {
                return BaseConstraint::Unrestricted;
            };
            // Exact set transfer for `base_expr = r.col` with a Set domain.
            if op == CmpOp::Eq {
                if let Expr::Col(Side::Detail, name) = detail_side {
                    if let Some(set) = domains.get(name).as_set() {
                        if set.is_empty() {
                            return BaseConstraint::Unsatisfiable;
                        }
                        return BaseConstraint::Filter(
                            base_side.clone().in_list(set.iter().cloned().collect()),
                        );
                    }
                }
            }
            let Some(iv) = eval_interval(detail_side, domains) else {
                return BaseConstraint::Unrestricted;
            };
            if iv.is_empty() {
                return BaseConstraint::Unsatisfiable;
            }
            let lo = Expr::Lit(Value::Double(iv.lo));
            let hi = Expr::Lit(Value::Double(iv.hi));
            let filter = match op {
                // base = detail ⇒ lo ≤ base ≤ hi.
                CmpOp::Eq => {
                    let mut f: Option<Expr> = None;
                    if iv.lo.is_finite() {
                        f = Some(base_side.clone().ge(lo));
                    }
                    if iv.hi.is_finite() {
                        let c = base_side.clone().le(hi);
                        f = Some(match f {
                            Some(g) => g.and(c),
                            None => c,
                        });
                    }
                    match f {
                        Some(f) => f,
                        None => return BaseConstraint::Unrestricted,
                    }
                }
                // base < detail ⇒ base < hi (detail can be at most hi).
                CmpOp::Lt if iv.hi.is_finite() => base_side.clone().lt(hi),
                CmpOp::Le if iv.hi.is_finite() => base_side.clone().le(hi),
                // base > detail ⇒ base > lo.
                CmpOp::Gt if iv.lo.is_finite() => base_side.clone().gt(lo),
                CmpOp::Ge if iv.lo.is_finite() => base_side.clone().ge(lo),
                _ => return BaseConstraint::Unrestricted,
            };
            BaseConstraint::Filter(filter)
        }
        Expr::InList(inner, values) => {
            // r.col IN (…) — detail-only: satisfiable iff the site's domain
            // intersects the list.
            if let Expr::Col(Side::Detail, name) = inner.as_ref() {
                match domains.get(name) {
                    Domain::Set(set) => {
                        if values.iter().any(|v| set.contains(v)) {
                            BaseConstraint::Unrestricted
                        } else {
                            BaseConstraint::Unsatisfiable
                        }
                    }
                    Domain::IntRange(lo, hi) => {
                        let any = values.iter().any(|v| {
                            v.as_i64().map(|i| i >= *lo && i <= *hi).unwrap_or(true)
                        });
                        if any {
                            BaseConstraint::Unrestricted
                        } else {
                            BaseConstraint::Unsatisfiable
                        }
                    }
                    Domain::Any => BaseConstraint::Unrestricted,
                }
            } else {
                BaseConstraint::Unrestricted
            }
        }
        // NOT, literals, bare columns: give up (sound).
        _ => BaseConstraint::Unrestricted,
    }
}

/// Satisfiability check for a detail-only comparison under φ_i.
fn detail_only_satisfiable(
    op: CmpOp,
    a: &Expr,
    b: &Expr,
    domains: &DomainMap,
) -> BaseConstraint {
    let (Some(ia), Some(ib)) = (eval_interval(a, domains), eval_interval(b, domains)) else {
        return BaseConstraint::Unrestricted;
    };
    let sat = match op {
        CmpOp::Eq => !ia.intersect(ib).is_empty(),
        CmpOp::Ne => !(ia.lo == ia.hi && ib.lo == ib.hi && ia.lo == ib.lo),
        CmpOp::Lt => ia.lo < ib.hi,
        CmpOp::Le => ia.lo <= ib.hi,
        CmpOp::Gt => ia.hi > ib.lo,
        CmpOp::Ge => ia.hi >= ib.lo,
    };
    if sat {
        BaseConstraint::Unrestricted
    } else {
        BaseConstraint::Unsatisfiable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_arith() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(-2.0, 2.0);
        assert_eq!(a.add(b), Interval::new(-1.0, 5.0));
        assert_eq!(a.sub(b), Interval::new(-1.0, 5.0));
        assert_eq!(a.mul(b), Interval::new(-6.0, 6.0));
        assert!(a.div(b).is_none());
        assert_eq!(
            a.div(Interval::new(2.0, 4.0)).unwrap(),
            Interval::new(0.25, 1.5)
        );
        assert!(Interval::new(3.0, 1.0).is_empty());
    }

    #[test]
    fn mul_handles_zero_times_infinity() {
        let a = Interval::new(0.0, 0.0);
        let b = Interval::all();
        assert_eq!(a.mul(b), Interval::new(0.0, 0.0));
    }

    #[test]
    fn domain_disjointness() {
        assert!(Domain::IntRange(0, 5).disjoint_from(&Domain::IntRange(6, 9)));
        assert!(!Domain::IntRange(0, 5).disjoint_from(&Domain::IntRange(5, 9)));
        let s1 = Domain::of([Value::str("a")]);
        let s2 = Domain::of([Value::str("b")]);
        assert!(s1.disjoint_from(&s2));
        assert!(!Domain::Any.disjoint_from(&Domain::IntRange(0, 1)));
        assert!(Domain::of([Value::Int(10)]).disjoint_from(&Domain::IntRange(0, 5)));
        assert!(!Domain::of([Value::Int(3)]).disjoint_from(&Domain::IntRange(0, 5)));
    }

    #[test]
    fn paper_example_2_equality_transfer() {
        // Site S1 handles SourceAS in [1, 25]; θ contains
        // b.source_as = r.source_as ⇒ ¬ψ₁ = b.source_as ∈ [1, 25].
        let domains = DomainMap::new().with("source_as", Domain::IntRange(1, 25));
        let theta = Expr::bcol("source_as").eq(Expr::dcol("source_as"));
        match derive_base_constraint(&theta, &domains) {
            BaseConstraint::Filter(f) => {
                assert_eq!(f.to_string(), "(b.source_as >= 1 AND b.source_as <= 25)");
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_arithmetic_transfer() {
        // θ: b.dest_as + b.source_as < r.source_as * 2, φ: r.source_as ≤ 25
        // ⇒ ¬ψ: b.dest_as + b.source_as < 50.
        let domains = DomainMap::new().with("source_as", Domain::IntRange(1, 25));
        let theta = Expr::bcol("dest_as")
            .add(Expr::bcol("source_as"))
            .lt(Expr::dcol("source_as").mul(Expr::lit(2i64)));
        match derive_base_constraint(&theta, &domains) {
            BaseConstraint::Filter(f) => {
                assert_eq!(f.to_string(), "(b.dest_as + b.source_as) < 50");
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn set_domain_transfers_exactly() {
        let domains = DomainMap::new().with(
            "nation",
            Domain::of([Value::str("DK"), Value::str("SE")]),
        );
        let theta = Expr::bcol("nation").eq(Expr::dcol("nation"));
        match derive_base_constraint(&theta, &domains) {
            BaseConstraint::Filter(f) => {
                assert_eq!(f.to_string(), "b.nation IN ('DK', 'SE')");
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn detail_only_contradiction_marks_site_unsatisfiable() {
        // φ: r.k ∈ [0, 10]; θ: … AND r.k > 100 ⇒ site never participates.
        let domains = DomainMap::new().with("k", Domain::IntRange(0, 10));
        let theta = Expr::bcol("g")
            .eq(Expr::dcol("g"))
            .and(Expr::dcol("k").gt(Expr::lit(100i64)));
        assert_eq!(
            derive_base_constraint(&theta, &domains),
            BaseConstraint::Unsatisfiable
        );
    }

    #[test]
    fn unconstrained_site_is_unrestricted() {
        let theta = Expr::bcol("g").eq(Expr::dcol("g"));
        assert_eq!(
            derive_base_constraint(&theta, &DomainMap::new()),
            BaseConstraint::Unrestricted
        );
    }

    #[test]
    fn disjunction_of_blocks_unions_filters() {
        let domains = DomainMap::new().with("g", Domain::IntRange(0, 4));
        let theta = Expr::bcol("g")
            .eq(Expr::dcol("g"))
            .or(Expr::bcol("h").eq(Expr::lit(1i64)));
        match derive_base_constraint(&theta, &domains) {
            BaseConstraint::Filter(f) => {
                assert!(f.to_string().contains("OR"));
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn inequality_bounds_transfer() {
        let domains = DomainMap::new().with("v", Domain::IntRange(10, 20));
        // b.x < r.v ⇒ b.x < 20.
        let theta = Expr::bcol("x").lt(Expr::dcol("v"));
        match derive_base_constraint(&theta, &domains) {
            BaseConstraint::Filter(f) => assert_eq!(f.to_string(), "b.x < 20"),
            other => panic!("{other:?}"),
        }
        // b.x >= r.v ⇒ b.x >= 10.
        let theta = Expr::bcol("x").ge(Expr::dcol("v"));
        match derive_base_constraint(&theta, &domains) {
            BaseConstraint::Filter(f) => assert_eq!(f.to_string(), "b.x >= 10"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_list_detail_only_prunes_sites() {
        let domains = DomainMap::new().with("g", Domain::IntRange(0, 4));
        let theta = Expr::dcol("g").in_list(vec![Value::Int(9)]);
        assert_eq!(
            derive_base_constraint(&theta, &domains),
            BaseConstraint::Unsatisfiable
        );
        let theta = Expr::dcol("g").in_list(vec![Value::Int(2)]);
        assert_eq!(
            derive_base_constraint(&theta, &domains),
            BaseConstraint::Unrestricted
        );
    }

    #[test]
    fn mixed_comparison_gives_up_soundly() {
        // b.x < r.v + b.y mixes sides in one operand: no derivation.
        let domains = DomainMap::new().with("v", Domain::IntRange(0, 1));
        let theta = Expr::bcol("x").lt(Expr::dcol("v").add(Expr::bcol("y")));
        assert_eq!(
            derive_base_constraint(&theta, &domains),
            BaseConstraint::Unrestricted
        );
    }

    #[test]
    fn modulo_interval() {
        let domains = DomainMap::new().with("v", Domain::IntRange(0, 1000));
        let e = Expr::Arith(
            ArithOp::Mod,
            Box::new(Expr::dcol("v")),
            Box::new(Expr::lit(8i64)),
        );
        assert_eq!(eval_interval(&e, &domains), Some(Interval::new(0.0, 7.0)));
    }
}
