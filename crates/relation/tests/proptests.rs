//! Property-based tests for the relational substrate.

use proptest::prelude::*;
use skalla_relation::codec::{decode_relation, encode_relation};
use skalla_relation::interval::{derive_base_constraint, eval_interval, BaseConstraint};
use skalla_relation::{
    ArithOp, DataType, Domain, DomainMap, Expr, Relation, Row, Schema, Value,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only in relations (generators never emit NaN).
        (-1e12f64..1e12).prop_map(Value::Double),
        "[a-zA-Z0-9 ,\"\n]{0,12}".prop_map(Value::str),
    ]
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    (1usize..5).prop_flat_map(|arity| {
        let schema_types = proptest::collection::vec(
            prop_oneof![
                Just(DataType::Int),
                Just(DataType::Double),
                Just(DataType::Str)
            ],
            arity,
        );
        let rows =
            proptest::collection::vec(proptest::collection::vec(arb_value(), arity), 0..20);
        (schema_types, rows).prop_map(|(types, rows)| {
            let fields: Vec<(String, DataType)> = types
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("c{i}"), *t))
                .collect();
            let schema = Schema::of(
                &fields
                    .iter()
                    .map(|(n, t)| (n.as_str(), *t))
                    .collect::<Vec<_>>(),
            );
            Relation::new(schema, rows.into_iter().map(Row::new).collect())
                .expect("arity matches")
        })
    })
}

/// Relations biased toward the columnar layout's edge cases: per-column
/// homogeneous types (so Int/Double/Str columns actually form), Nulls
/// everywhere, NaN and -0.0 payloads, and a tiny string alphabet so the
/// dictionary sees repeats — plus a mixed-type column kind for the
/// fallback path.
fn arb_columnar_relation() -> impl Strategy<Value = Relation> {
    fn cell(kind: usize) -> BoxedStrategy<Value> {
        match kind {
            0 => prop_oneof![
                any::<i64>().prop_map(Value::Int),
                any::<i64>().prop_map(Value::Int),
                Just(Value::Null),
            ]
            .boxed(),
            1 => prop_oneof![
                (-1e12f64..1e12).prop_map(Value::Double),
                (-1e12f64..1e12).prop_map(Value::Double),
                Just(Value::Double(f64::NAN)),
                Just(Value::Double(-0.0)),
                Just(Value::Null),
            ]
            .boxed(),
            2 => prop_oneof![
                "[ab]{0,2}".prop_map(Value::str),
                "[ab]{0,2}".prop_map(Value::str),
                Just(Value::Null),
            ]
            .boxed(),
            _ => arb_value().boxed(),
        }
    }
    (
        (0usize..4, 0usize..4, 0usize..4, 0usize..4),
        1usize..5,
        0usize..24,
    )
        .prop_flat_map(|(kinds, arity, n_rows)| {
            let kinds = [kinds.0, kinds.1, kinds.2, kinds.3];
            (
                proptest::collection::vec(cell(kinds[0]), n_rows..n_rows + 1),
                proptest::collection::vec(cell(kinds[1]), n_rows..n_rows + 1),
                proptest::collection::vec(cell(kinds[2]), n_rows..n_rows + 1),
                proptest::collection::vec(cell(kinds[3]), n_rows..n_rows + 1),
            )
                .prop_map(move |(c0, c1, c2, c3)| {
                    let cols = [c0, c1, c2, c3];
                    let fields: Vec<(String, DataType)> = kinds[..arity]
                        .iter()
                        .enumerate()
                        .map(|(i, k)| {
                            let t = match k {
                                1 => DataType::Double,
                                2 => DataType::Str,
                                _ => DataType::Int,
                            };
                            (format!("c{i}"), t)
                        })
                        .collect();
                    let schema = Schema::of(
                        &fields
                            .iter()
                            .map(|(n, t)| (n.as_str(), *t))
                            .collect::<Vec<_>>(),
                    );
                    let rows: Vec<Row> = (0..n_rows)
                        .map(|r| {
                            Row::new(
                                cols[..arity].iter().map(|c| c[r].clone()).collect(),
                            )
                        })
                        .collect();
                    Relation::new(schema, rows).expect("arity matches")
                })
        })
}

proptest! {
    #[test]
    fn codec_round_trips(rel in arb_relation()) {
        let bytes = encode_relation(&rel);
        let back = decode_relation(&bytes).expect("decode what we encoded");
        prop_assert_eq!(rel, back);
    }

    /// The columnar physical layout is a lossless re-encoding: every cell
    /// survives `rows → Columns → rows` with exact bits (f64 compared by
    /// bit pattern, so NaN payloads and -0.0 are preserved), Nulls map to
    /// validity-bitmap gaps and back, and equal strings share one
    /// dictionary entry (same `Arc<str>` after reconstruction).
    #[test]
    fn columnar_layout_round_trips(rel in arb_columnar_relation()) {
        let cols = rel.columns();
        prop_assert_eq!(cols.len(), rel.len());
        prop_assert_eq!(cols.arity(), rel.schema().len());
        let bits_equal = |a: &Value, b: &Value| match (a, b) {
            (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        };
        for (i, row) in rel.rows().iter().enumerate() {
            for (c, want) in row.values().iter().enumerate() {
                let got = cols.value(c, i);
                prop_assert!(bits_equal(&got, want), "cell ({c},{i}): {got:?} vs {want:?}");
            }
        }
        let back = cols.to_rows();
        prop_assert_eq!(back.len(), rel.len());
        for (got, want) in back.iter().zip(rel.rows()) {
            for (gv, wv) in got.values().iter().zip(want.values()) {
                prop_assert!(bits_equal(gv, wv), "{gv:?} vs {wv:?}");
            }
        }
        // Shared interning: in a dictionary-encoded column, equal strings
        // come back as the *same* allocation. (Mixed-type columns store
        // values verbatim and make no sharing promise.)
        for c in 0..cols.arity() {
            if !matches!(cols.col(c), skalla_relation::Column::Str { .. }) {
                continue;
            }
            let mut seen: Vec<std::sync::Arc<str>> = Vec::new();
            for r in &back {
                if let Value::Str(s) = &r.values()[c] {
                    match seen.iter().find(|p| ***p == **s) {
                        Some(prev) => prop_assert!(
                            std::sync::Arc::ptr_eq(prev, s),
                            "equal strings {s:?} in column {c} not shared"
                        ),
                        None => seen.push(s.clone()),
                    }
                }
            }
        }
    }

    #[test]
    fn value_order_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity for a chain sorted by cmp.
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
        // Consistency of Eq with Ordering::Equal.
        prop_assert_eq!(v[0] == v[1], v[0].cmp(&v[1]) == Ordering::Equal);
    }

    #[test]
    fn distinct_is_idempotent_and_subset(rel in arb_relation()) {
        let d = rel.distinct();
        prop_assert!(d.len() <= rel.len());
        prop_assert!(d.same_bag(&d.distinct()));
    }

    #[test]
    fn union_len_adds(a in arb_relation()) {
        let u = a.union_all(&a).expect("same schema");
        prop_assert_eq!(u.len(), a.len() * 2);
    }

    #[test]
    fn csv_round_trips_when_no_nulls(rel in arb_relation()) {
        // NULL round-trips only for non-Str columns (empty string vs NULL is
        // ambiguous in CSV), so replace nulls with typed defaults.
        let schema = rel.schema().clone();
        let rows: Vec<Row> = rel.rows().iter().map(|r| {
            Row::new(r.values().iter().zip(schema.fields()).map(|(v, f)| {
                if v.is_null() {
                    match f.data_type() {
                        DataType::Int => Value::Int(0),
                        DataType::Double => Value::Double(0.0),
                        DataType::Str => Value::str("x"),
                    }
                } else if f.data_type() == DataType::Str && v.as_str() == Some("") {
                    Value::str("x")
                } else { v.clone() }
            }).collect())
        }).collect();
        let clean = Relation::new(schema.clone(), rows).expect("same arity");
        // Only attempt when the column types match the values (arb_value is
        // not schema-typed); filter to rows whose values conform.
        let conforming = clean.filter(|r| {
            r.values().iter().zip(schema.fields()).all(|(v, f)| {
                v.data_type() == Some(f.data_type())
            })
        });
        let text = skalla_relation::csv::to_csv(&conforming);
        let back = skalla_relation::csv::from_csv(&text, schema).expect("parse back");
        prop_assert_eq!(conforming, back);
    }
}

// Interval soundness: evaluating a detail-only expression on concrete rows
// drawn from the declared domains always lands inside the derived interval.
proptest! {
    #[test]
    fn interval_bounds_are_sound(
        lo in -100i64..100,
        width in 0i64..50,
        mul in -5i64..5,
        add in -50i64..50,
        sample in 0i64..50,
    ) {
        let hi = lo + width;
        let v = lo + (sample % (width + 1));
        let domains = DomainMap::new().with("v", Domain::IntRange(lo, hi));
        let e = Expr::dcol("v")
            .mul(Expr::lit(mul))
            .add(Expr::lit(add));
        let iv = eval_interval(&e, &domains).expect("boundable");
        let concrete = (v * mul + add) as f64;
        prop_assert!(iv.lo <= concrete && concrete <= iv.hi,
            "value {concrete} outside {iv}");
    }

    // ¬ψ soundness: any base tuple with a matching detail tuple at the site
    // passes the derived filter.
    #[test]
    fn derived_filter_never_drops_matching_groups(
        lo in -20i64..20,
        width in 0i64..10,
        g in -40i64..40,
    ) {
        let hi = lo + width;
        let domains = DomainMap::new().with("g", Domain::IntRange(lo, hi));
        let theta = Expr::bcol("g").eq(Expr::dcol("g"));
        let constraint = derive_base_constraint(&theta, &domains);
        // A detail tuple with r.g = g exists at the site iff lo <= g <= hi.
        let matches_at_site = g >= lo && g <= hi;
        match constraint {
            BaseConstraint::Filter(f) => {
                let bschema = Schema::of(&[("g", DataType::Int)]);
                let bound = f.bind(&bschema, None).expect("base-only");
                let keeps = bound
                    .eval_row(&Row::new(vec![Value::Int(g)]))
                    .expect("evaluates")
                    .is_truthy();
                if matches_at_site {
                    prop_assert!(keeps, "filter dropped a matching group");
                }
            }
            BaseConstraint::Unrestricted => {}
            BaseConstraint::Unsatisfiable => {
                prop_assert!(!matches_at_site);
            }
        }
    }

    #[test]
    fn modulo_interval_is_sound(v in 0i64..10_000, m in 1i64..64) {
        let domains = DomainMap::new().with("v", Domain::IntRange(0, 10_000));
        let e = Expr::Arith(
            ArithOp::Mod,
            Box::new(Expr::dcol("v")),
            Box::new(Expr::lit(m)),
        );
        let iv = eval_interval(&e, &domains).expect("boundable");
        let concrete = v.rem_euclid(m) as f64;
        prop_assert!(iv.lo <= concrete && concrete <= iv.hi);
    }
}
