//! skalla-lint: the workspace invariant checker.
//!
//! Skalla's correctness story rests on contracts that `rustc` cannot
//! see: the frame-tag registry must agree with the demux layer, the
//! traffic accounting, and the operator docs; every ablation knob must
//! be wired through the plan codec, the environment, and the CLI;
//! library code must not panic on remote input; and nothing
//! nondeterministic (wall clocks, hash-order iteration) may feed busy
//! accounting or wire encoding. This crate enforces those contracts
//! mechanically, as `cargo run -p skalla-lint`, gated in `ci.sh`.
//!
//! Deliberately dependency-free: a hand-rolled comment/string-aware
//! scanner ([`scan`]) feeds pure rule functions ([`rules`]) over an
//! in-memory [`workspace::Workspace`], so every rule is testable against
//! fixture snippets. `panic-hygiene` debt existing before the lint was
//! introduced is frozen in `lint-baseline.txt` ([`baseline`]); all other
//! rules run with an empty baseline. See `docs/STATIC_ANALYSIS.md` for
//! the rule catalog and annotation syntax.

pub mod baseline;
pub mod rules;
pub mod scan;
pub mod workspace;

use workspace::{Diagnostic, Workspace};

/// Run every rule over the workspace, in registry order. Diagnostics
/// come back sorted by path, line, then rule, so output is stable.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (_, rule) in rules::ALL_RULES {
        out.extend(rule(ws));
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    out
}
