//! `cargo run -p skalla-lint` — check the workspace invariants.
//!
//! Exit codes: 0 clean, 1 violations, 2 configuration error (bad flags,
//! unreadable workspace or baseline). Flags:
//!
//! * `--root <dir>` — workspace root (default: this crate's `../..`);
//! * `--baseline <file>` — baseline path (default `<root>/lint-baseline.txt`);
//! * `--update-baseline` — rewrite the baseline to freeze current
//!   `panic-hygiene` findings instead of failing on them.

use skalla_lint::baseline::Baseline;
use skalla_lint::workspace::Workspace;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    update: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut baseline = None;
    let mut update = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(argv.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(argv.next().ok_or("--baseline needs a file")?));
            }
            "--update-baseline" => update = true,
            "--help" | "-h" => {
                println!(
                    "skalla-lint [--root DIR] [--baseline FILE] [--update-baseline]\n\
                     Checks the workspace invariants (see docs/STATIC_ANALYSIS.md)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.txt"));
    Ok(Args {
        root,
        baseline,
        update,
    })
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let ws = Workspace::load(&args.root)
        .map_err(|e| format!("cannot load workspace at {}: {e}", args.root.display()))?;
    let diags = skalla_lint::run_all(&ws);

    if args.update {
        let frozen = Baseline::freeze(&ws, &diags);
        std::fs::write(&args.baseline, frozen.render())
            .map_err(|e| format!("cannot write {}: {e}", args.baseline.display()))?;
        println!(
            "skalla-lint: froze {} panic-hygiene entr{} into {}",
            frozen.len(),
            if frozen.len() == 1 { "y" } else { "ies" },
            args.baseline.display()
        );
        // Strict rules still fail even in update mode.
        let strict: Vec<_> = diags
            .into_iter()
            .filter(|d| !skalla_lint::baseline::BASELINED_RULES.contains(&d.rule))
            .collect();
        return Ok(report(&strict, 0, 0));
    }

    let base = match std::fs::read_to_string(&args.baseline) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("cannot read {}: {e}", args.baseline.display())),
    };
    let filtered = base.filter(&ws, diags);
    Ok(report(&filtered.kept, filtered.suppressed, filtered.stale))
}

fn report(kept: &[skalla_lint::workspace::Diagnostic], suppressed: usize, stale: usize) -> ExitCode {
    for d in kept {
        println!("{}", d.render());
    }
    if stale > 0 {
        eprintln!(
            "skalla-lint: note: {stale} stale baseline entr{} (debt paid down — \
             refresh with --update-baseline)",
            if stale == 1 { "y" } else { "ies" }
        );
    }
    if kept.is_empty() {
        println!("skalla-lint: clean ({suppressed} baselined panic-hygiene findings suppressed)");
        ExitCode::SUCCESS
    } else {
        eprintln!("skalla-lint: {} violation(s)", kept.len());
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("skalla-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
