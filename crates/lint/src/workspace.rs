//! The lint's view of the workspace: a set of scanned source files (and
//! verbatim docs) keyed by repo-relative path.
//!
//! Rules never touch the filesystem themselves — they read a
//! [`Workspace`], which is either loaded from the real repository root
//! ([`Workspace::load`]) or assembled in memory from fixture snippets
//! (the rule self-tests), so every rule is testable against seeded
//! violations without mutating the repo.

use crate::scan::{scan, Scanned};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One source file: raw text plus the comment/string-aware scan.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Raw file contents (used for docs and baseline snippets).
    pub raw: String,
    /// The blanked scan (rules match against this, never against raw).
    pub scanned: Scanned,
}

impl SourceFile {
    /// Scan `raw` into a source file.
    pub fn new(raw: String) -> SourceFile {
        let scanned = scan(&raw);
        SourceFile { raw, scanned }
    }
}

/// The scanned workspace. Paths are repo-relative with `/` separators
/// (`crates/core/src/protocol.rs`), so rules and baselines are portable.
#[derive(Debug, Default)]
pub struct Workspace {
    files: BTreeMap<String, SourceFile>,
}

/// Directories under the repo root that hold first-party sources the
/// lint walks. The vendored `shims/` are API stand-ins for crates.io
/// packages, not our code, and `target/` is build output.
const SOURCE_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

impl Workspace {
    /// Load every `.rs` file under the source roots, plus the Markdown
    /// docs the rules cross-check (`docs/*.md`).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut ws = Workspace::default();
        for top in SOURCE_ROOTS {
            let dir = root.join(top);
            if dir.is_dir() {
                walk(&dir, root, &mut ws)?;
            }
        }
        let docs = root.join("docs");
        if docs.is_dir() {
            for entry in std::fs::read_dir(&docs)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "md") {
                    ws.insert_path(root, &path)?;
                }
            }
        }
        Ok(ws)
    }

    fn insert_path(&mut self, root: &Path, path: &Path) -> std::io::Result<()> {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let raw = std::fs::read_to_string(path)?;
        self.add(&rel, raw);
        Ok(())
    }

    /// Insert an in-memory file (fixtures and tests).
    pub fn add(&mut self, rel_path: &str, raw: String) {
        self.files.insert(rel_path.to_string(), SourceFile::new(raw));
    }

    /// Look up a file by exact repo-relative path.
    pub fn get(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.get(rel_path)
    }

    /// All files, in path order (deterministic diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SourceFile)> {
        self.files.iter().map(|(p, f)| (p.as_str(), f))
    }

    /// Files whose path starts with `prefix`, in path order.
    pub fn under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, &'a SourceFile)> {
        self.iter().filter(move |(p, _)| p.starts_with(prefix))
    }
}

fn walk(dir: &Path, root: &Path, ws: &mut Workspace) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let name = name.as_deref().unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(&path, root, ws)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            ws.insert_path(root, &path)?;
        }
    }
    Ok(())
}

/// One finding: where, which rule, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Kebab-case rule id (e.g. `panic-hygiene`).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line, or 0 for whole-file/registry findings.
    pub line: usize,
    /// Human-readable description with the expected fix.
    pub message: String,
}

impl Diagnostic {
    /// `file:line: rule: message`, the grep-able diagnostic format.
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: {}: {}", self.path, self.rule, self.message)
        } else {
            format!("{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
        }
    }
}
