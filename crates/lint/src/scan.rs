//! A hand-rolled, comment- and string-aware scan of one Rust source file.
//!
//! The workspace is offline (no `syn`), so the rules run over a *blanked*
//! view of each file: string/char literals and comments are replaced by
//! spaces, byte for byte, which preserves line and column positions while
//! guaranteeing that a rule matching `panic!` or `HashMap` never fires on
//! text inside a string literal or a comment. Comment text is kept
//! separately, per line, so rules can still read `///` docs and
//! `// lint: allow(...)` annotations.
//!
//! The scanner understands exactly the constructs that matter for
//! blanking: line comments (`//`, `///`, `//!`), nested block comments,
//! plain/byte/raw string literals (`"…"`, `b"…"`, `r"…"`, `r#"…"#`),
//! char literals (`'x'`, `'\n'`, `'\''`) and — crucially — lifetimes
//! (`'a`), which look like an unterminated char literal to a naive scan.

/// One scanned source file: the original text plus the blanked view and
/// per-line comment metadata.
#[derive(Debug, Clone)]
pub struct Scanned {
    /// Code with comments and string/char literal *contents* blanked to
    /// spaces, split into lines. Same line count and per-line byte
    /// lengths as the input.
    pub code: Vec<String>,
    /// Per line: the comment text on that line (text after `//` or
    /// inside a block comment), trimmed; empty if none.
    pub comments: Vec<String>,
    /// Per line: `true` if the line is inside a `#[cfg(test)]` item
    /// (the attribute line itself, and the whole item it gates).
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    BlockComment(u32),
    /// String literal; the `u32` is the number of `#`s a raw string
    /// closes with (`u32::MAX` = not raw, respect backslash escapes).
    Str(u32),
    CharLit,
}

/// Scan one file. Never fails: the scanner is total over byte strings
/// (malformed files just blank conservatively to end of file).
pub fn scan(src: &str) -> Scanned {
    let mut code = Vec::new();
    let mut comments = Vec::new();
    for line in src.split('\n') {
        code.push(String::with_capacity(line.len()));
        comments.push(String::new());
    }

    let mut mode = Mode::Code;
    let mut escaped = false;
    for (lineno, line) in src.split('\n').enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        // A line comment never crosses a newline.
        if mode == Mode::LineComment {
            mode = Mode::Code;
        }
        escaped = escaped && matches!(mode, Mode::Str(u32::MAX));
        while i < bytes.len() {
            let c = bytes[i] as char;
            match mode {
                Mode::Code => {
                    if c == '/' && bytes.get(i + 1) == Some(&b'/') {
                        mode = Mode::LineComment;
                        comments[lineno].push_str(line[i + 2..].trim());
                        // Blank the rest of the line.
                        for _ in i..bytes.len() {
                            code[lineno].push(' ');
                        }
                        i = bytes.len();
                        continue;
                    }
                    if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                        mode = Mode::BlockComment(1);
                        code[lineno].push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        // Keep the delimiter so tokens stay aligned.
                        code[lineno].push('"');
                        mode = Mode::Str(u32::MAX);
                        escaped = false;
                        i += 1;
                        continue;
                    }
                    if (c == 'r' || c == 'b')
                        && is_raw_or_byte_string(bytes, i)
                        && !prev_is_ident(&code[lineno])
                    {
                        // r"…", r#"…"#, b"…", br#"…"# — find the hash
                        // count and enter raw-string mode.
                        let (hashes, skip) = raw_string_open(bytes, i);
                        for _ in 0..skip {
                            code[lineno].push(' ');
                        }
                        code[lineno].push('"');
                        mode = Mode::Str(hashes);
                        i += skip + 1;
                        continue;
                    }
                    if c == '\'' {
                        if is_char_literal(bytes, i) {
                            code[lineno].push('\'');
                            mode = Mode::CharLit;
                            escaped = false;
                            i += 1;
                            continue;
                        }
                        // A lifetime: copy through verbatim.
                        code[lineno].push('\'');
                        i += 1;
                        continue;
                    }
                    code[lineno].push(c);
                    i += 1;
                }
                // Reset at the top of every line; if we ever get here the
                // scan stays total by just resuming code mode.
                Mode::LineComment => mode = Mode::Code,
                Mode::BlockComment(depth) => {
                    if c == '*' && bytes.get(i + 1) == Some(&b'/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        code[lineno].push_str("  ");
                        i += 2;
                    } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                        mode = Mode::BlockComment(depth + 1);
                        code[lineno].push_str("  ");
                        i += 2;
                    } else {
                        comments[lineno].push(c);
                        code[lineno].push(' ');
                        i += 1;
                    }
                }
                Mode::Str(hashes) => {
                    if hashes == u32::MAX {
                        if escaped {
                            escaped = false;
                        } else if c == '\\' {
                            escaped = true;
                        } else if c == '"' {
                            code[lineno].push('"');
                            mode = Mode::Code;
                            i += 1;
                            continue;
                        }
                        code[lineno].push(' ');
                        i += 1;
                    } else {
                        // Raw string: closes on `"` followed by `hashes`
                        // `#`s; no escapes.
                        if c == '"' && count_hashes(bytes, i + 1) >= hashes {
                            code[lineno].push('"');
                            for _ in 0..hashes {
                                code[lineno].push(' ');
                            }
                            mode = Mode::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                        code[lineno].push(' ');
                        i += 1;
                    }
                }
                Mode::CharLit => {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '\'' {
                        code[lineno].push('\'');
                        mode = Mode::Code;
                        i += 1;
                        continue;
                    }
                    code[lineno].push(' ');
                    i += 1;
                }
            }
        }
        // Multi-line strings/comments: trim the comment text per line.
        comments[lineno] = comments[lineno].trim().to_string();
    }

    let in_test = mark_test_regions(&code);
    Scanned {
        code,
        comments,
        in_test,
    }
}

/// Is the `'` at `i` the start of a char literal (vs a lifetime)?
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        None => false,
        Some(&b'\\') => true,                      // '\n', '\''
        Some(&b'\'') => false,                     // '' — malformed; treat as lifetime-ish
        Some(&c) if is_ident_byte(c) => {
            // 'a could be a lifetime or 'a'; a literal has a closing
            // quote right after one ident char (multi-byte chars are
            // handled by the escape/verbatim paths well enough).
            bytes.get(i + 2) == Some(&b'\'')
        }
        Some(_) => bytes.get(i + 2) == Some(&b'\''), // '(' etc: char if closed
    }
}

fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Does `r`/`b` at `i` open a raw/byte string (`r"`, `r#`, `b"`, `br`)?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'"') {
            return true; // b"…"
        }
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    false
}

/// Was the previous blanked char part of an identifier? (Rules out
/// `var"` false positives like `attr = r` — identifiers ending in `r`.)
fn prev_is_ident(blanked_so_far: &str) -> bool {
    blanked_so_far
        .as_bytes()
        .last()
        .is_some_and(|&c| is_ident_byte(c))
}

/// Hash count and prefix length of a raw/byte string opener at `i`
/// (bytes up to but excluding the opening quote).
fn raw_string_open(bytes: &[u8], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
    }
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (if hashes == 0 && bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'"') {
        u32::MAX // b"…" is an escaped (non-raw) string
    } else {
        hashes
    }, j - i)
}

fn count_hashes(bytes: &[u8], from: usize) -> u32 {
    let mut n = 0;
    while bytes.get(from + n as usize) == Some(&b'#') {
        n += 1;
    }
    n
}

/// Mark every line covered by a `#[cfg(test)]`-gated item: the attribute
/// line, any further attributes, and the braced item that follows.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut line = 0;
    while line < code.len() {
        if code[line].contains("#[cfg(test)]") {
            let start = line;
            // Find the opening brace of the gated item (skipping further
            // attribute lines), then its matching close.
            let mut depth = 0i32;
            let mut opened = false;
            let mut end = start;
            'outer: for (l, text) in code.iter().enumerate().skip(start) {
                for c in text.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 && l > start => {
                            // Brace-less gated item (`#[cfg(test)] use …;`).
                            end = l;
                            break 'outer;
                        }
                        _ => {}
                    }
                }
                if opened && depth == 0 {
                    end = l;
                    break;
                }
                end = l;
            }
            for flag in in_test.iter_mut().take(end + 1).skip(start) {
                *flag = true;
            }
            line = end + 1;
        } else {
            line += 1;
        }
    }
    in_test
}

/// Does `line` contain `word` as a whole identifier (not as a substring
/// of a longer identifier)?
pub fn has_ident(line: &str, word: &str) -> bool {
    find_ident(line, word).is_some()
}

/// Byte offset of the first whole-identifier occurrence of `word`.
pub fn find_ident(line: &str, word: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_and_comments() {
        let s = scan("let x = \"panic!\"; // unwrap() here\nlet y = 1;");
        assert!(!s.code[0].contains("panic"));
        assert!(!s.code[0].contains("unwrap"));
        assert_eq!(s.comments[0], "unwrap() here");
        assert_eq!(s.code[1], "let y = 1;");
    }

    #[test]
    fn raw_and_byte_strings() {
        let s = scan("let a = r#\"has \"quotes\" and panic!\"#; let b = 2;");
        assert!(!s.code[0].contains("panic"));
        assert!(s.code[0].contains("let b = 2;"));
        let s = scan("let a = b\"panic!\\\"\"; let c = 3;");
        assert!(!s.code[0].contains("panic"));
        assert!(s.code[0].contains("let c = 3;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let q = '\\''; g()");
        assert!(s.code[0].contains("fn f<'a>"));
        assert!(s.code[0].contains("let c = ' ';"), "char contents blanked: {}", s.code[0]);
        assert!(s.code[0].contains("g()"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("a(); /* outer /* inner unwrap() */ still out */ b();");
        assert!(s.code[0].contains("a();"));
        assert!(s.code[0].contains("b();"));
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.comments[0].contains("inner unwrap()"));
    }

    #[test]
    fn multiline_string_blanks_until_close() {
        let s = scan("let m = \"line one\npanic! two\"; done();");
        assert!(!s.code[1].contains("panic"));
        assert!(s.code[1].contains("done();"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}";
        let s = scan(src);
        assert!(!s.in_test[0]);
        assert!(s.in_test[1] && s.in_test[2] && s.in_test[3] && s.in_test[4]);
        assert!(!s.in_test[5]);
    }

    #[test]
    fn ident_matching_respects_boundaries() {
        assert!(has_ident("x.unwrap()", "unwrap"));
        assert!(!has_ident("x.unwrap_or(1)", "unwrap"));
        assert!(!has_ident("my_unwrap()", "unwrap"));
        assert_eq!(find_ident("a unwrapped unwrap", "unwrap"), Some(12));
    }
}
