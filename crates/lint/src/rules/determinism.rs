//! Determinism hygiene: `wall-clock` and `unordered-iter`.
//!
//! Two rules guard the engine's central reproducibility claims — that
//! site-busy figures are thread-CPU measurements (never wall clocks,
//! which charge a simulated site for time it spent descheduled) and that
//! everything crossing the wire or feeding a result merge is
//! deterministically ordered (never raw `HashMap`/`HashSet` iteration
//! order, which varies per process thanks to `RandomState`).

use super::{allowed, diag};
use crate::scan::{find_ident, has_ident};
use crate::workspace::{Diagnostic, SourceFile, Workspace};

/// Site-busy and merge-order code paths: files where a wall-clock read
/// would silently corrupt busy accounting or merge determinism. The one
/// approved clock module is `skalla-obs::timing` (`BusyTimer`), which
/// owns the CPU-clock-with-wall-fallback policy.
const CLOCK_SCOPE: &[&str] = &[
    "crates/core/src/site.rs",
    "crates/core/src/skew.rs",
    "crates/core/src/coordinator.rs",
    "crates/gmdj/src/eval.rs",
    "crates/gmdj/src/columnar.rs",
    "crates/gmdj/src/operator.rs",
    "crates/gmdj/src/agg.rs",
    "crates/gmdj/src/chain.rs",
];

/// Files whose output feeds wire encoding or result merge order.
const ORDER_SCOPE: &[&str] = &[
    "crates/core/src/protocol.rs",
    "crates/core/src/plan_codec.rs",
    "crates/core/src/coordinator.rs",
    "crates/core/src/cluster.rs",
    "crates/core/src/site.rs",
    "crates/core/src/skew.rs",
    "crates/core/src/remote.rs",
    "crates/gmdj/src/codec.rs",
    "crates/relation/src/codec.rs",
];

/// `wall-clock`: no `Instant::now` / `SystemTime::now` in site-busy or
/// merge-order code paths; use `skalla_obs::BusyTimer` (thread CPU time)
/// or justify with `// lint: allow(wall-clock) <reason>`.
pub fn wall_clock(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (path, file) in ws.iter() {
        if !CLOCK_SCOPE.contains(&path) {
            continue;
        }
        for (lineno, code) in file.scanned.code.iter().enumerate() {
            if file.scanned.in_test[lineno] {
                continue;
            }
            for clock in ["Instant", "SystemTime"] {
                let Some(at) = find_ident(code, clock) else {
                    continue;
                };
                if !code[at..].starts_with(&format!("{clock}::now")) {
                    continue;
                }
                if allowed(file, lineno, "wall-clock") {
                    continue;
                }
                out.push(diag(
                    "wall-clock",
                    path,
                    Some(lineno),
                    format!(
                        "`{clock}::now` in a site-busy/merge-order path; measure with \
                         `skalla_obs::BusyTimer` (thread CPU time) or justify with \
                         `// lint: allow(wall-clock) <reason>`"
                    ),
                ));
            }
        }
    }
    out
}

/// `unordered-iter`: in wire-encoding and merge-order files, iterating a
/// `HashMap`/`HashSet` must be justified (`// lint: allow(unordered-iter)
/// <reason>`) — or replaced with a sorted collect / `BTreeMap`.
pub fn unordered_iter(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (path, file) in ws.iter() {
        if !ORDER_SCOPE.contains(&path) {
            continue;
        }
        let names = hash_bindings(file);
        for (lineno, code) in file.scanned.code.iter().enumerate() {
            if file.scanned.in_test[lineno] {
                continue;
            }
            for name in &names {
                let Some(kind) = iterated(code, name) else {
                    continue;
                };
                if allowed(file, lineno, "unordered-iter") {
                    continue;
                }
                out.push(diag(
                    "unordered-iter",
                    path,
                    Some(lineno),
                    format!(
                        "`{name}` is a HashMap/HashSet and `{kind}` iterates it in hash \
                         order, which is nondeterministic per process; sort before \
                         encoding/merging or justify with \
                         `// lint: allow(unordered-iter) <reason>`"
                    ),
                ));
            }
        }
    }
    out
}

/// Names bound to a `HashMap`/`HashSet` *as the outermost type* in this
/// file: `let NAME = HashMap::…`, `NAME: HashMap<…>` (params, struct
/// fields), including `&`/`&mut` borrows. `Vec<HashMap<…>>` does not
/// bind — iterating the vector is ordered.
fn hash_bindings(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for (lineno, code) in file.scanned.code.iter().enumerate() {
        if file.scanned.in_test[lineno] {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(at) = find_ident(&code[from..], ty).map(|p| p + from) {
                if let Some(name) = binding_before(code, at) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
                from = at + ty.len();
            }
        }
    }
    names
}

/// The identifier this `HashMap`/`HashSet` occurrence (at byte `at`)
/// binds, if the occurrence is the outermost type of a `let` or a
/// `name: Type` annotation.
fn binding_before(code: &str, at: usize) -> Option<String> {
    let head = code[..at].trim_end();
    // `let NAME =` / `let mut NAME =` / `let NAME: ` forms, and
    // `NAME: ` / `NAME: &` / `NAME: &mut ` annotations. Everything
    // between the separator and the type must be borrow sigils only.
    let head = head
        .strip_suffix("&mut")
        .or_else(|| head.strip_suffix('&'))
        .unwrap_or(head)
        .trim_end();
    if let Some(before_eq) = head.strip_suffix('=') {
        // `let [mut] NAME = [&[mut]] HashMap::…`
        let before_eq = before_eq.trim_end();
        let name = last_ident(before_eq)?;
        let lead = before_eq[..before_eq.len() - name.len()].trim_end();
        return (lead.ends_with("let") || lead.ends_with("mut")).then_some(name);
    }
    if let Some(before_colon) = head.strip_suffix(':') {
        let name = last_ident(before_colon.trim_end())?;
        // Skip path segments (`std::collections::HashMap`), which leave
        // a trailing `:` from `::`.
        if before_colon.trim_end().ends_with(':') {
            return None;
        }
        return Some(name);
    }
    None
}

fn last_ident(s: &str) -> Option<String> {
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
        .last()?
        .0;
    let name = &s[start..end];
    let first = name.chars().next()?;
    (first == '_' || first.is_ascii_alphabetic()).then(|| name.to_string())
}

/// If `code` iterates `name` unordered, the offending form.
fn iterated(code: &str, name: &str) -> Option<&'static str> {
    const ITERS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
        ".drain(",
    ];
    let mut from = 0;
    while let Some(at) = find_ident(&code[from..], name).map(|p| p + from) {
        let rest = &code[at + name.len()..];
        for it in ITERS {
            if rest.starts_with(it) {
                return Some(it);
            }
        }
        // `for x in name {` / `for x in &name {`
        let head = code[..at].trim_end();
        let borrowed = head.strip_suffix("&mut").or_else(|| head.strip_suffix('&'));
        let head = borrowed.unwrap_or(head).trim_end();
        if head.ends_with(" in") && has_ident(code, "for") {
            let next = rest.trim_start().chars().next();
            if matches!(next, Some('{') | None) {
                return Some("for … in");
            }
        }
        from = at + name.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(path: &str, src: &str) -> Workspace {
        let mut ws = Workspace::default();
        ws.add(path, src.to_string());
        ws
    }

    #[test]
    fn flags_hashmap_iteration_in_scope() {
        let src = "fn f(map: HashMap<String, u32>, enc: &mut Encoder) {\n    for (k, v) in &map {\n        enc.put_str(k);\n    }\n}\n";
        let d = unordered_iter(&ws("crates/core/src/protocol.rs", src));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        // Same file out of scope: silent.
        assert!(unordered_iter(&ws("crates/core/src/plan.rs", src)).is_empty());
    }

    #[test]
    fn vec_of_hashmap_is_ordered() {
        let src = "fn f(sites: Vec<HashMap<String, u32>>) {\n    for s in &sites {}\n}\n";
        assert!(unordered_iter(&ws("crates/core/src/protocol.rs", src)).is_empty());
    }

    #[test]
    fn sorted_collect_and_annotation_pass() {
        let src = "fn f(map: HashMap<String, u32>) {\n    let mut keys: Vec<&String> = map.keys().collect(); // lint: allow(unordered-iter) sorted on the next line\n    keys.sort();\n}\n";
        assert!(unordered_iter(&ws("crates/core/src/protocol.rs", src)).is_empty());
    }

    #[test]
    fn wall_clock_in_scope_only_and_annotatable() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(wall_clock(&ws("crates/core/src/site.rs", src)).len(), 1);
        assert!(wall_clock(&ws("crates/obs/src/timing.rs", src)).is_empty());
        let ok = "fn f() { let t = Instant::now(); } // lint: allow(wall-clock) span arg only\n";
        assert!(wall_clock(&ws("crates/core/src/site.rs", ok)).is_empty());
        // `Instant` alone (a type annotation) is fine.
        assert!(wall_clock(&ws("crates/core/src/site.rs", "fn f(t: Instant) {}\n")).is_empty());
    }
}
