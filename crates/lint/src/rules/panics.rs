//! `panic-hygiene`: library code must not panic on remote or malformed
//! input.
//!
//! Flags `.unwrap(`, `.expect(`, `panic!`, `unreachable!`, `todo!` and
//! `unimplemented!` in non-test library code. A justified use carries
//! `// lint: allow(panic) <reason>`; everything else must either be
//! rewritten as a proper `Result` or live in the frozen baseline
//! (`lint-baseline.txt`), which records existing debt — new debt is a
//! hard error.

use super::{allowed, diag};
use crate::scan::find_ident;
use crate::workspace::{Diagnostic, Workspace};

/// Library-source prefixes in scope. Binaries under `src/bin`, benches,
/// examples and integration tests are out: a panic there aborts a tool,
/// not a remote site serving someone else's query. The lint crate lints
/// itself.
const SCOPE: &[&str] = &[
    "crates/relation/src/",
    "crates/gmdj/src/",
    "crates/net/src/",
    "crates/core/src/",
    "crates/query/src/",
    "crates/obs/src/",
    "crates/datagen/src/",
    "crates/lint/src/",
    "src/lib.rs",
];

/// The panic-capable method calls (matched as `.name(`).
const METHODS: &[&str] = &["unwrap", "expect"];
/// The panic-capable macros (matched as `name!`).
const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run the rule over every in-scope file.
pub fn panic_hygiene(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (path, file) in ws.iter() {
        if !SCOPE.iter().any(|p| path.starts_with(p)) {
            continue;
        }
        for (lineno, code) in file.scanned.code.iter().enumerate() {
            if file.scanned.in_test[lineno] {
                continue;
            }
            for name in hits(code) {
                if allowed(file, lineno, "panic") {
                    continue;
                }
                out.push(diag(
                    "panic-hygiene",
                    path,
                    Some(lineno),
                    format!(
                        "`{name}` in library code can panic on bad input; return an error, \
                         or justify with `// lint: allow(panic) <reason>`"
                    ),
                ));
            }
        }
    }
    out
}

/// Panic-capable constructs on one blanked code line, in order.
pub(crate) fn hits(code: &str) -> Vec<&'static str> {
    let bytes = code.as_bytes();
    let mut found = Vec::new();
    for m in METHODS {
        // `.unwrap(` — exactly this method, so `.unwrap_or(..)` and
        // free functions named `unwrap` don't match.
        let mut from = 0;
        while let Some(at) = find_ident(&code[from..], m).map(|p| p + from) {
            let before_dot = at > 0 && bytes[at - 1] == b'.';
            let after_paren = bytes.get(at + m.len()) == Some(&b'(');
            if before_dot && after_paren {
                found.push(*m);
            }
            from = at + m.len();
        }
    }
    for m in MACROS {
        let mut from = 0;
        while let Some(at) = find_ident(&code[from..], m).map(|p| p + from) {
            if bytes.get(at + m.len()) == Some(&b'!') {
                found.push(*m);
            }
            from = at + m.len();
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_constructs_only() {
        assert_eq!(hits("x.unwrap()"), vec!["unwrap"]);
        assert_eq!(hits("x.expect(\"\")"), vec!["expect"]);
        assert_eq!(hits("panic!(\"boom\")"), vec!["panic"]);
        assert!(hits("x.unwrap_or(1).unwrap_or_else(f)").is_empty());
        assert!(hits("x.expect_err(\"\")").is_empty());
        assert!(hits("let panic_count = 1; repanic!()").is_empty());
        assert_eq!(hits("a.unwrap(); unreachable!()"), vec!["unwrap", "unreachable"]);
    }

    #[test]
    fn test_code_and_out_of_scope_files_are_ignored() {
        let mut ws = Workspace::default();
        ws.add(
            "crates/core/src/x.rs",
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn g() { y.unwrap(); }\n}\n".into(),
        );
        ws.add("crates/bench/src/y.rs", "fn f() { x.unwrap(); }\n".into());
        let d = panic_hygiene(&ws);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].path.as_str(), d[0].line), ("crates/core/src/x.rs", 1));
    }

    #[test]
    fn annotation_suppresses() {
        let mut ws = Workspace::default();
        ws.add(
            "crates/core/src/x.rs",
            "fn f() { x.unwrap(); } // lint: allow(panic) index bounded by loop above\n".into(),
        );
        assert!(panic_hygiene(&ws).is_empty());
    }
}
