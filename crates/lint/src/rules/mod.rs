//! The rule engine: every rule is a pure function from a scanned
//! [`Workspace`] to a list of [`Diagnostic`]s.
//!
//! Rules are heuristic token scans, not type-checked analysis — the
//! escape hatch for a justified exception is an inline annotation:
//!
//! ```text
//! // lint: allow(<rule-key>) <non-empty reason>
//! ```
//!
//! on the offending line or the line directly above it. The reason is
//! mandatory: an annotation without one does not suppress the finding,
//! so every exception is self-documenting at the use site. Rule keys:
//! `panic` (panic-hygiene), `wall-clock`, `unordered-iter`.

mod determinism;
mod knobs;
mod panics;
mod protocol;

use crate::workspace::{Diagnostic, Workspace};

pub use determinism::{unordered_iter, wall_clock};
pub use knobs::knob_wiring;
pub use panics::panic_hygiene;
pub use protocol::protocol_registry;

/// A rule: a pure pass over the scanned workspace producing diagnostics.
pub type Rule = fn(&Workspace) -> Vec<Diagnostic>;

/// All rules, in report order. `panic-hygiene` is the only rule the
/// baseline applies to (existing debt is frozen; new debt is an error).
pub const ALL_RULES: &[(&str, Rule)] = &[
    ("protocol-registry", protocol_registry),
    ("knob-wiring", knob_wiring),
    ("panic-hygiene", panic_hygiene),
    ("wall-clock", wall_clock),
    ("unordered-iter", unordered_iter),
];

/// Does line `line` (0-based) of `file` carry a valid
/// `// lint: allow(<key>) <reason>` annotation — on the line itself, or
/// on a comment-only line directly above? (A trailing annotation on the
/// previous *code* line blesses that line only, not its neighbors.)
pub(crate) fn allowed(file: &crate::workspace::SourceFile, line: usize, key: &str) -> bool {
    let check = |l: usize| annotation_reason(file.scanned.comments.get(l), key).is_some();
    let comment_only = |l: usize| {
        file.scanned
            .code
            .get(l)
            .is_some_and(|c| c.trim().is_empty())
    };
    check(line) || (line > 0 && check(line - 1) && comment_only(line - 1))
}

/// The reason text of a `lint: allow(<key>)` annotation in a comment,
/// if present and non-empty.
fn annotation_reason(comment: Option<&String>, key: &str) -> Option<String> {
    let comment = comment?;
    let marker = format!("lint: allow({key})");
    let at = comment.find(&marker)?;
    let reason = comment[at + marker.len()..].trim();
    if reason.is_empty() {
        None
    } else {
        Some(reason.to_string())
    }
}

/// Shared diagnostic constructor.
pub(crate) fn diag(
    rule: &'static str,
    path: &str,
    line0: Option<usize>,
    message: impl Into<String>,
) -> Diagnostic {
    Diagnostic {
        rule,
        path: path.to_string(),
        line: line0.map(|l| l + 1).unwrap_or(0),
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    #[test]
    fn annotation_requires_reason() {
        let f = SourceFile::new(
            "x.unwrap(); // lint: allow(panic) guarded by is_some above\ny.unwrap(); // lint: allow(panic)\n".into(),
        );
        assert!(allowed(&f, 0, "panic"));
        assert!(!allowed(&f, 1, "panic"), "reason-less annotation is void");
        assert!(!allowed(&f, 0, "wall-clock"), "key must match");
    }

    #[test]
    fn annotation_on_preceding_line_counts() {
        let f = SourceFile::new("// lint: allow(panic) len checked on entry\nx.unwrap();\n".into());
        assert!(allowed(&f, 1, "panic"));
    }
}
