//! `knob-wiring`: every ablation knob is fully wired.
//!
//! An `EvalOptions` field that exists in the struct but is missing from
//! the plan codec silently resets to its default on remote sites; one
//! missing from the env/CLI surface can't be ablated in experiments.
//! This rule requires each field to appear in all three places:
//!
//! 1. the plan codec (`crates/core/src/plan_codec.rs`),
//! 2. an `SKALLA_*` environment read in the field's default initializer,
//! 3. the CLI (`src/bin/skalla-cli.rs`).

use super::diag;
use crate::scan::has_ident;
use crate::workspace::{Diagnostic, Workspace};

/// Where `EvalOptions` lives.
const OPTIONS_FILE: &str = "crates/gmdj/src/eval.rs";
/// Where plans (including `EvalOptions`) are encoded for the wire.
const CODEC_FILE: &str = "crates/core/src/plan_codec.rs";
/// The operator-facing CLI.
const CLI_FILE: &str = "src/bin/skalla-cli.rs";

/// Run the rule. Emits one diagnostic per missing wiring point.
pub fn knob_wiring(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(options) = ws.get(OPTIONS_FILE) else {
        // A fixture workspace without the options file has nothing to check.
        return out;
    };
    let fields = struct_fields(&options.scanned.code, "EvalOptions");
    if fields.is_empty() {
        out.push(diag(
            "knob-wiring",
            OPTIONS_FILE,
            None,
            "could not locate any `pub` fields of `struct EvalOptions`; \
             the rule needs updating if the struct moved",
        ));
        return out;
    }

    let default_body = region(&options.scanned.code, "impl Default for EvalOptions");
    for (lineno, name) in &fields {
        // (1) plan codec.
        let in_codec = ws
            .get(CODEC_FILE)
            .is_some_and(|f| mentions(&f.scanned.code, &f.scanned.in_test, name));
        if !in_codec {
            out.push(diag(
                "knob-wiring",
                OPTIONS_FILE,
                Some(*lineno),
                format!(
                    "`EvalOptions::{name}` is not referenced in {CODEC_FILE}; \
                     an un-encoded knob silently resets to its default on remote sites"
                ),
            ));
        }
        // (2) SKALLA_* env read in the default initializer. Env var names
        // are string literals (blanked in the code view), so this check
        // reads the raw text of the initializer lines.
        let has_env = default_body
            .as_ref()
            .is_some_and(|(start, end)| initializer_has_env(options, *start, *end, name));
        if !has_env {
            out.push(diag(
                "knob-wiring",
                OPTIONS_FILE,
                Some(*lineno),
                format!(
                    "`EvalOptions::{name}` has no `SKALLA_*` environment read in \
                     `impl Default for EvalOptions`; every knob must be settable \
                     without recompiling"
                ),
            ));
        }
        // (3) CLI flag.
        let in_cli = ws
            .get(CLI_FILE)
            .is_some_and(|f| mentions(&f.scanned.code, &f.scanned.in_test, name));
        if !in_cli {
            out.push(diag(
                "knob-wiring",
                OPTIONS_FILE,
                Some(*lineno),
                format!(
                    "`EvalOptions::{name}` is not referenced in {CLI_FILE}; \
                     every knob needs an operator-facing flag"
                ),
            ));
        }
    }
    out
}

/// `(line0, name)` of each `pub name: ty` field of `struct NAME`.
fn struct_fields(code: &[String], name: &str) -> Vec<(usize, String)> {
    let marker = format!("pub struct {name}");
    let Some((start, end)) = region(code, &marker) else {
        return Vec::new();
    };
    let mut fields = Vec::new();
    for (lineno, line) in code.iter().enumerate().take(end + 1).skip(start) {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        let Some(colon) = rest.find(':') else {
            continue;
        };
        let field = rest[..colon].trim();
        if !field.is_empty()
            && field
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            fields.push((lineno, field.to_string()));
        }
    }
    fields
}

/// `(start, end)` line span of the brace-matched region opened on the
/// first line containing `marker`.
fn region(code: &[String], marker: &str) -> Option<(usize, usize)> {
    let start = code.iter().position(|l| l.contains(marker))?;
    let mut depth = 0i32;
    let mut opened = false;
    for (lineno, line) in code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some((start, lineno));
        }
    }
    None
}

/// Does the field's initializer inside the `Default` impl read an
/// `SKALLA_*` variable? The initializer runs from the `name:` line to
/// the line before the next field initializer (or the region end).
fn initializer_has_env(
    file: &crate::workspace::SourceFile,
    start: usize,
    end: usize,
    name: &str,
) -> bool {
    let code = &file.scanned.code;
    let raw_lines: Vec<&str> = file.raw.split('\n').collect();
    let field_at = (start..=end).find(|&l| {
        let t = code[l].trim_start();
        t.starts_with(&format!("{name}:")) || t.starts_with(&format!("{name} :"))
    });
    let Some(field_at) = field_at else {
        return false;
    };
    for (l, line) in code.iter().enumerate().take(end + 1).skip(field_at) {
        if l > field_at {
            // Stop at the next field initializer.
            let t = line.trim_start();
            if t.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                && t.contains(':')
                && !t.contains("::")
            {
                break;
            }
        }
        if raw_lines.get(l).is_some_and(|r| r.contains("SKALLA_")) {
            return true;
        }
    }
    false
}

/// Is `name` used as an identifier on any non-test line?
fn mentions(code: &[String], in_test: &[bool], name: &str) -> bool {
    code.iter()
        .enumerate()
        .any(|(l, line)| !in_test[l] && has_ident(line, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPTIONS: &str = "\
/// Knobs.
pub struct EvalOptions {
    /// Threads.
    pub parallelism: usize,
    /// Columnar kernel.
    pub columnar: bool,
    /// Semantic result cache.
    pub cache: bool,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            parallelism: env_usize(\"SKALLA_THREADS\", 1),
            columnar: env_flag(\"SKALLA_COLUMNAR\", true),
            cache: env_flag(\"SKALLA_CACHE\", true),
        }
    }
}
";

    fn full_ws() -> Workspace {
        let mut ws = Workspace::default();
        ws.add(OPTIONS_FILE, OPTIONS.into());
        ws.add(
            CODEC_FILE,
            "fn put(o: &EvalOptions) { enc(o.parallelism); enc_b(o.columnar); enc_b(o.cache); }\n"
                .into(),
        );
        ws.add(
            CLI_FILE,
            "fn flags(e: &mut EvalOptions) { e.parallelism = 4; e.columnar = false; e.cache = false; }\n"
                .into(),
        );
        ws
    }

    #[test]
    fn fully_wired_passes() {
        assert!(knob_wiring(&full_ws()).is_empty());
    }

    #[test]
    fn each_missing_surface_fires() {
        let mut ws = Workspace::default();
        ws.add(OPTIONS_FILE, OPTIONS.into());
        ws.add(
            CODEC_FILE,
            "fn put(o: &EvalOptions) { enc(o.parallelism); enc_b(o.cache); }\n".into(),
        );
        ws.add(
            CLI_FILE,
            "fn flags(e: &mut EvalOptions) { e.parallelism = 4; e.cache = false; }\n".into(),
        );
        let d = knob_wiring(&ws);
        // `columnar` missing from codec + CLI = 2 findings.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.message.contains("columnar")));
    }

    #[test]
    fn missing_env_read_fires() {
        let mut ws = full_ws();
        let no_env = OPTIONS.replace("env_flag(\"SKALLA_COLUMNAR\", true)", "true");
        ws.add(OPTIONS_FILE, no_env);
        let d = knob_wiring(&ws);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SKALLA_"));
    }

    #[test]
    fn missing_struct_is_a_config_error() {
        let mut ws = Workspace::default();
        ws.add(OPTIONS_FILE, "pub struct Other { pub x: u8 }\n".into());
        let d = knob_wiring(&ws);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 0);
    }
}
