//! `protocol-registry`: the frame-tag registry is closed and consistent.
//!
//! The v2 protocol's tag space is defined once, in
//! `crates/core/src/protocol.rs`. This rule cross-checks that registry
//! against everything that must agree with it:
//!
//! * tags are unique and each carries a rustdoc comment;
//! * every tag is handled somewhere in the demux/dispatch layer;
//! * every `NetStats` record site classifies by tag (telemetry-style
//!   exemptions must name the tag constant they exempt — an
//!   unclassified record site is an error);
//! * the frame catalog in `docs/ARCHITECTURE.md` lists exactly the
//!   registry's tags, under the right names, with the `Accounted?`
//!   column matching what the record sites actually exempt.

use super::diag;
use crate::scan::has_ident;
use crate::workspace::{Diagnostic, Workspace};
use std::collections::BTreeMap;

/// The single source of truth for frame tags.
const PROTOCOL_FILE: &str = "crates/core/src/protocol.rs";
/// Transport-level constants (`TELEMETRY_TAG`) that registry entries may
/// alias.
const TRANSPORT_FILE: &str = "crates/net/src/transport.rs";
/// The operator-facing frame catalog the registry must stay in sync with.
const DOC_FILE: &str = "docs/ARCHITECTURE.md";
/// Files implementing frame demux/dispatch; every tag must be consumed
/// by at least one of them.
const DISPATCH_FILES: &[&str] = &[
    "crates/core/src/site.rs",
    "crates/core/src/coordinator.rs",
    "crates/core/src/cluster.rs",
    "crates/core/src/remote.rs",
    "crates/core/src/warehouse.rs",
    "crates/net/src/mux.rs",
];
/// How many preceding code lines a record site may be from its
/// tag-classifying guard.
const GUARD_WINDOW: usize = 8;

/// One parsed `pub const TAG_*` registry entry.
struct TagConst {
    name: String,
    /// Resolved numeric value, if the initializer parsed/resolved.
    value: Option<u8>,
    /// Alias identifier (e.g. `TELEMETRY_TAG`) if the initializer is a
    /// path rather than a literal.
    alias: Option<String>,
    line0: usize,
    has_doc: bool,
}

/// Run the rule.
pub fn protocol_registry(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(proto) = ws.get(PROTOCOL_FILE) else {
        return out;
    };
    let aliases = tag_aliases(ws);
    let tags = parse_tags(proto, &aliases);
    if tags.is_empty() {
        out.push(diag(
            "protocol-registry",
            PROTOCOL_FILE,
            None,
            "no `pub const TAG_*: u8` registry entries found; the rule needs \
             updating if the registry moved",
        ));
        return out;
    }

    // Resolution, rustdoc, uniqueness.
    let mut by_value: BTreeMap<u8, &str> = BTreeMap::new();
    for t in &tags {
        if !t.has_doc {
            out.push(diag(
                "protocol-registry",
                PROTOCOL_FILE,
                Some(t.line0),
                format!("`{}` has no rustdoc comment; every frame tag documents its meaning", t.name),
            ));
        }
        let Some(v) = t.value else {
            out.push(diag(
                "protocol-registry",
                PROTOCOL_FILE,
                Some(t.line0),
                format!(
                    "could not resolve the value of `{}` (initializer is neither a \
                     literal nor a known `*_TAG` alias)",
                    t.name
                ),
            ));
            continue;
        };
        if let Some(prev) = by_value.insert(v, &t.name) {
            out.push(diag(
                "protocol-registry",
                PROTOCOL_FILE,
                Some(t.line0),
                format!("`{}` reuses tag value {v}, already taken by `{prev}`", t.name),
            ));
        }
    }

    // Dispatch coverage: the tag (or its alias) appears in some demux file.
    for t in &tags {
        let mut names = vec![t.name.as_str()];
        if let Some(a) = &t.alias {
            names.push(a.as_str());
        }
        let handled = DISPATCH_FILES.iter().any(|path| {
            ws.get(path).is_some_and(|f| {
                f.scanned.code.iter().enumerate().any(|(l, line)| {
                    !f.scanned.in_test[l] && names.iter().any(|n| has_ident(line, n))
                })
            })
        });
        if !handled {
            out.push(diag(
                "protocol-registry",
                PROTOCOL_FILE,
                Some(t.line0),
                format!(
                    "`{}` is not referenced by any demux/dispatch file ({}); \
                     an unhandled tag is dead wire format",
                    t.name,
                    DISPATCH_FILES.join(", ")
                ),
            ));
        }
    }

    // Accounting: every record site classifies by tag; the union of tags
    // named at record sites is the accounting-exempt set.
    let (exempt, mut acct_diags) = accounting_exemptions(ws, &tags, &aliases);
    out.append(&mut acct_diags);

    // Frame catalog in the docs.
    out.append(&mut check_doc_catalog(ws, &tags, &exempt));

    out
}

/// `*_TAG` constants defined at transport level, by name → value.
fn tag_aliases(ws: &Workspace) -> BTreeMap<String, u8> {
    let mut aliases = BTreeMap::new();
    if let Some(f) = ws.get(TRANSPORT_FILE) {
        for line in &f.scanned.code {
            let Some((name, init)) = parse_const_u8(line) else {
                continue;
            };
            if let (true, Ok(v)) = (name.ends_with("_TAG"), init.parse::<u8>()) {
                aliases.insert(name, v);
            }
        }
    }
    aliases
}

/// `(name, initializer)` if `line` is a `const NAME: u8 = INIT;` item.
fn parse_const_u8(line: &str) -> Option<(String, String)> {
    let at = line.find("const ")?;
    let rest = &line[at + "const ".len()..];
    let (name, rest) = rest.split_once(':')?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("u8")?;
    let (_, init) = rest.split_once('=')?;
    let init = init.trim().trim_end_matches(';').trim();
    Some((name.trim().to_string(), init.to_string()))
}

/// Parse the registry entries out of the protocol file.
fn parse_tags(proto: &crate::workspace::SourceFile, aliases: &BTreeMap<String, u8>) -> Vec<TagConst> {
    let mut tags = Vec::new();
    for (lineno, line) in proto.scanned.code.iter().enumerate() {
        if proto.scanned.in_test[lineno] || !line.contains("pub const TAG_") {
            continue;
        }
        let Some((name, init)) = parse_const_u8(line) else {
            continue;
        };
        let (value, alias) = match init.parse::<u8>() {
            Ok(v) => (Some(v), None),
            Err(_) => {
                let last = init.rsplit("::").next().unwrap_or(&init).to_string();
                (aliases.get(&last).copied(), Some(last))
            }
        };
        // Rustdoc: the comment on the preceding line starts with `/`
        // (the scanner records text after `//`, so `///` leaves `/ …`).
        let has_doc = lineno > 0
            && proto
                .scanned
                .comments
                .get(lineno - 1)
                .is_some_and(|c| c.starts_with('/'));
        tags.push(TagConst {
            name,
            value,
            alias,
            line0: lineno,
            has_doc,
        });
    }
    tags
}

/// Check every `NetStats` record call site in `crates/net/src` for a
/// tag-classifying guard, and collect the exempted tag values.
fn accounting_exemptions(
    ws: &Workspace,
    tags: &[TagConst],
    aliases: &BTreeMap<String, u8>,
) -> (Vec<u8>, Vec<Diagnostic>) {
    let mut known: BTreeMap<String, u8> = aliases.clone();
    for t in tags {
        if let Some(v) = t.value {
            known.insert(t.name.clone(), v);
        }
    }
    let mut exempt = Vec::new();
    let mut out = Vec::new();
    for (path, file) in ws.under("crates/net/src/") {
        if path.ends_with("/stats.rs") {
            continue; // the sink itself, not a call site
        }
        for (lineno, code) in file.scanned.code.iter().enumerate() {
            if file.scanned.in_test[lineno] {
                continue;
            }
            let is_site = [".record(", ".record_msg(", ".record_msg_for("]
                .iter()
                .any(|p| code.contains(p));
            if !is_site {
                continue;
            }
            let window_start = lineno.saturating_sub(GUARD_WINDOW);
            let mut classified = false;
            for l in window_start..=lineno {
                for ident in tag_idents(&file.scanned.code[l]) {
                    classified = true;
                    if let Some(v) = known.get(&ident) {
                        if !exempt.contains(v) {
                            exempt.push(*v);
                        }
                    }
                }
            }
            if !classified {
                out.push(diag(
                    "protocol-registry",
                    path,
                    Some(lineno),
                    "NetStats record site has no tag-classifying guard within the \
                     preceding lines; every record site must count or exempt by an \
                     explicit `TAG_*` constant",
                ));
            }
        }
    }
    exempt.sort_unstable();
    (exempt, out)
}

/// All `TAG_*` / `*_TAG` identifiers on one code line.
fn tag_idents(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_alphabetic() && bytes[i] != b'_' {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            continue;
        }
        let word = &code[start..i];
        let uppercase = word.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
        if uppercase && (word.starts_with("TAG_") || word.ends_with("_TAG")) {
            out.push(word.to_string());
        }
    }
    out
}

/// Cross-check the Markdown frame catalog against the registry and the
/// observed accounting exemptions.
fn check_doc_catalog(ws: &Workspace, tags: &[TagConst], exempt: &[u8]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(doc) = ws.get(DOC_FILE) else {
        out.push(diag(
            "protocol-registry",
            DOC_FILE,
            None,
            "missing; the frame catalog is part of the protocol contract",
        ));
        return out;
    };
    // Rows: `| <tag> | `NAME` | direction | payload | accounted |`,
    // taken from the raw Markdown (the Rust scanner is meaningless here).
    let mut doc_rows: Vec<(u8, String, bool, usize)> = Vec::new(); // (tag, name, accounted, line0)
    let mut in_catalog = false;
    for (lineno, line) in doc.raw.split('\n').enumerate() {
        if line.starts_with('#') {
            in_catalog = line.to_ascii_lowercase().contains("frame catalog");
            continue;
        }
        if !in_catalog || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim().trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 5 || cells[0].contains("---") || cells[0].eq_ignore_ascii_case("tag") {
            continue;
        }
        let Ok(tag) = cells[0].trim_matches('`').parse::<u8>() else {
            out.push(diag(
                "protocol-registry",
                DOC_FILE,
                Some(lineno),
                format!("frame catalog row has non-numeric tag `{}`", cells[0]),
            ));
            continue;
        };
        let name = cells[1].trim_matches('`').to_string();
        let acct_cell = cells[4].to_ascii_lowercase().replace('*', "");
        let accounted = if acct_cell.trim().starts_with("yes") {
            true
        } else if acct_cell.trim().starts_with("no") {
            false
        } else {
            out.push(diag(
                "protocol-registry",
                DOC_FILE,
                Some(lineno),
                format!(
                    "frame catalog row for tag {tag} has unparseable `Accounted?` \
                     cell `{}` (must start with yes/no)",
                    cells[4]
                ),
            ));
            true
        };
        doc_rows.push((tag, name, accounted, lineno));
    }
    if doc_rows.is_empty() {
        out.push(diag(
            "protocol-registry",
            DOC_FILE,
            None,
            "no parseable rows under a `frame catalog` heading; the catalog table \
             is part of the protocol contract",
        ));
        return out;
    }

    // Registry → docs.
    for t in tags {
        let Some(v) = t.value else { continue };
        let expected_name = t.name.strip_prefix("TAG_").unwrap_or(&t.name);
        match doc_rows.iter().find(|(tag, ..)| *tag == v) {
            None => out.push(diag(
                "protocol-registry",
                DOC_FILE,
                None,
                format!("frame catalog is missing tag {v} (`{}`)", t.name),
            )),
            Some((_, name, accounted, lineno)) => {
                if name != expected_name {
                    out.push(diag(
                        "protocol-registry",
                        DOC_FILE,
                        Some(*lineno),
                        format!(
                            "frame catalog names tag {v} `{name}`, but the registry \
                             calls it `{}` (expected `{expected_name}`)",
                            t.name
                        ),
                    ));
                }
                let is_exempt = exempt.contains(&v);
                if *accounted == is_exempt {
                    let (doc_says, code_says) = if is_exempt {
                        ("accounted", "exempted at the record sites")
                    } else {
                        ("exempt", "counted at the record sites")
                    };
                    out.push(diag(
                        "protocol-registry",
                        DOC_FILE,
                        Some(*lineno),
                        format!(
                            "frame catalog says tag {v} (`{expected_name}`) is \
                             {doc_says}, but it is {code_says}"
                        ),
                    ));
                }
            }
        }
    }
    // Docs → registry (no phantom rows).
    for (tag, name, _, lineno) in &doc_rows {
        if !tags.iter().any(|t| t.value == Some(*tag)) {
            out.push(diag(
                "protocol-registry",
                DOC_FILE,
                Some(*lineno),
                format!("frame catalog lists tag {tag} (`{name}`), which is not in the registry"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO: &str = "\
/// Run one stage.
pub const TAG_RUN_STAGE: u8 = 1;
/// Telemetry frame (alias of the transport constant).
pub const TAG_TELEMETRY: u8 = skalla_net::TELEMETRY_TAG;
";
    const TRANSPORT: &str = "/// Transport-reserved telemetry tag.\npub const TELEMETRY_TAG: u8 = 9;\n";
    const SITE: &str = "fn demux(tag: u8) { if tag == TAG_RUN_STAGE || tag == TAG_TELEMETRY {} }\n";
    const TCP: &str = "\
fn send(msg: &Msg, stats: &NetStats) {
    if msg.tag != crate::transport::TELEMETRY_TAG {
        stats.record_msg_for(msg);
    }
}
";
    const DOC: &str = "\
## Protocol v2 frame catalog

| Tag | Name | Direction | Payload | Accounted? |
|-----|------|-----------|---------|------------|
| 1 | `RUN_STAGE` | coord → site | stage | yes |
| 9 | `TELEMETRY` | site → coord | spans | **no** — diagnostics |
";

    fn good_ws() -> Workspace {
        let mut ws = Workspace::default();
        ws.add(PROTOCOL_FILE, PROTO.into());
        ws.add(TRANSPORT_FILE, TRANSPORT.into());
        ws.add("crates/core/src/site.rs", SITE.into());
        ws.add("crates/net/src/tcp.rs", TCP.into());
        ws.add(DOC_FILE, DOC.into());
        ws
    }

    #[test]
    fn consistent_registry_passes() {
        let d = protocol_registry(&good_ws());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_doc_comment_and_duplicate_value_fire() {
        let mut ws = good_ws();
        let proto = "\
/// Run one stage.
pub const TAG_RUN_STAGE: u8 = 1;
pub const TAG_TELEMETRY: u8 = 1;
";
        ws.add(PROTOCOL_FILE, proto.into());
        let d = protocol_registry(&ws);
        assert!(d.iter().any(|d| d.message.contains("no rustdoc")), "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("reuses tag value 1")), "{d:?}");
    }

    #[test]
    fn unhandled_tag_fires() {
        let mut ws = good_ws();
        ws.add("crates/core/src/site.rs", "fn demux(tag: u8) { let _ = tag == TAG_RUN_STAGE; }\n".into());
        let d = protocol_registry(&ws);
        assert!(
            d.iter().any(|d| d.message.contains("TAG_TELEMETRY") && d.message.contains("demux")),
            "{d:?}"
        );
    }

    #[test]
    fn unclassified_record_site_fires() {
        let mut ws = good_ws();
        ws.add(
            "crates/net/src/tcp.rs",
            "fn send(msg: &Msg, stats: &NetStats) {\n    stats.record_msg_for(msg);\n}\n".into(),
        );
        let d = protocol_registry(&ws);
        assert!(d.iter().any(|d| d.message.contains("no tag-classifying guard")), "{d:?}");
        // With no observed exemption, the doc's `no` row now disagrees.
        assert!(d.iter().any(|d| d.message.contains("says tag 9")), "{d:?}");
    }

    #[test]
    fn doc_drift_fires_both_ways() {
        let mut ws = good_ws();
        let doc = "\
## Protocol v2 frame catalog

| Tag | Name | Direction | Payload | Accounted? |
|-----|------|-----------|---------|------------|
| 1 | `RUN_STAGEE` | coord → site | stage | yes |
| 7 | `CATALOG` | site → coord | schema | yes |
";
        ws.add(DOC_FILE, doc.into());
        let d = protocol_registry(&ws);
        assert!(d.iter().any(|d| d.message.contains("RUN_STAGEE")), "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("missing tag 9")), "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("lists tag 7")), "{d:?}");
    }
}
