//! The frozen-debt baseline for `panic-hygiene`.
//!
//! Existing panic debt is recorded in `lint-baseline.txt` at the repo
//! root so the rule can be a hard error for *new* code without forcing a
//! big-bang rewrite. Entries are content-based — `(rule, path,
//! normalized source line)` with an occurrence count — not line numbers,
//! so unrelated edits above a baselined call don't invalidate the file.
//! Deleting debt never breaks the build (stale entries are reported but
//! harmless); adding debt always does.
//!
//! Only `panic-hygiene` is baselined. The registry, knob, and
//! determinism rules have an empty baseline by construction: their
//! findings are either fixed or annotated at the use site.

use crate::workspace::{Diagnostic, Workspace};
use std::collections::BTreeMap;

/// Rules the baseline applies to. Everything else is always strict.
pub const BASELINED_RULES: &[&str] = &["panic-hygiene"];

/// A parsed baseline: `(rule, path, snippet)` → allowed occurrence count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

/// What filtering against the baseline produced.
pub struct Filtered {
    /// Diagnostics not covered by the baseline (still violations).
    pub kept: Vec<Diagnostic>,
    /// Diagnostics suppressed as frozen debt.
    pub suppressed: usize,
    /// Baseline entries that matched nothing (debt that was paid down —
    /// refresh with `--update-baseline` to shrink the file).
    pub stale: usize,
}

impl Baseline {
    /// Parse the tab-separated baseline format:
    /// `rule<TAB>path<TAB>count<TAB>snippet`. Blank lines and `#`
    /// comments are skipped; malformed lines are reported as errors.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (lineno, line) in text.split('\n').enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, '\t');
            let (rule, path, count, snippet) = (
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
            );
            let Ok(count) = count.parse::<usize>() else {
                return Err(format!(
                    "baseline line {}: malformed (want `rule<TAB>path<TAB>count<TAB>snippet`)",
                    lineno + 1
                ));
            };
            if rule.is_empty() || path.is_empty() || snippet.is_empty() {
                return Err(format!("baseline line {}: empty field", lineno + 1));
            }
            *entries
                .entry((rule.to_string(), path.to_string(), snippet.to_string()))
                .or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Build a baseline freezing `diags` (only the baselined rules).
    pub fn freeze(ws: &Workspace, diags: &[Diagnostic]) -> Baseline {
        let mut entries = BTreeMap::new();
        for d in diags {
            if !BASELINED_RULES.contains(&d.rule) {
                continue;
            }
            let key = (d.rule.to_string(), d.path.clone(), snippet_for(ws, d));
            *entries.entry(key).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Serialize back to the on-disk format (deterministic order).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# skalla-lint frozen debt. One entry per distinct offending line:\n\
             # rule<TAB>path<TAB>count<TAB>normalized source line.\n\
             # Regenerate with `cargo run -p skalla-lint -- --update-baseline`.\n\
             # Shrinking this file is progress; growing it needs a review.\n",
        );
        for ((rule, path, snippet), count) in &self.entries {
            out.push_str(&format!("{rule}\t{path}\t{count}\t{snippet}\n"));
        }
        out
    }

    /// Suppress diagnostics covered by the baseline. Each entry's count
    /// is a budget: occurrences beyond it are new debt and stay errors.
    pub fn filter(&self, ws: &Workspace, diags: Vec<Diagnostic>) -> Filtered {
        let mut budget = self.entries.clone();
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for d in diags {
            if !BASELINED_RULES.contains(&d.rule) {
                kept.push(d);
                continue;
            }
            let key = (d.rule.to_string(), d.path.clone(), snippet_for(ws, &d));
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed += 1;
                }
                _ => kept.push(d),
            }
        }
        let stale = budget.values().filter(|n| **n > 0).count();
        Filtered {
            kept,
            suppressed,
            stale,
        }
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the baseline holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The whitespace-normalized source line a diagnostic points at (the
/// content key that survives reformatting and line moves).
fn snippet_for(ws: &Workspace, d: &Diagnostic) -> String {
    let line = d.line.checked_sub(1).and_then(|l| {
        ws.get(&d.path)
            .and_then(|f| f.raw.split('\n').nth(l))
    });
    match line {
        Some(l) => l.split_whitespace().collect::<Vec<_>>().join(" "),
        None => String::from("<file-level>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_with(src: &str) -> Workspace {
        let mut ws = Workspace::default();
        ws.add("crates/core/src/x.rs", src.to_string());
        ws
    }

    fn d(line: usize) -> Diagnostic {
        Diagnostic {
            rule: "panic-hygiene",
            path: "crates/core/src/x.rs".into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip_and_budget() {
        let ws = ws_with("a.unwrap();\nb.unwrap();\na.unwrap();\n");
        let diags = vec![d(1), d(2), d(3)];
        let base = Baseline::freeze(&ws, &diags);
        assert_eq!(base.len(), 2, "two distinct snippets");
        let reparsed = Baseline::parse(&base.render()).unwrap();
        assert_eq!(reparsed, base);
        let f = reparsed.filter(&ws, diags);
        assert!(f.kept.is_empty());
        assert_eq!((f.suppressed, f.stale), (3, 0));
    }

    #[test]
    fn new_debt_exceeds_budget() {
        let ws = ws_with("a.unwrap();\na.unwrap();\n");
        let base = Baseline::freeze(&ws, &[d(1)]); // budget: 1 occurrence
        let f = base.filter(&ws, vec![d(1), d(2)]);
        assert_eq!(f.kept.len(), 1, "second occurrence is new debt");
        assert_eq!(f.suppressed, 1);
    }

    #[test]
    fn line_moves_do_not_invalidate() {
        let old = ws_with("a.unwrap();\n");
        let base = Baseline::freeze(&old, &[d(1)]);
        let new = ws_with("// a new comment line\na.unwrap();\n");
        let f = base.filter(&new, vec![d(2)]);
        assert!(f.kept.is_empty(), "content key survives the line move");
    }

    #[test]
    fn strict_rules_bypass_baseline() {
        let ws = ws_with("a.unwrap();\n");
        let base = Baseline::freeze(&ws, &[d(1)]);
        let strict = Diagnostic {
            rule: "wall-clock",
            path: "crates/core/src/x.rs".into(),
            line: 1,
            message: "m".into(),
        };
        let f = base.filter(&ws, vec![strict.clone()]);
        assert_eq!(f.kept, vec![strict]);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("panic-hygiene\tonly-two-fields\n").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().is_empty());
    }
}
