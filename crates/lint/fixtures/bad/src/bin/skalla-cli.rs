//! Fixture CLI: only `parallelism` has a flag.

fn flags(e: &mut EvalOptions) {
    e.parallelism = 4;
}
