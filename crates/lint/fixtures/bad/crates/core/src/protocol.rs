//! Seeded violations: undocumented tag, duplicate value, unhandled tag.

/// Run one stage.
pub const TAG_RUN_STAGE: u8 = 1;
pub const TAG_RESULT: u8 = 2;
/// Reuses RUN_STAGE's value.
pub const TAG_ERROR: u8 = 1;
/// Never referenced by any dispatch file.
pub const TAG_GHOST: u8 = 7;
