//! Fixture codec: encodes `parallelism` but not `ghost_knob`.

fn put_options(o: &EvalOptions, enc: &mut Encoder) {
    enc.put_u32(o.parallelism as u32);
}
